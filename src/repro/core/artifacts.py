"""Content-addressed cache of trained models.

About ten registered experiments retrain the *same* scaled-down
MLP / SNN on the *same* synthetic dataset — the dominant cost of a
full ``report`` run.  Training here is deterministic (every stochastic
draw goes through :mod:`repro.core.rng`), so a trained model is a pure
function of (model kind, config, dataset, training recipe, code
version).  This module memoizes that function on disk:

* **Key**: SHA-256 over a canonical JSON payload of the config
  dataclass, a content hash of the dataset arrays, the training
  parameters, and a code-version salt (bump
  :data:`CODE_VERSION` whenever a change alters what training
  produces; stale entries then miss instead of poisoning results).
* **Value**: the PR-1 NPZ serialization
  (:mod:`repro.core.serialization`), written atomically
  (tmp file + ``os.replace``) so a crashed writer can never leave a
  half-written entry under a valid key.
* **Scope**: keyed by content, not by call site — the cache is shared
  across experiments, across ``--jobs N`` worker processes and across
  repeated ``report`` invocations.

Controls: ``REPRO_CACHE_DIR`` (or the ``--cache-dir`` CLI flag) moves
the store; ``REPRO_NO_CACHE=1`` (or ``--no-cache``) bypasses it
entirely; ``REPRO_CACHE_MAX_BYTES`` (or ``ModelCache(max_bytes=...)``)
bounds the on-disk footprint with least-recently-used eviction — the
continual-learning service versions every promoted snapshot through
this cache, so an unbounded store would grow forever.  A corrupt or
unreadable entry is treated as a miss: the model is retrained and the
entry overwritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from .errors import ReproError

#: Salt mixed into every cache key.  Bump when a code change alters
#: the outcome of training (STDP rule, RNG streams, recipes, ...) so
#: previously cached models are invalidated instead of silently reused.
CODE_VERSION = "pr2-batched-1"

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def cache_directory() -> pathlib.Path:
    """The active cache directory (``REPRO_CACHE_DIR`` or default)."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def cache_max_bytes() -> Optional[int]:
    """Capacity bound from ``REPRO_CACHE_MAX_BYTES`` (None = unbounded).

    Unset, empty, non-numeric and non-positive values all mean
    "unbounded" — a malformed limit must never make caching fail.
    """
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def dataset_signature(dataset) -> str:
    """Content hash of a dataset (images + labels + identity).

    Hashes the raw array bytes, shapes and dtypes, so *any* change to
    the data — size, noise draw, normalization — changes the key.
    """
    digest = hashlib.sha256()
    images = np.ascontiguousarray(dataset.images)
    labels = np.ascontiguousarray(dataset.labels)
    digest.update(getattr(dataset, "name", "").encode())
    digest.update(str(images.shape).encode() + str(images.dtype).encode())
    digest.update(images.tobytes())
    digest.update(str(labels.shape).encode() + str(labels.dtype).encode())
    digest.update(labels.tobytes())
    return digest.hexdigest()[:24]


def _jsonable(value: Any) -> Any:
    """Canonicalize a value for the key payload (stable across runs)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def coder_signature(coder) -> Dict[str, Any]:
    """Stable description of a spike coder (class + scalar attributes)."""
    if coder is None:
        return {"class": None}
    attrs = {
        key: _jsonable(value)
        for key, value in sorted(vars(coder).items())
        if isinstance(value, (int, float, str, bool, np.integer, np.floating))
    }
    return {"class": type(coder).__name__, **attrs}


def cache_key(
    kind: str,
    config,
    dataset,
    train_params: Optional[Dict[str, Any]] = None,
) -> str:
    """Content-addressed key for a trained model.

    A stable SHA-256 over (kind, config fields, dataset content hash,
    training parameters, code-version salt); any difference in any
    component yields a different key.
    """
    payload = {
        "kind": kind,
        "config": _jsonable(config),
        "dataset": dataset_signature(dataset),
        "train": _jsonable(train_params or {}),
        "code_version": CODE_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CacheStats:
    """In-process cache counters (asserted by the tests / bench)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  # corrupt entries that fell back to retraining
    corrupt_evictions: int = 0  # sha256 mismatches evicted before load
    capacity_evictions: int = 0  # LRU entries evicted by the size bound

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        """One-line human-readable rendering (``repro report --timings``)."""
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), {self.errors} corrupt-entry error(s), "
            f"{self.corrupt_evictions} integrity eviction(s), "
            f"{self.capacity_evictions} capacity eviction(s)"
        )

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.errors = 0
        self.corrupt_evictions = self.capacity_evictions = 0


def file_digest(path: os.PathLike, chunk_size: int = 1 << 20) -> str:
    """Streaming SHA-256 of a file's contents (hex)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def digest_sidecar(path: os.PathLike) -> pathlib.Path:
    """The ``<entry>.sha256`` integrity sidecar path for an artifact."""
    path = pathlib.Path(path)
    return path.parent / (path.name + ".sha256")


def write_digest_sidecar(path: os.PathLike) -> pathlib.Path:
    """Atomically record ``path``'s SHA-256 next to it; returns the sidecar."""
    path = pathlib.Path(path)
    sidecar = digest_sidecar(path)
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp.sha256")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            tmp.write(file_digest(path) + "\n")
        os.replace(tmp_name, sidecar)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return sidecar


def verify_digest_sidecar(path: os.PathLike) -> Optional[bool]:
    """Check an artifact against its integrity sidecar.

    Returns ``True`` (digest matches), ``False`` (mismatch — the entry
    is corrupt), or ``None`` when no sidecar exists (a legacy entry,
    tolerated: PR-2 caches predate integrity sidecars).
    """
    sidecar = digest_sidecar(path)
    if not sidecar.exists():
        return None
    try:
        expected = sidecar.read_text(encoding="utf-8").strip()
    except OSError:
        return False
    return bool(expected) and file_digest(path) == expected


class ModelCache:
    """Content-addressed on-disk store of trained models.

    ``get_or_train(kind, config, dataset, train_fn, ...)`` returns the
    cached model when a valid entry exists, otherwise runs ``train_fn``
    and stores its result.  Writes are atomic; corrupt entries fall
    back to retraining and are overwritten.

    ``max_bytes`` (default: :func:`cache_max_bytes`) bounds the total
    on-disk size of entries plus sidecars; after every store the
    least-recently-used entries are evicted until the store fits.
    Recency is the entry file's mtime, which a cache hit refreshes —
    coarse, but it survives process restarts without an index file.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ):
        self.directory = (
            pathlib.Path(directory) if directory is not None else cache_directory()
        )
        self.max_bytes = max_bytes if max_bytes is not None else cache_max_bytes()
        if self.max_bytes is not None and self.max_bytes <= 0:
            self.max_bytes = None
        self.stats = CacheStats()

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.npz"

    def get_or_train(
        self,
        kind: str,
        config,
        dataset,
        train_fn: Callable[[], Any],
        train_params: Optional[Dict[str, Any]] = None,
        loader: Optional[Callable[[os.PathLike], Any]] = None,
        saver: Optional[Callable[[Any, os.PathLike], Any]] = None,
    ):
        """Memoized training: load on hit, train + store on miss."""
        from .serialization import load_model, save_model

        loader = loader or load_model
        saver = saver or save_model
        key = cache_key(kind, config, dataset, train_params)
        path = self.path_for(key)
        if path.exists():
            model = load_verified(path, self.stats, loader)
            if model is not None:
                return model
        self.stats.misses += 1
        model = train_fn()
        try:
            self._atomic_store(model, path, saver)
            self.stats.stores += 1
        except OSError:
            pass  # read-only cache dir: training still succeeded
        self._enforce_capacity(keep=path)
        return model

    def _atomic_store(self, model, path: pathlib.Path, saver) -> None:
        """Write-to-tmp + rename so readers never see partial entries."""
        self.directory.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp.npz"
        )
        os.close(handle)
        try:
            written = saver(model, tmp_name)
            os.replace(written, path)
            write_digest_sidecar(path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)

    @staticmethod
    def _evict(path: pathlib.Path) -> None:
        """Remove a corrupt entry and its sidecar (best effort)."""
        for victim in (path, digest_sidecar(path)):
            try:
                victim.unlink()
            except OSError:  # pragma: no cover - already gone / read-only
                pass

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        """Refresh an entry's mtime — the LRU recency signal."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - read-only cache dir
            pass

    def _entry_size(self, path: pathlib.Path) -> Optional[int]:
        """Bytes of an entry plus its sidecar (None when it vanished)."""
        try:
            size = path.stat().st_size
        except OSError:
            return None
        try:
            size += digest_sidecar(path).stat().st_size
        except OSError:
            pass
        return size

    def _enforce_capacity(self, keep: Optional[pathlib.Path] = None) -> int:
        """Evict least-recently-used entries until the store fits.

        ``keep`` shields the entry just written — evicting it would
        turn the store into a cache that forgets what it was told one
        call ago.  Returns the number of entries evicted.
        """
        if self.max_bytes is None or not self.directory.exists():
            return 0
        entries = []
        for path in self.directory.glob("*.npz"):
            size = self._entry_size(path)
            if size is None:
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, path, size))
        total = sum(size for _, _, size in entries)
        entries.sort(key=lambda item: (item[0], item[1].name))
        evicted = 0
        for _, path, size in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            self._evict(path)
            self.stats.capacity_evictions += 1
            evicted += 1
            total -= size
        return evicted

    def clear(self) -> int:
        """Remove every entry (and sidecars); returns entries deleted."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
            for sidecar in self.directory.glob("*.npz.sha256"):
                sidecar.unlink()
        return removed


def load_verified(path: pathlib.Path, stats: CacheStats, load_fn: Callable):
    """Sidecar-verified cache read shared by every on-disk store here.

    One implementation of the hit protocol :class:`ModelCache` and
    :class:`ArrayBundleCache` both follow: check the integrity sidecar
    (a failed check evicts the entry *before* deserializing it), load
    through ``load_fn``, count the hit and refresh LRU recency.
    Returns the loaded value, or ``None`` when the caller must
    recompute — cache-shaped failures (corruption, truncation, missing
    members) are recorded in ``stats``, never raised.
    """
    verdict = verify_digest_sidecar(path)
    if verdict is False:
        # Bit rot / tampering caught by the integrity sidecar: evict
        # the entry *before* deserializing it so the caller recomputes
        # and overwrites with a fresh (re-digested) entry.
        stats.corrupt_evictions += 1
        ModelCache._evict(path)
        return None
    try:
        value = load_fn(path)
    except (ReproError, OSError, ValueError, KeyError):
        # Corrupt / truncated / stale entry: recompute + overwrite.
        stats.errors += 1
        return None
    stats.hits += 1
    ModelCache._touch(path)
    return value


#: Process-wide cache instance (lazy — respects env overrides made
#: before first use; tests reset it via :func:`reset_default_cache`).
_DEFAULT_CACHE: Optional[ModelCache] = None


def default_cache() -> ModelCache:
    """The process-wide :class:`ModelCache` (created on first use)."""
    global _DEFAULT_CACHE
    if (
        _DEFAULT_CACHE is None
        or _DEFAULT_CACHE.directory != cache_directory()
        or _DEFAULT_CACHE.max_bytes != cache_max_bytes()
    ):
        _DEFAULT_CACHE = ModelCache()
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Drop the process-wide instance (tests / env-var changes)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None


def cache_stats() -> Dict[str, int]:
    """Counters of the process-wide cache (zeros when unused)."""
    if _DEFAULT_CACHE is None:
        return CacheStats().as_dict()
    return _DEFAULT_CACHE.stats.as_dict()


def cached_train(
    kind: str,
    config,
    dataset,
    train_fn: Callable[[], Any],
    train_params: Optional[Dict[str, Any]] = None,
    **cache_kwargs: Any,
):
    """Train through the process-wide cache (or directly when disabled)."""
    if not cache_enabled():
        return train_fn()
    return default_cache().get_or_train(
        kind, config, dataset, train_fn, train_params=train_params, **cache_kwargs
    )


class ArrayBundleCache:
    """Content-addressed on-disk store of named NumPy array bundles.

    The design-space sweep (:mod:`repro.hardware.sweep`) memoizes each
    evaluated shard — a dict of equal-length columnar arrays — under a
    SHA-256 key of its exact combo payload.  Entries are plain ``.npz``
    files written atomically (tmp + ``os.replace``) with the same
    integrity sidecars as :class:`ModelCache`; a corrupt or unreadable
    entry falls back to recomputation and is overwritten.  The store
    lives in a ``sweeps/`` subdirectory of the model cache so
    ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` govern both.
    """

    SUBDIR = "sweeps"

    def __init__(self, directory: Optional[os.PathLike] = None):
        base = (
            pathlib.Path(directory) if directory is not None else cache_directory()
        )
        self.directory = base / self.SUBDIR
        self.stats = CacheStats()

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.npz"

    def get_or_compute(
        self, key: str, compute: Callable[[], Dict[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        """Load the bundle for ``key``, or compute + store it."""
        path = self.path_for(key)
        if path.exists():

            def load_bundle(entry) -> Dict[str, np.ndarray]:
                with np.load(entry) as payload:
                    return {name: payload[name] for name in payload.files}

            bundle = load_verified(path, self.stats, load_bundle)
            if bundle is not None:
                return bundle
        self.stats.misses += 1
        bundle = compute()
        try:
            self._atomic_store(bundle, path)
            self.stats.stores += 1
        except OSError:
            pass  # read-only cache dir: the computation still succeeded
        return bundle

    def _atomic_store(
        self, bundle: Dict[str, np.ndarray], path: pathlib.Path
    ) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp.npz")
        os.close(handle)
        try:
            with open(tmp_name, "wb") as tmp:
                np.savez(tmp, **bundle)
            os.replace(tmp_name, path)
            write_digest_sidecar(path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)

    def clear(self) -> int:
        """Remove every bundle (and sidecars); returns entries deleted."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
            for sidecar in self.directory.glob("*.npz.sha256"):
                sidecar.unlink()
        return removed


class ServingSnapshotCache(ArrayBundleCache):
    """Verified pristine copies of the serving pool's shared arrays.

    When :class:`~repro.serve.workers.ShardedPool` publishes its
    shared-memory bundle it snapshots the exact published bytes here,
    keyed by the content digest of the bundle.  The snapshot is what
    the corruption-recovery path restores from: an on-disk copy whose
    integrity sidecar is re-verified at load time, so a DRAM fault in
    the live segment is repaired from bytes that are themselves
    checked — never from another potentially-corrupt RAM copy.
    """

    SUBDIR = "serving"

    def store(self, key: str, bundle: Dict[str, np.ndarray]) -> None:
        """Persist a pristine copy under ``key`` (no-op if present)."""
        self.get_or_compute(key, lambda: bundle)

    def load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Sidecar-verified load; ``None`` when missing or corrupt."""
        path = self.path_for(key)
        if not path.exists():
            return None

        def load_bundle(entry) -> Dict[str, np.ndarray]:
            with np.load(entry) as payload:
                return {name: payload[name] for name in payload.files}

        return load_verified(path, self.stats, load_bundle)


#: Cache subdirectories audited by :func:`verify_cache`, in walk order.
_VERIFY_SUBDIRS: tuple = ("", ArrayBundleCache.SUBDIR, ServingSnapshotCache.SUBDIR)


def verify_cache(
    directory: Optional[os.PathLike] = None, evict: bool = False
) -> Dict[str, Any]:
    """Audit every cache entry against its SHA-256 integrity sidecar.

    Walks the :class:`ModelCache` root plus the :class:`ArrayBundleCache`
    (``sweeps/``) and :class:`ServingSnapshotCache` (``serving/``)
    subdirectories, classifying each ``.npz`` entry as ``verified``
    (digest matches), ``corrupt`` (mismatch), or ``missing_sidecar``
    (legacy entry with no digest — tolerated, reported).  With
    ``evict=True`` corrupt entries and their sidecars are deleted so
    the next cache access recomputes them.

    Returns a JSON-ready report with stable keys: ``directory``,
    ``checked``, ``verified``, ``corrupt``, ``missing_sidecar``,
    ``evicted``, and ``entries`` (one ``{path, status}`` dict per
    entry, paths relative to the cache root).
    """
    base = pathlib.Path(directory) if directory is not None else cache_directory()
    entries = []
    evicted = 0
    for subdir in _VERIFY_SUBDIRS:
        root = base / subdir if subdir else base
        if not root.is_dir():
            continue
        for path in sorted(root.glob("*.npz")):
            verdict = verify_digest_sidecar(path)
            if verdict is True:
                status = "verified"
            elif verdict is None:
                status = "missing_sidecar"
            else:
                status = "corrupt"
            entry = {"path": str(path.relative_to(base)), "status": status}
            if status == "corrupt" and evict:
                ModelCache._evict(path)
                entry["evicted"] = True
                evicted += 1
            entries.append(entry)
    return {
        "directory": str(base),
        "checked": len(entries),
        "verified": sum(1 for e in entries if e["status"] == "verified"),
        "corrupt": sum(1 for e in entries if e["status"] == "corrupt"),
        "missing_sidecar": sum(
            1 for e in entries if e["status"] == "missing_sidecar"
        ),
        "evicted": evicted,
        "entries": entries,
    }
