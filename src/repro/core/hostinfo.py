"""Host metadata for benchmark payloads.

Every ``BENCH_*.json`` file the perf harnesses write carries a
``host`` block describing the machine that produced the numbers
(CPU count, platform, Python / NumPy versions, git SHA).  Without it
the committed bench trajectory mixes results from different machines
with no way to tell them apart; with it, regressions can be separated
from hardware changes.

The collector never fails: anything it cannot determine (e.g. the git
SHA outside a checkout) is reported as ``None`` rather than raising,
so benchmark teardown cannot be broken by an exotic host.
"""

from __future__ import annotations

import os
import platform
import subprocess
from typing import Any, Dict, Optional


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current checkout's commit SHA, or ``None`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_metadata(cwd: Optional[str] = None) -> Dict[str, Any]:
    """A JSON-serializable description of the benchmarking host.

    Keys are stable (readers may rely on them); values are best-effort
    and ``None`` when undeterminable.  ``cwd`` locates the git
    checkout whose SHA is recorded (default: the process CWD).
    """
    try:
        import numpy as np

        numpy_version: Optional[str] = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "git_sha": git_sha(cwd),
    }
