"""Experiment runner infrastructure.

An *experiment* regenerates one of the paper's tables or figures.  It
is a named callable returning an :class:`ExperimentResult`: a list of
records (dict rows, e.g. one per table row or per plotted point) plus
the paper's reference values, so reports can print paper-vs-measured
side by side.

Experiments register themselves in :mod:`repro.core.registry`; the
benchmark harness and ``repro.analysis.report`` both run them through
this interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .errors import ExperimentError


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment_id: e.g. "table3", "fig8", "sec45-mpeg7".
        title: human-readable description.
        rows: measured records; each a flat dict of column -> value.
        paper_rows: the paper's reference records, aligned with rows
            where possible (same keys), for side-by-side reporting.
        notes: free-text caveats (substitutions, scale-downs).
        elapsed_seconds: wall-clock time of the run.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    elapsed_seconds: float = 0.0

    def column_names(self) -> List[str]:
        """Union of keys across measured rows, in first-seen order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def find_row(self, **criteria: Any) -> Dict[str, Any]:
        """First measured row matching all key=value criteria."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                return row
        raise ExperimentError(
            f"{self.experiment_id}: no row matching {criteria!r}"
        )


#: An experiment entry point.  ``scale`` in (0, 1] lets callers trade
#: fidelity for speed (smaller datasets / fewer epochs); 1.0 is the
#: full reproduction configuration.
ExperimentFn = Callable[..., ExperimentResult]


def run_timed(
    fn: ExperimentFn, *args: Any, **kwargs: Any
) -> ExperimentResult:
    """Run an experiment function and stamp its elapsed time."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    result.elapsed_seconds = time.perf_counter() - start
    return result


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry describing one reproducible table/figure."""

    experiment_id: str
    title: str
    fn: ExperimentFn
    #: Where in the paper this appears (for the report header).
    paper_location: str = ""

    def run(self, **kwargs: Any) -> ExperimentResult:
        return run_timed(self.fn, **kwargs)
