"""Experiment runner infrastructure.

An *experiment* regenerates one of the paper's tables or figures.  It
is a named callable returning an :class:`ExperimentResult`: a list of
records (dict rows, e.g. one per table row or per plotted point) plus
the paper's reference values, so reports can print paper-vs-measured
side by side.

Experiments register themselves in :mod:`repro.core.registry`; the
benchmark harness and ``repro.analysis.report`` both run them through
this interface.

For long sweeps, :class:`ResilientRunner` hardens any experiment
function with per-attempt wall-clock timeouts, bounded retries (with
reseeding and exponential backoff), checkpoint/resume of trained
models (through :class:`repro.core.serialization.CheckpointStore`)
and graceful degradation — an automatic ``scale`` fallback when every
retry at the requested fidelity fails.  The structured failure record
of a resilient run (``attempts``, ``failures``, ``degraded``) is
surfaced on the returned :class:`ExperimentResult` and rendered by
:mod:`repro.analysis.report`.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import ExperimentError, ExperimentTimeoutError
from .rng import DEFAULT_SEED


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment_id: e.g. "table3", "fig8", "sec45-mpeg7".
        title: human-readable description.
        rows: measured records; each a flat dict of column -> value.
        paper_rows: the paper's reference records, aligned with rows
            where possible (same keys), for side-by-side reporting.
        notes: free-text caveats (substitutions, scale-downs).
        elapsed_seconds: wall-clock time of the run.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    elapsed_seconds: float = 0.0
    #: Resilient-run bookkeeping (filled by :class:`ResilientRunner`;
    #: a plain run leaves the defaults: one attempt, no failures).
    attempts: int = 1
    degraded: bool = False
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def column_names(self) -> List[str]:
        """Union of keys across measured rows, in first-seen order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def find_row(self, **criteria: Any) -> Dict[str, Any]:
        """First measured row matching all key=value criteria."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                return row
        raise ExperimentError(
            f"{self.experiment_id}: no row matching {criteria!r}"
        )


#: An experiment entry point.  ``scale`` in (0, 1] lets callers trade
#: fidelity for speed (smaller datasets / fewer epochs); 1.0 is the
#: full reproduction configuration.
ExperimentFn = Callable[..., ExperimentResult]


def run_timed(
    fn: ExperimentFn, *args: Any, **kwargs: Any
) -> ExperimentResult:
    """Run an experiment function and stamp its elapsed time."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    result.elapsed_seconds = time.perf_counter() - start
    return result


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry describing one reproducible table/figure."""

    experiment_id: str
    title: str
    fn: ExperimentFn
    #: Where in the paper this appears (for the report header).
    paper_location: str = ""

    def run(self, **kwargs: Any) -> ExperimentResult:
        return run_timed(self.fn, **kwargs)


# ----------------------------------------------------------------------
# Resilient execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunPolicy:
    """Knobs of a resilient experiment run.

    Attributes:
        retries: extra attempts after the first, *per scale level*.
        timeout_seconds: wall-clock budget of one attempt (``None``
            disables the timeout).
        backoff_seconds: sleep before the first retry; each further
            retry multiplies it by ``backoff_factor`` (0 disables).
        backoff_factor: exponential backoff multiplier.
        degrade_scales: successive fallback ``scale`` values tried
            (in order) once every retry at the requested fidelity has
            failed; only used when the experiment function accepts a
            ``scale`` keyword.  Each fallback level gets the same
            retry budget.
        checkpoint_dir: directory for trained-model checkpoints; when
            set (and the function accepts a ``checkpoint`` keyword) a
            :class:`~repro.core.serialization.CheckpointStore` is
            passed through, so retries resume instead of retraining.
        reseed: derive a fresh ``seed`` for every retry (only when the
            function accepts a ``seed`` keyword) so a failure caused
            by an unlucky stochastic draw is not replayed verbatim.
    """

    retries: int = 0
    timeout_seconds: Optional[float] = None
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    degrade_scales: Tuple[float, ...] = ()
    checkpoint_dir: Optional[str] = None
    reseed: bool = True

    def validate(self) -> "RunPolicy":
        if self.retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ExperimentError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.backoff_seconds < 0 or self.backoff_factor < 1.0:
            raise ExperimentError(
                "backoff_seconds must be >= 0 and backoff_factor >= 1"
            )
        for scale in self.degrade_scales:
            if not 0.0 < scale <= 1.0:
                raise ExperimentError(
                    f"degrade scales must be in (0, 1], got {scale}"
                )
        return self


@dataclass
class FailureRecord:
    """One failed attempt of a resilient run."""

    attempt: int              # 1-based global attempt number
    scale: Optional[float]    # fidelity the attempt ran at (None: n/a)
    seed: Optional[int]       # seed the attempt ran with (None: n/a)
    kind: str                 # "timeout" | "error"
    error: str                # exception type name
    message: str
    elapsed_seconds: float

    def as_row(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "scale": self.scale,
            "seed": self.seed,
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def _accepted_keywords(fn: Callable) -> Optional[set]:
    """Keyword names ``fn`` accepts, or ``None`` if it takes **kwargs."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins, odd callables
        return None
    names = set()
    for parameter in signature.parameters.values():
        if parameter.kind == inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return names


def _call_with_timeout(
    fn: Callable[..., Any], kwargs: Dict[str, Any], timeout: Optional[float]
) -> Any:
    """Run ``fn(**kwargs)``, raising on a blown wall-clock budget.

    The attempt runs on a daemon thread joined with ``timeout``; a
    still-running attempt is *abandoned* (Python offers no safe way to
    kill a thread) and :class:`ExperimentTimeoutError` is raised so
    the caller can retry.  Abandoned attempts never block interpreter
    exit (daemon threads).
    """
    if timeout is None:
        return fn(**kwargs)
    box: Dict[str, Any] = {}

    def _target() -> None:
        try:
            box["result"] = fn(**kwargs)
        except BaseException as exc:  # re-raised on the caller's thread
            box["error"] = exc

    worker = threading.Thread(target=_target, daemon=True, name="repro-attempt")
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise ExperimentTimeoutError(
            f"attempt exceeded the {timeout:g}s wall-clock budget"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


class ResilientRunner:
    """Wraps experiment functions with retry / timeout / degrade logic.

    The run plan is a sequence of *scale levels*: the requested
    fidelity first, then each of ``policy.degrade_scales``.  Every
    level gets ``1 + policy.retries`` attempts; each attempt is bounded
    by ``policy.timeout_seconds`` and separated from the previous one
    by the exponential backoff.  Retries reseed (when supported), so a
    pathological stochastic draw is not replayed.  The first success
    wins; its :class:`ExperimentResult` carries the full failure
    history.  If every attempt at every level fails, the last
    exception propagates (with the history attached as
    ``failure_records``).

    ``sleep`` is injectable for tests.
    """

    def __init__(
        self,
        policy: RunPolicy,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.policy = policy.validate()
        self._sleep = sleep

    def run(
        self,
        fn: ExperimentFn,
        experiment_id: str = "",
        **kwargs: Any,
    ) -> ExperimentResult:
        """Run ``fn(**kwargs)`` under the policy; returns its result."""
        policy = self.policy
        accepted = _accepted_keywords(fn)

        def supports(name: str) -> bool:
            return accepted is None or name in accepted

        call_kwargs = dict(kwargs)
        if policy.checkpoint_dir is not None and supports("checkpoint"):
            from .serialization import CheckpointStore  # lazy: avoid cycle

            call_kwargs.setdefault(
                "checkpoint", CheckpointStore(policy.checkpoint_dir)
            )
        base_seed = call_kwargs.get("seed")
        scales: List[Optional[float]] = [call_kwargs.get("scale")]
        if supports("scale"):
            scales += [s for s in policy.degrade_scales]

        failures: List[FailureRecord] = []
        attempt_number = 0
        last_error: Optional[BaseException] = None
        for level, scale in enumerate(scales):
            for retry in range(policy.retries + 1):
                attempt_number += 1
                attempt_kwargs = dict(call_kwargs)
                if scale is not None and supports("scale"):
                    attempt_kwargs["scale"] = scale
                seed_used = base_seed if base_seed is None else int(base_seed)
                if policy.reseed and attempt_number > 1 and supports("seed"):
                    seed_used = (
                        int(base_seed) if base_seed is not None else DEFAULT_SEED
                    ) + 1009 * (attempt_number - 1)
                    attempt_kwargs["seed"] = seed_used
                if attempt_number > 1 and policy.backoff_seconds > 0:
                    self._sleep(
                        policy.backoff_seconds
                        * policy.backoff_factor ** (attempt_number - 2)
                    )
                start = time.perf_counter()
                try:
                    result = _call_with_timeout(
                        fn, attempt_kwargs, policy.timeout_seconds
                    )
                except Exception as exc:  # noqa: BLE001 — any failure retries
                    last_error = exc
                    failures.append(
                        FailureRecord(
                            attempt=attempt_number,
                            scale=scale,
                            seed=seed_used,
                            kind=(
                                "timeout"
                                if isinstance(exc, ExperimentTimeoutError)
                                else "error"
                            ),
                            error=type(exc).__name__,
                            message=str(exc),
                            elapsed_seconds=time.perf_counter() - start,
                        )
                    )
                    continue
                result.elapsed_seconds = time.perf_counter() - start
                result.attempts = attempt_number
                result.degraded = level > 0
                result.failures = [record.as_row() for record in failures]
                if result.degraded:
                    note = (
                        f"degraded to scale={scale:g} after "
                        f"{len(failures)} failed attempt(s)"
                    )
                    result.notes = (
                        f"{result.notes} [{note}]" if result.notes else note
                    )
                return result
        message = (
            f"{experiment_id or getattr(fn, '__name__', 'experiment')}: all "
            f"{attempt_number} attempt(s) failed; last error: {last_error}"
        )
        error = ExperimentError(message)
        error.failure_records = [record.as_row() for record in failures]
        raise error from last_error

    def run_spec(self, spec: ExperimentSpec, **kwargs: Any) -> ExperimentResult:
        """Run a registry entry under the policy."""
        return self.run(spec.fn, experiment_id=spec.experiment_id, **kwargs)


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------


def run_experiment_by_id(
    experiment_id: str,
    policy: Optional[RunPolicy] = None,
    kwargs: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Run one registered experiment (module-level, so it pickles).

    This is the unit of work of :func:`run_experiments` — executed
    either inline (serial) or inside a worker process.  The worker
    re-imports the analysis package so the registry is populated
    regardless of the multiprocessing start method, then applies the
    PR-1 :class:`RunPolicy` semantics (timeout / retries / checkpoints
    / degradation) exactly as a serial run would: resilience is
    *per experiment*, unchanged by where the experiment executes.
    """
    from . import registry  # local import: registry imports this module

    registry.ensure_default_registrations()
    spec = registry.get(experiment_id)
    call_kwargs = dict(kwargs or {})
    if policy is None:
        return spec.run(**call_kwargs)
    return ResilientRunner(policy).run_spec(spec, **call_kwargs)


def run_experiments(
    experiment_ids: List[str],
    policy: Optional[RunPolicy] = None,
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    **kwargs: Any,
) -> List[ExperimentResult]:
    """Run registered experiments, optionally across worker processes.

    Results come back **in the order of ``experiment_ids``** no matter
    which worker finishes first, so parallel reports are deterministic.
    ``jobs <= 1`` (or a single experiment) runs serially in-process.
    ``initializer(*initargs)`` runs once in every worker at startup
    (e.g. :func:`repro.analysis.common._attach_shared_datasets`, which
    points the dataset caches at the parent's shared-memory segment).
    If the process pool cannot be created or breaks (sandboxed
    environments, missing semaphores, unpicklable payloads), the run
    falls back to the serial path instead of failing — parallelism is
    an optimization, never a requirement.  Experiment errors are *not*
    swallowed by the fallback: they propagate just as a serial run's
    would.
    """
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    ids = list(experiment_ids)
    if jobs in (0, 1) or len(ids) <= 1:
        return [run_experiment_by_id(i, policy, kwargs) for i in ids]
    try:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(ids)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = {
                experiment_id: pool.submit(
                    run_experiment_by_id, experiment_id, policy, kwargs
                )
                for experiment_id in ids
            }
            return [futures[experiment_id].result() for experiment_id in ids]
    except (OSError, ImportError, BrokenExecutor, RuntimeError) as pool_error:
        # Pool infrastructure failure (not an experiment failure):
        # degrade gracefully to the serial path.
        if isinstance(pool_error, ExperimentError):
            raise
        return [run_experiment_by_id(i, policy, kwargs) for i in ids]
