"""Deterministic random-number plumbing.

Every stochastic component in the library (dataset synthesis, weight
initialisation, Poisson/Gaussian spike-train generation, ...) draws
from a :class:`numpy.random.Generator` that is threaded explicitly
through the code, never from module-level global state.  This keeps
experiments reproducible: the same seed always yields the same
dataset, the same initial weights and the same spike trains.

The helpers here derive independent child generators from a parent
seed so that, e.g., changing the number of training epochs does not
perturb the dataset noise stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used across the repository when the caller does not
#: provide one.  Chosen arbitrarily; fixed for reproducibility.
DEFAULT_SEED = 20151205  # MICRO-48 started December 5, 2015.


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (use :data:`DEFAULT_SEED`), an integer, or
    an existing generator (returned unchanged, so callers can pass
    generators through layered APIs without reseeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def child_rng(
    parent: SeedLike, stream: str, index: Optional[int] = None
) -> np.random.Generator:
    """Derive an independent generator for a named ``stream``.

    Uses :class:`numpy.random.SeedSequence` spawning keyed by a stable
    hash of the stream name, so ``child_rng(seed, "weights")`` and
    ``child_rng(seed, "spikes")`` are decorrelated and each is stable
    across runs.

    ``index`` derives a further per-item child (e.g. one generator per
    test image): ``child_rng(seed, "snn-test-spikes", i)`` depends only
    on ``(seed, stream, i)`` — *not* on evaluation order, batch size or
    worker count — which is what makes the batched inference engine
    (:mod:`repro.snn.batched`) bit-identical to the per-image path.
    """
    if isinstance(parent, np.random.Generator):
        # Derive from the parent's bit generator state deterministically.
        base = int(parent.integers(0, 2**31 - 1))
    elif parent is None:
        base = DEFAULT_SEED
    else:
        base = int(parent)
    # A small, stable string hash (Python's hash() is salted per process).
    tag = 0
    for ch in stream:
        tag = (tag * 131 + ord(ch)) % (2**31 - 1)
    spawn_key = (tag,) if index is None else (tag, int(index))
    seq = np.random.SeedSequence(entropy=base, spawn_key=spawn_key)
    return np.random.default_rng(seq)


def spawn_rngs(seed: SeedLike, *streams: str) -> tuple:
    """Derive one independent generator per stream name."""
    return tuple(child_rng(seed, s) for s in streams)


def as_seed(seed: SeedLike, default: Optional[int] = None) -> int:
    """Normalise ``seed`` to a plain integer (for logging / records)."""
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    if seed is None:
        return DEFAULT_SEED if default is None else default
    return int(seed)
