"""Core infrastructure: configuration, metrics, experiments, RNG, errors."""

from .config import (
    MLPConfig,
    SNNConfig,
    mnist_mlp_config,
    mnist_snn_config,
    mpeg7_mlp_config,
    mpeg7_snn_config,
    sad_mlp_config,
    sad_snn_config,
)
from .errors import (
    ConfigError,
    DatasetError,
    ExperimentError,
    HardwareModelError,
    ReproError,
    SimulationError,
    TrainingError,
)
from .experiment import ExperimentResult, ExperimentSpec, run_timed
from .metrics import EvaluationResult, accuracy, confusion_matrix, error_rate, evaluate
from .rng import DEFAULT_SEED, child_rng, make_rng, spawn_rngs
from .serialization import load_mlp, load_model, load_snn, save_mlp, save_snn

__all__ = [
    "MLPConfig",
    "SNNConfig",
    "mnist_mlp_config",
    "mnist_snn_config",
    "mpeg7_mlp_config",
    "mpeg7_snn_config",
    "sad_mlp_config",
    "sad_snn_config",
    "ReproError",
    "ConfigError",
    "DatasetError",
    "TrainingError",
    "HardwareModelError",
    "SimulationError",
    "ExperimentError",
    "ExperimentResult",
    "ExperimentSpec",
    "run_timed",
    "EvaluationResult",
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "evaluate",
    "make_rng",
    "child_rng",
    "spawn_rngs",
    "DEFAULT_SEED",
    "save_mlp",
    "load_mlp",
    "save_snn",
    "load_snn",
    "load_model",
]
