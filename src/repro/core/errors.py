"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`
so callers can catch library failures without catching unrelated
built-in exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A model or hardware configuration is invalid or inconsistent."""


class DatasetError(ReproError):
    """A dataset request cannot be satisfied (bad shape, class count, split)."""


class TrainingError(ReproError):
    """Training diverged or was invoked with inconsistent data."""


class HardwareModelError(ReproError):
    """A hardware design cannot be composed or costed as requested."""


class SimulationError(ReproError):
    """The cycle-accurate simulator detected an inconsistent datapath state."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its prerequisites are missing."""


class SerializationError(ReproError):
    """A model checkpoint is corrupt, incomplete, or of an unknown layout."""


class ExperimentTimeoutError(ExperimentError):
    """An experiment attempt exceeded its wall-clock budget."""
