"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`
so callers can catch library failures without catching unrelated
built-in exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A model or hardware configuration is invalid or inconsistent."""


class DatasetError(ReproError):
    """A dataset request cannot be satisfied (bad shape, class count, split)."""


class TrainingError(ReproError):
    """Training diverged or was invoked with inconsistent data."""


class HardwareModelError(ReproError):
    """A hardware design cannot be composed or costed as requested."""


class SimulationError(ReproError):
    """The cycle-accurate simulator detected an inconsistent datapath state."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its prerequisites are missing."""


class SerializationError(ReproError):
    """A model checkpoint is corrupt, incomplete, or of an unknown layout."""


class ExperimentTimeoutError(ExperimentError):
    """An experiment attempt exceeded its wall-clock budget."""


class ServingError(ReproError):
    """The inference serving layer could not accept or complete a request."""


class Overloaded(ServingError):
    """Admission control shed the request (bounded queue at capacity).

    Raised *instead of* blocking: under overload the serving layer
    fails fast so callers can back off, rather than letting latency
    grow without bound.  Carries no partial result — the request was
    never enqueued.
    """
