"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`
so callers can catch library failures without catching unrelated
built-in exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A model or hardware configuration is invalid or inconsistent."""


class DatasetError(ReproError):
    """A dataset request cannot be satisfied (bad shape, class count, split)."""


class TrainingError(ReproError):
    """Training diverged or was invoked with inconsistent data."""


class HardwareModelError(ReproError):
    """A hardware design cannot be composed or costed as requested."""


class SimulationError(ReproError):
    """The cycle-accurate simulator detected an inconsistent datapath state."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its prerequisites are missing."""


class SerializationError(ReproError):
    """A model checkpoint is corrupt, incomplete, or of an unknown layout."""


class ExperimentTimeoutError(ExperimentError):
    """An experiment attempt exceeded its wall-clock budget."""


class CompileError(ReproError):
    """A model cannot be lowered onto the execution IR.

    Raised by :mod:`repro.ir.compile` for unknown model kinds and for
    models whose forward pass cannot be expressed as a pure plan (e.g.
    an attached fault injector that corrupts spikes at run time).
    Callers that can fall back to the legacy engines catch this and do
    so; the model itself is never left in a modified state.
    """


class BackendError(ReproError):
    """An execution backend is unknown or unavailable.

    Raised by :mod:`repro.ir.backends` when a backend name does not
    resolve in the registry or when a registered backend's optional
    dependency (torch, jax) is missing.  CLI entry points map this to
    the usage exit code.
    """


class BackendUnsupported(BackendError):
    """A backend refuses a plan it cannot execute bit-identically.

    Typed so dispatch layers can distinguish "this backend exists but
    does not cover this plan" (e.g. ``int8-tiled`` offered a float-only
    plan) from an unknown backend name.  The message names the
    offending instruction or buffer.
    """


class ServingError(ReproError):
    """The inference serving layer could not accept or complete a request."""


class Overloaded(ServingError):
    """Admission control shed the request (bounded queue at capacity).

    Raised *instead of* blocking: under overload the serving layer
    fails fast so callers can back off, rather than letting latency
    grow without bound.  Carries no partial result — the request was
    never enqueued.
    """


class DeadlineExceeded(ServingError):
    """A request's deadline expired before it could be served.

    Raised (or set on the request's future) whenever expired work is
    *shed* instead of executed: at submission when the deadline has
    already passed, at batch formation when the request cannot make
    its deadline, and at requeue after a shard death.  Expired work is
    never silently dropped — the caller always observes this typed
    error — and never admitted into a batch it can't make.
    """


class CircuitOpen(ServingError):
    """A per-model circuit breaker is open; the request was rejected.

    The serving layer observed a high error rate (or pathological
    latency) for this model and is failing fast instead of queueing
    more work onto a broken path.  After a cooldown the breaker
    half-opens and lets probe requests through; callers should back
    off and retry later.
    """


class PoisonedRequest(ServingError):
    """A request was quarantined after repeatedly killing worker shards.

    When the same task is in flight across ``K`` shard deaths it is
    presumed to be the *cause* (a poison request) and is quarantined:
    its future fails with this error, its signature is remembered, and
    resubmissions are rejected immediately instead of being requeued
    forever and taking the whole pool down.
    """


class IntegrityError(ServingError):
    """Stored or shared bytes failed a checksum verification.

    Raised when a :class:`~repro.serve.shm.SharedArrayBundle` segment's
    contents no longer match the per-array SHA-256 digests computed at
    publish time — at shard attach, by the pool's background scrubber,
    or by an explicit ``verify()`` — and when a corrupted segment
    cannot be restored from its verified cache snapshot.  Silent data
    corruption becomes a typed refusal instead of a wrong answer.
    """


class NumericSentinelError(ReproError):
    """A numeric sentinel tripped at a plan-execution boundary.

    Raised by :func:`repro.ir.execute.run_plan` when a plan's constant
    arrays, float inputs, or float outputs contain NaN/Inf — the
    signature of corrupted weights or a miscomputing kernel.  The
    request is refused with this typed error; garbage is never returned
    as a prediction.  Deliberately *not* a :class:`ServingError`: the
    sentinel also guards direct (non-serving) plan execution.
    """


class ShardCrashLoop(ServingError):
    """A shard slot is crash-looping; the supervisor stopped respawning.

    Raised/reported when a shard dies more than ``max_respawns`` times
    within ``respawn_window`` seconds: the crash-loop breaker for that
    slot opens and respawn attempts pause until the cooldown elapses
    (half-open: one probe respawn is allowed)."""
