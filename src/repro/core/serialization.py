"""Saving and loading trained models (NPZ-based, numpy-only).

Both model families serialize to a single ``.npz`` file carrying the
configuration (as JSON in a zero-dimensional array) plus the learned
arrays, so a trained accelerator workload can be checkpointed and
shipped — e.g. train once, then drive the hardware simulators or the
TrueNorth mapping from the same weights across sessions.

Formats are versioned; loading an unknown version or model kind fails
loudly rather than guessing.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

import numpy as np

from .config import MLPConfig, SNNConfig
from .errors import ReproError

#: Bumped on any breaking change to the on-disk layout.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def _config_to_json(config) -> str:
    return json.dumps(dataclasses.asdict(config))


def _config_from_json(text: str, config_cls):
    data = json.loads(text)
    return config_cls(**data).validate()


def save_mlp(network, path: PathLike) -> pathlib.Path:
    """Serialize a trained :class:`~repro.mlp.network.MLP`."""
    path = pathlib.Path(path)
    np.savez(
        path,
        kind=np.array("mlp"),
        version=np.array(FORMAT_VERSION),
        config=np.array(_config_to_json(network.config)),
        w_hidden=network.w_hidden,
        b_hidden=network.b_hidden,
        w_output=network.w_output,
        b_output=network.b_output,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_mlp(path: PathLike):
    """Load an MLP saved by :func:`save_mlp`."""
    from ..mlp.network import MLP

    data = _open(path, expected_kind="mlp")
    config = _config_from_json(str(data["config"]), MLPConfig)
    network = MLP(config)
    network.w_hidden = data["w_hidden"]
    network.b_hidden = data["b_hidden"]
    network.w_output = data["w_output"]
    network.b_output = data["b_output"]
    _check_shape(network.w_hidden, (config.n_hidden, config.n_inputs), "w_hidden")
    _check_shape(network.w_output, (config.n_output, config.n_hidden), "w_output")
    return network


def save_snn(network, path: PathLike) -> pathlib.Path:
    """Serialize a trained :class:`~repro.snn.network.SpikingNetwork`.

    Persists weights, per-neuron thresholds and (if present) the
    neuron-label map, i.e. everything the inference paths need.
    """
    path = pathlib.Path(path)
    labels = (
        network.neuron_labels
        if network.neuron_labels is not None
        else np.full(network.config.n_neurons, -2, dtype=np.int64)
    )
    np.savez(
        path,
        kind=np.array("snn"),
        version=np.array(FORMAT_VERSION),
        config=np.array(_config_to_json(network.config)),
        weights=network.weights,
        thresholds=network.population.thresholds,
        neuron_labels=labels,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_snn(path: PathLike):
    """Load a SpikingNetwork saved by :func:`save_snn`."""
    from ..snn.network import SpikingNetwork

    data = _open(path, expected_kind="snn")
    config = _config_from_json(str(data["config"]), SNNConfig)
    network = SpikingNetwork(config)
    network.weights = data["weights"]
    network.population.thresholds[:] = data["thresholds"]
    labels = data["neuron_labels"]
    network.neuron_labels = None if labels.min() == -2 else labels
    _check_shape(network.weights, (config.n_neurons, config.n_inputs), "weights")
    return network


def load_model(path: PathLike):
    """Load either model kind by inspecting the file."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        kind = str(data["kind"])
    if kind == "mlp":
        return load_mlp(path)
    if kind == "snn":
        return load_snn(path)
    raise ReproError(f"unknown model kind {kind!r} in {path}")


def _open(path: PathLike, expected_kind: str) -> dict:
    path = pathlib.Path(path)
    if not path.exists():
        raise ReproError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        loaded = {key: data[key] for key in data.files}
    kind = str(loaded.get("kind", ""))
    if kind != expected_kind:
        raise ReproError(
            f"{path} holds a {kind or 'non-repro'} model, expected {expected_kind}"
        )
    version = int(loaded["version"])
    if version != FORMAT_VERSION:
        raise ReproError(
            f"{path} uses format version {version}; this build reads {FORMAT_VERSION}"
        )
    return loaded


def _check_shape(array: np.ndarray, expected: tuple, name: str) -> None:
    if array.shape != expected:
        raise ReproError(
            f"{name} has shape {array.shape}, config expects {expected}"
        )
