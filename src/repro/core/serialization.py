"""Saving and loading trained models (NPZ-based, numpy-only).

Both model families serialize to a single ``.npz`` file carrying the
configuration (as JSON in a zero-dimensional array) plus the learned
arrays, so a trained accelerator workload can be checkpointed and
shipped — e.g. train once, then drive the hardware simulators or the
TrueNorth mapping from the same weights across sessions.

Formats are versioned; loading an unknown version or model kind fails
loudly rather than guessing.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

import numpy as np

from .config import MLPConfig, SNNConfig
from .errors import ReproError, SerializationError

#: Bumped on any breaking change to the on-disk layout.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def _config_to_json(config) -> str:
    return json.dumps(dataclasses.asdict(config))


def _config_from_json(text: str, config_cls):
    """Rebuild a config dataclass from its checkpointed JSON.

    A corrupted checkpoint (invalid JSON, wrong payload type, unknown
    or missing keys) fails with :class:`SerializationError` — part of
    the library's exception hierarchy — instead of leaking raw
    ``TypeError``/``KeyError``/``json.JSONDecodeError``.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"checkpointed {config_cls.__name__} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise SerializationError(
            f"checkpointed {config_cls.__name__} must be a JSON object, "
            f"got {type(data).__name__}"
        )
    try:
        config = config_cls(**data)
    except TypeError as exc:
        raise SerializationError(
            f"checkpointed {config_cls.__name__} has unknown or missing "
            f"fields: {exc}"
        ) from exc
    return config.validate()


def _resolve_npz_path(path: PathLike) -> pathlib.Path:
    """The path :func:`numpy.savez` actually writes for ``path``.

    ``np.savez`` appends ``.npz`` whenever the filename does not
    already end with it; mirroring that rule here (on the *name*, not
    via ``with_suffix``, which mangles multi-dot names) lets save
    functions return the real on-disk location.
    """
    path = pathlib.Path(path)
    if path.name.endswith(".npz"):
        return path
    return path.with_name(path.name + ".npz")


def save_mlp(network, path: PathLike) -> pathlib.Path:
    """Serialize a trained :class:`~repro.mlp.network.MLP`.

    Returns the path actually written (``.npz`` appended when the
    caller's path lacks the suffix, matching ``np.savez``).
    """
    path = _resolve_npz_path(path)
    np.savez(
        path,
        kind=np.array("mlp"),
        version=np.array(FORMAT_VERSION),
        config=np.array(_config_to_json(network.config)),
        w_hidden=network.w_hidden,
        b_hidden=network.b_hidden,
        w_output=network.w_output,
        b_output=network.b_output,
    )
    return path


def load_mlp(path: PathLike):
    """Load an MLP saved by :func:`save_mlp`."""
    from ..mlp.network import MLP

    data = _open(path, expected_kind="mlp")
    config = _config_from_json(str(data["config"]), MLPConfig)
    network = MLP(config)
    network.w_hidden = data["w_hidden"]
    network.b_hidden = data["b_hidden"]
    network.w_output = data["w_output"]
    network.b_output = data["b_output"]
    _check_shape(network.w_hidden, (config.n_hidden, config.n_inputs), "w_hidden")
    _check_shape(network.w_output, (config.n_output, config.n_hidden), "w_output")
    return network


def save_snn(network, path: PathLike) -> pathlib.Path:
    """Serialize a trained :class:`~repro.snn.network.SpikingNetwork`.

    Persists weights, per-neuron thresholds and (if present) the
    neuron-label map, i.e. everything the inference paths need.
    """
    path = _resolve_npz_path(path)
    labels = (
        network.neuron_labels
        if network.neuron_labels is not None
        else np.full(network.config.n_neurons, -2, dtype=np.int64)
    )
    np.savez(
        path,
        kind=np.array("snn"),
        version=np.array(FORMAT_VERSION),
        config=np.array(_config_to_json(network.config)),
        weights=network.weights,
        thresholds=network.population.thresholds,
        neuron_labels=labels,
    )
    return path


def load_snn(path: PathLike):
    """Load a SpikingNetwork saved by :func:`save_snn`."""
    from ..snn.network import SpikingNetwork

    data = _open(path, expected_kind="snn")
    config = _config_from_json(str(data["config"]), SNNConfig)
    network = SpikingNetwork(config)
    network.weights = data["weights"]
    network.population.thresholds[:] = data["thresholds"]
    labels = data["neuron_labels"]
    network.neuron_labels = None if labels.min() == -2 else labels
    _check_shape(network.weights, (config.n_neurons, config.n_inputs), "weights")
    return network


def save_snn_bp(model, path: PathLike) -> pathlib.Path:
    """Serialize a trained :class:`~repro.snn.snn_bp.BackPropSNN`.

    Weights, config and learning rate are the whole state: the neuron
    label groups are a deterministic function of the config (round-
    robin ``arange % n_labels``), so they are rebuilt on load.
    """
    path = _resolve_npz_path(path)
    np.savez(
        path,
        kind=np.array("snnbp"),
        version=np.array(FORMAT_VERSION),
        config=np.array(_config_to_json(model.config)),
        weights=model.weights,
        learning_rate=np.array(model.learning_rate),
    )
    return path


def load_snn_bp(path: PathLike):
    """Load a BackPropSNN saved by :func:`save_snn_bp`."""
    from ..snn.snn_bp import BackPropSNN

    data = _open(path, expected_kind="snnbp")
    config = _config_from_json(str(data["config"]), SNNConfig)
    model = BackPropSNN(config, learning_rate=float(data["learning_rate"]))
    model.weights = data["weights"]
    _check_shape(model.weights, (config.n_neurons, config.n_inputs), "weights")
    return model


def load_model(path: PathLike):
    """Load any model kind by inspecting the file."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        kind = str(data["kind"])
    if kind == "mlp":
        return load_mlp(path)
    if kind == "snn":
        return load_snn(path)
    if kind == "snnbp":
        return load_snn_bp(path)
    raise ReproError(f"unknown model kind {kind!r} in {path}")


def _open(path: PathLike, expected_kind: str) -> dict:
    path = pathlib.Path(path)
    if not path.exists():
        raise ReproError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        loaded = {key: data[key] for key in data.files}
    kind = str(loaded.get("kind", ""))
    if kind != expected_kind:
        raise ReproError(
            f"{path} holds a {kind or 'non-repro'} model, expected {expected_kind}"
        )
    version = int(loaded["version"])
    if version != FORMAT_VERSION:
        raise ReproError(
            f"{path} uses format version {version}; this build reads {FORMAT_VERSION}"
        )
    return loaded


def _check_shape(array: np.ndarray, expected: tuple, name: str) -> None:
    if array.shape != expected:
        raise ReproError(
            f"{name} has shape {array.shape}, config expects {expected}"
        )


def save_model(model, path: PathLike) -> pathlib.Path:
    """Serialize any model kind, dispatching on its structure."""
    if hasattr(model, "w_hidden"):
        return save_mlp(model, path)
    if hasattr(model, "population"):
        return save_snn(model, path)
    if hasattr(model, "learning_rate") and hasattr(model, "weights"):
        return save_snn_bp(model, path)
    raise SerializationError(
        f"cannot serialize {type(model).__name__}: expected an MLP, a "
        "SpikingNetwork or a BackPropSNN"
    )


class CheckpointStore:
    """Keyed on-disk store of trained models (NPZ checkpoints).

    The resilient experiment runner hands one of these to experiment
    functions (as a ``checkpoint=`` keyword) so expensive training
    steps become resumable: a retried or re-run experiment reloads the
    trained model instead of retraining it.  Keys are free-form
    strings; they are sanitized into filenames.

    A checkpoint that exists but fails to load (corrupt file, format
    mismatch) is treated as absent: :meth:`load_or_train` falls back
    to retraining and overwrites it, so a bad checkpoint can never
    wedge a sweep.

    Integrity: :meth:`save` records a SHA-256 sidecar next to every
    checkpoint; :meth:`load` verifies it first and raises (after
    evicting the corrupt pair) on mismatch, so bit rot is caught
    *before* deserialization.  Checkpoints written by older builds
    (no sidecar) still load.  :attr:`corrupt_evictions` counts the
    mismatches caught.
    """

    def __init__(self, directory: PathLike):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: sha256-mismatch checkpoints evicted by :meth:`load`.
        self.corrupt_evictions = 0

    def path_for(self, key: str) -> pathlib.Path:
        """The on-disk path backing ``key``."""
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
        if not safe:
            raise SerializationError(f"checkpoint key {key!r} sanitizes to nothing")
        return self.directory / f"{safe}.npz"

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def save(self, key: str, model) -> pathlib.Path:
        """Checkpoint ``model`` under ``key`` (overwrites) + sidecar."""
        from .artifacts import write_digest_sidecar

        path = save_model(model, self.path_for(key))
        write_digest_sidecar(path)
        return path

    def load(self, key: str):
        """Load the model checkpointed under ``key``.

        Verifies the SHA-256 integrity sidecar first (when present):
        a mismatch evicts the corrupt checkpoint and raises
        :class:`SerializationError`.  Any other failure to read the
        file (truncated/garbage archive, wrong kind or version, bad
        config JSON) surfaces as a
        :class:`~repro.core.errors.ReproError` subclass.
        """
        from .artifacts import digest_sidecar, verify_digest_sidecar

        path = self.path_for(key)
        if not path.exists():
            raise SerializationError(f"no checkpoint for key {key!r} at {path}")
        if verify_digest_sidecar(path) is False:
            self.corrupt_evictions += 1
            for victim in (path, digest_sidecar(path)):
                try:
                    victim.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            raise SerializationError(
                f"checkpoint for key {key!r} at {path} failed its sha256 "
                "integrity check; evicted"
            )
        try:
            return load_model(path)
        except ReproError:
            raise
        except Exception as exc:  # unreadable archive, truncated file, ...
            raise SerializationError(
                f"checkpoint for key {key!r} at {path} is unreadable: {exc}"
            ) from exc

    def load_or_train(self, key: str, train_fn):
        """Return the checkpointed model for ``key``, training on a miss.

        ``train_fn`` is a zero-argument callable producing the model;
        it runs only when no (valid) checkpoint exists, and its result
        is checkpointed before being returned.
        """
        if self.has(key):
            try:
                return self.load(key)
            except ReproError:
                pass  # corrupt/stale checkpoint: retrain and overwrite
        model = train_fn()
        self.save(key, model)
        return model

    def clear(self) -> int:
        """Delete every checkpoint (and sidecars); returns checkpoints removed."""
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        for sidecar in self.directory.glob("*.npz.sha256"):
            sidecar.unlink()
        return removed
