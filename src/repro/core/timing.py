"""Lightweight wall-clock phase timers for ``repro report --timings``.

The experiment pipeline has three dominant cost centres — model
training, model evaluation, and hardware cycle simulation.  This
module provides a process-global, stack-based phase timer so the CLI
can print a per-phase breakdown without threading a timer object
through every call site:

* :func:`phase` is a re-entrant context manager.  Time spent inside a
  nested phase is attributed to the *inner* phase only (exclusive
  attribution), so the totals are additive and never double count.
* :func:`reset` clears the accumulated totals (the CLI calls it at the
  start of a timed run).
* :func:`report` renders the totals as a small aligned table, with an
  "other" row when a wall-clock reference is supplied.

The timers are deliberately cheap (two ``perf_counter`` calls and a
dict update per phase entry) so leaving the instrumentation on
permanently costs nothing measurable next to training or simulation.

Thread safety: the phase *stack* is thread-local (each thread's
nesting is attributed independently — required by the serving layer,
whose micro-batcher threads time ``serve-batch`` phases while the
main thread times the load generator), and the accumulated totals are
guarded by a lock, so concurrent phases from different threads sum
correctly instead of corrupting a shared stack.

Limitations: the registry is per-process.  ``repro report --jobs N``
with ``N > 1`` runs experiments in worker processes whose timers are
not aggregated back; the CLI notes this when both flags are combined.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Accumulated exclusive seconds per phase name (lock-guarded).
_totals: Dict[str, float] = {}
_totals_lock = threading.Lock()

#: Per-thread stack of (name, started_at, child_seconds) frames.
_local = threading.local()


def _stack() -> List[list]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def reset() -> None:
    """Clear all accumulated phase totals (active phases keep running)."""
    with _totals_lock:
        _totals.clear()


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the enclosed wall-clock time to ``name`` (exclusive).

    Nested phases subtract their time from the enclosing phase, so a
    ``phase("eval")`` inside ``phase("train")`` bills only "eval" for
    the inner span.  Re-entrant, exception safe, and safe to use from
    multiple threads at once (nesting is tracked per thread).
    """
    stack = _stack()
    frame = [name, time.perf_counter(), 0.0]
    stack.append(frame)
    try:
        yield
    finally:
        stack.pop()
        elapsed = time.perf_counter() - frame[1]
        with _totals_lock:
            _totals[name] = _totals.get(name, 0.0) + elapsed - frame[2]
        if stack:
            stack[-1][2] += elapsed


def totals() -> Dict[str, float]:
    """A copy of the accumulated exclusive seconds per phase."""
    with _totals_lock:
        return dict(_totals)


def report(wall: Optional[float] = None) -> str:
    """Render the phase totals as an aligned text table.

    When ``wall`` (total wall-clock seconds for the run) is given, a
    percentage column and an "other" row for unattributed time are
    included.
    """
    snapshot = totals()
    rows = sorted(snapshot.items(), key=lambda item: -item[1])
    if wall is not None:
        attributed = sum(snapshot.values())
        rows.append(("other", max(wall - attributed, 0.0)))
    if not rows:
        return "timings: no instrumented phases ran"
    width = max(len(name) for name, _ in rows)
    lines = ["timings (wall-clock seconds):"]
    for name, seconds in rows:
        line = f"  {name.ljust(width)}  {seconds:8.3f}s"
        if wall is not None and wall > 0:
            line += f"  {100.0 * seconds / wall:5.1f}%"
        lines.append(line)
    if wall is not None:
        lines.append(f"  {'total'.ljust(width)}  {wall:8.3f}s  100.0%")
    return "\n".join(lines)
