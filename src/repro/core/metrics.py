"""Classification metrics used throughout the evaluation.

The paper reports a single headline metric — test-set accuracy — plus
error rate (Figure 6).  We additionally expose a confusion matrix and
per-class accuracy, which the analysis modules use to sanity-check
that a model is not collapsing onto a subset of classes (a common
failure mode of WTA/STDP training).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .errors import ReproError


def accuracy(predictions: Sequence[int], labels: Sequence[int]) -> float:
    """Fraction of correct predictions, in [0, 1].

    Predictions of ``-1`` (the SNN's "no neuron fired" marker) always
    count as incorrect.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ReproError(
            f"predictions shape {predictions.shape} != labels shape {labels.shape}"
        )
    if predictions.size == 0:
        raise ReproError("cannot compute accuracy of zero samples")
    return float(np.mean(predictions == labels))


def error_rate(predictions: Sequence[int], labels: Sequence[int]) -> float:
    """1 - accuracy, in [0, 1] (the quantity plotted in Figure 6)."""
    return 1.0 - accuracy(predictions, labels)


def confusion_matrix(
    predictions: Sequence[int], labels: Sequence[int], n_classes: int
) -> np.ndarray:
    """(n_classes, n_classes) matrix; rows = true label, cols = prediction.

    Predictions outside [0, n_classes) (e.g. the SNN's -1 marker) are
    dropped from the matrix but still count toward the row totals used
    by :func:`per_class_accuracy`.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    valid = (predictions >= 0) & (predictions < n_classes)
    np.add.at(matrix, (labels[valid], predictions[valid]), 1)
    return matrix


def per_class_accuracy(
    predictions: Sequence[int], labels: Sequence[int], n_classes: int
) -> np.ndarray:
    """Accuracy for each true class; NaN for classes absent from labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    result = np.full(n_classes, np.nan)
    for cls in range(n_classes):
        mask = labels == cls
        if mask.any():
            result[cls] = float(np.mean(predictions[mask] == cls))
    return result


@dataclass(frozen=True)
class EvaluationResult:
    """Bundle of evaluation metrics for one trained model on one test set."""

    accuracy: float
    n_samples: int
    n_classes: int
    confusion: np.ndarray

    @property
    def error_rate(self) -> float:
        return 1.0 - self.accuracy

    @property
    def accuracy_percent(self) -> float:
        """Accuracy in percent, the unit the paper's tables use."""
        return 100.0 * self.accuracy

    def summary(self) -> str:
        return (
            f"accuracy={self.accuracy_percent:.2f}% "
            f"({self.n_samples} samples, {self.n_classes} classes)"
        )


def evaluate(
    predictions: Sequence[int], labels: Sequence[int], n_classes: int
) -> EvaluationResult:
    """Compute the full metric bundle for a prediction vector."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    return EvaluationResult(
        accuracy=accuracy(predictions, labels),
        n_samples=int(labels.size),
        n_classes=n_classes,
        confusion=confusion_matrix(predictions, labels, n_classes),
    )
