"""Model configurations (paper Table 1).

:class:`MLPConfig` and :class:`SNNConfig` carry the hyper-parameters of
the two models compared in the paper, with defaults equal to the values
the authors selected after design-space exploration (Table 1), and with
validation against the explored ranges.

Time-valued SNN parameters are in *milliseconds*, matching the paper
(one hardware clock cycle emulates one millisecond in the SNNwt
design).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from .errors import ConfigError

#: Explored ranges from Table 1, used by :meth:`MLPConfig.validate`.
MLP_RANGES: Dict[str, Tuple[float, float]] = {
    "n_hidden": (1, 1000),
    "n_output": (2, 100),
    "learning_rate": (0.001, 1.0),
    "epochs": (1, 500),
}

#: Explored ranges from Table 1, used by :meth:`SNNConfig.validate`.
SNN_RANGES: Dict[str, Tuple[float, float]] = {
    "n_neurons": (2, 1600),
    "t_period": (50, 1600),
    "t_leak": (10, 1600),
    "t_inhibit": (1, 20),
    "t_refrac": (5, 50),
    "t_ltp": (1, 50),
}


@dataclass(frozen=True)
class MLPConfig:
    """Hyper-parameters of the MLP+BP model (paper Table 1, left).

    Defaults are the paper's chosen values for MNIST: a 28x28-100-10
    network trained for 50 epochs at learning rate 0.3.
    """

    n_inputs: int = 784
    n_hidden: int = 100
    n_output: int = 10
    learning_rate: float = 0.3
    epochs: int = 50
    #: Slope parameter ``a`` of the sigmoid f_a(x) = 1/(1+exp(-a*x))
    #: (Section 3.2, Figure 5).  a=1 is the standard sigmoid.
    sigmoid_slope: float = 1.0
    #: Use a hard [0/1] step activation in the hidden layer instead of
    #: the sigmoid (the Figure 6 "step function" point).  Trained with a
    #: straight-through surrogate gradient.
    step_activation: bool = False
    #: Weight initialisation scale (uniform in [-scale, +scale]).
    init_scale: float = 0.1
    #: Random seed for weight initialisation and batch shuffling.
    seed: int = 0

    def validate(self) -> "MLPConfig":
        """Raise :class:`ConfigError` if out of the explored ranges."""
        if self.n_inputs < 1:
            raise ConfigError(f"n_inputs must be >= 1, got {self.n_inputs}")
        for name in ("n_hidden", "n_output", "learning_rate", "epochs"):
            lo, hi = MLP_RANGES[name]
            value = getattr(self, name)
            if not lo <= value <= hi:
                raise ConfigError(
                    f"MLPConfig.{name}={value} outside explored range [{lo}, {hi}]"
                )
        if self.sigmoid_slope <= 0:
            raise ConfigError(
                f"sigmoid_slope must be positive, got {self.sigmoid_slope}"
            )
        return self

    @property
    def n_weights(self) -> int:
        """Total synaptic weight count (hidden + output layers).

        For the paper's MNIST MLP this is 784*100 + 100*10 = 79,400.
        """
        return self.n_inputs * self.n_hidden + self.n_hidden * self.n_output

    @property
    def topology(self) -> str:
        """Human-readable topology string, e.g. ``'28x28-100-10'``."""
        side = int(round(self.n_inputs**0.5))
        if side * side == self.n_inputs:
            prefix = f"{side}x{side}"
        else:
            prefix = str(self.n_inputs)
        return f"{prefix}-{self.n_hidden}-{self.n_output}"

    def with_hidden(self, n_hidden: int) -> "MLPConfig":
        """Return a copy with a different hidden-layer size."""
        return replace(self, n_hidden=n_hidden)


@dataclass(frozen=True)
class SNNConfig:
    """Hyper-parameters of the SNN+STDP model (paper Table 1, right).

    Defaults are the paper's chosen values for MNIST: a single layer of
    300 LIF neurons, 500 ms image presentations, 500 ms leak constant,
    5 ms inhibition, 20 ms refractory period, 45 ms LTP window, initial
    firing threshold ``w_max * 70`` and the homeostasis schedule of
    Table 1.
    """

    n_inputs: int = 784
    n_neurons: int = 300
    n_labels: int = 10
    #: Image presentation duration (ms); also the spike-train length.
    t_period: float = 500.0
    #: Leakage time constant (ms).  The paper notes 500 ms beats the
    #: biologically plausible ~50 ms for accuracy.
    t_leak: float = 500.0
    #: Lateral inhibition duration after another neuron fires (ms).
    t_inhibit: float = 5.0
    #: Refractory period after the neuron itself fires (ms).
    t_refrac: float = 20.0
    #: LTP window: input spikes within this many ms before an output
    #: spike are potentiated, all others depressed (Section 4.4).
    t_ltp: float = 45.0
    #: Maximum synaptic weight (8-bit unsigned range).
    w_max: int = 255
    #: STDP weight increment/decrement magnitude of the *hardware*
    #: online-learning circuit (constant +-1 steps, Section 4.4).
    stdp_step: int = 1
    #: Software STDP mode: "expected" applies the variance-reduced
    #: expected update (default — see STDPRule.expected_apply for why
    #: scaled-down runs need it); "sampled" applies the literal
    #: spike-sampled rule the hardware implements.
    stdp_mode: str = "expected"
    #: LTP/LTD magnitudes of the software (Querlioz-style soft-bound)
    #: rule used for the accuracy studies.
    stdp_ltp: float = 24.0
    stdp_ltd: float = 12.0
    #: Use the multiplicative soft-bound rule (True) or hard clamping
    #: (False).  Hard clamping forms higher-contrast receptive fields
    #: and is the better default at small scale; the soft rule stays
    #: available for fidelity studies.
    stdp_soft: bool = False
    #: Soft-bound sharpness.
    stdp_beta: float = 2.0
    #: Minimum mean inter-spike interval at full luminance (ms).  A
    #: luminance-255 pixel spikes on average every 50 ms (20 Hz).
    min_spike_interval: float = 50.0
    #: Homeostasis epoch length (ms); Table 1: 10 * t_period * n_neurons.
    homeo_epoch: float = 1_500_000.0
    #: Homeostasis activity threshold; Table 1:
    #: 3 * homeo_epoch / (t_period * n_neurons).
    homeo_threshold: float = 30.0
    #: Homeostasis multiplicative rate ``r``.
    homeo_rate: float = 0.05
    #: Initial firing threshold; Table 1: w_max * 70.
    initial_threshold: float = 17850.0
    #: Number of training passes over the training set.
    epochs: int = 3
    #: Random seed for weight init and spike-train generation.
    seed: int = 0

    def validate(self) -> "SNNConfig":
        """Raise :class:`ConfigError` if out of the explored ranges."""
        if self.n_inputs < 1:
            raise ConfigError(f"n_inputs must be >= 1, got {self.n_inputs}")
        for name in ("n_neurons", "t_period", "t_leak", "t_inhibit", "t_refrac", "t_ltp"):
            lo, hi = SNN_RANGES[name]
            value = getattr(self, name)
            if not lo <= value <= hi:
                raise ConfigError(
                    f"SNNConfig.{name}={value} outside explored range [{lo}, {hi}]"
                )
        if not 0 < self.w_max <= 255:
            raise ConfigError(f"w_max must be in (0, 255], got {self.w_max}")
        if self.stdp_mode not in ("expected", "sampled"):
            raise ConfigError(
                f"stdp_mode must be 'expected' or 'sampled', got {self.stdp_mode!r}"
            )
        if self.stdp_ltp < 0 or self.stdp_ltd < 0:
            raise ConfigError("stdp_ltp/stdp_ltd must be non-negative")
        if self.min_spike_interval <= 0:
            raise ConfigError(
                f"min_spike_interval must be positive, got {self.min_spike_interval}"
            )
        if self.t_period < self.min_spike_interval:
            raise ConfigError(
                "t_period must be at least one spike interval "
                f"({self.t_period} < {self.min_spike_interval})"
            )
        return self

    @property
    def n_weights(self) -> int:
        """Total synaptic weight count (input excitatory connections).

        For the paper's MNIST SNN this is 784*300 = 235,200.
        """
        return self.n_inputs * self.n_neurons

    @property
    def max_spikes_per_pixel(self) -> int:
        """Upper bound on spikes a single pixel can emit per image.

        With a 500 ms presentation and a 50 ms minimum interval this is
        10, which the SNNwot hardware encodes as a 4-bit count
        (Section 4.2.2).
        """
        return int(self.t_period // self.min_spike_interval)

    @property
    def topology(self) -> str:
        """Human-readable topology string, e.g. ``'28x28-300'``."""
        side = int(round(self.n_inputs**0.5))
        if side * side == self.n_inputs:
            prefix = f"{side}x{side}"
        else:
            prefix = str(self.n_inputs)
        return f"{prefix}-{self.n_neurons}"

    def with_neurons(self, n_neurons: int) -> "SNNConfig":
        """Return a copy with a different neuron count, rescaling the
        homeostasis schedule per Table 1's expressions."""
        homeo_epoch = 10.0 * self.t_period * n_neurons
        homeo_threshold = 3.0 * homeo_epoch / (self.t_period * n_neurons)
        return replace(
            self,
            n_neurons=n_neurons,
            homeo_epoch=homeo_epoch,
            homeo_threshold=homeo_threshold,
        )


def mnist_mlp_config(**overrides) -> MLPConfig:
    """The paper's MNIST MLP configuration (28x28-100-10)."""
    return replace(MLPConfig(), **overrides).validate()


def mnist_snn_config(**overrides) -> SNNConfig:
    """The paper's MNIST SNN configuration (28x28-300)."""
    return replace(SNNConfig(), **overrides).validate()


def mpeg7_mlp_config(**overrides) -> MLPConfig:
    """The paper's MPEG-7 MLP configuration (28x28-15-10, Sec 4.5)."""
    base = MLPConfig(n_inputs=784, n_hidden=15, n_output=10)
    return replace(base, **overrides).validate()


def mpeg7_snn_config(**overrides) -> SNNConfig:
    """The paper's MPEG-7 SNN configuration (28x28-90, Sec 4.5)."""
    base = SNNConfig(n_inputs=784).with_neurons(90)
    return replace(base, **overrides).validate()


def sad_mlp_config(**overrides) -> MLPConfig:
    """The paper's Spoken-Arabic-Digits MLP configuration (13x13-60-10)."""
    base = MLPConfig(n_inputs=169, n_hidden=60, n_output=10)
    return replace(base, **overrides).validate()


def sad_snn_config(**overrides) -> SNNConfig:
    """The paper's Spoken-Arabic-Digits SNN configuration (13x13-90)."""
    base = SNNConfig(n_inputs=169).with_neurons(90)
    return replace(base, **overrides).validate()
