"""Model-level fault application: corrupted clones of trained models.

These helpers never mutate the trained model they are given; they
build corrupted copies (or return the original object unchanged when
the injector is null, preserving the bit-identity guarantee).

Fault-site mapping:

========================  =====================================================
fault                     realisation per substrate
========================  =====================================================
weight bit flips /        corrupt the stored 8-bit codes: the MLP's signed
stuck-at synapses         Q2.5 codes (hidden + output banks), the SNN's
                          unsigned [0, 255] weights.
dead neurons              MLP: a dead *hidden* unit contributes nothing
                          downstream (its output-bank column is zeroed).
                          SNN: a dead neuron never fires and accumulates no
                          potential (zero weights, unreachable threshold).
dropped/spurious spikes   SNNwt: corrupt the timed SpikeTrain per
                          presentation.  SNNwot: corrupt the 4-bit counts.
transient upsets          folded datapath simulators only
                          (:mod:`repro.hardware.cyclesim`).
========================  =====================================================
"""

from __future__ import annotations

import numpy as np

from .injector import FaultInjector

#: Threshold assigned to dead SNN neurons — unreachable for any input
#: (well above w_max * n_inputs for every supported topology) yet safe
#: to round into the cycle simulator's int64 thresholds.
DEAD_NEURON_THRESHOLD = 1e15


def faulty_quantized_mlp(network, injector: FaultInjector):
    """A :class:`~repro.mlp.quantized.QuantizedMLP` with injected faults.

    Convenience wrapper around the ``injector=`` constructor hook.
    """
    from ..mlp.quantized import QuantizedMLP

    return QuantizedMLP(network, injector=injector)


def corrupt_spiking_network(network, injector: FaultInjector):
    """A corrupted clone of a trained, labeled SpikingNetwork (SNNwt).

    Returns ``network`` itself (untouched) when the injector is null.
    Otherwise the clone carries SRAM-corrupted weights, dead neurons
    (zero weights, unreachable thresholds) and — via the network's
    ``fault_injector`` hook — per-presentation spike-fabric faults.
    """
    if injector.null:
        return network
    from ..snn.network import SpikingNetwork

    clone = SpikingNetwork(network.config, coder=network.coder)
    clone.weights = injector.corrupt_weights(network.weights, "snn")
    if clone.weights is network.weights:  # no weight faults configured
        clone.weights = network.weights.copy()
    clone.population.thresholds[:] = network.population.thresholds
    clone.neuron_labels = (
        None if network.neuron_labels is None else network.neuron_labels.copy()
    )
    dead = injector.dead_neuron_mask(network.config.n_neurons, "snn")
    if dead.any():
        clone.weights[dead] = 0.0
        clone.population.thresholds[dead] = DEAD_NEURON_THRESHOLD
    if injector.config.affects_spikes:
        clone.fault_injector = injector
    return clone


def faulty_snn_wot(network, injector: FaultInjector):
    """A :class:`~repro.snn.snn_wot.SNNWithoutTime` with injected faults.

    The count-based forward path shares the SNN's weight SRAM and
    input fabric, so it sees the same weight corruption, dead-neuron
    mask (independent stream: a dead MAX-tree lane is a different
    physical circuit) and count-level spike faults.
    """
    from ..snn.snn_wot import SNNWithoutTime

    return SNNWithoutTime(network, injector=injector)


def dead_rows_zeroed(
    weights: np.ndarray, dead: np.ndarray
) -> np.ndarray:
    """Copy of ``weights`` with dead neurons' rows zeroed (no copy if none)."""
    if not dead.any():
        return weights
    out = np.array(weights, copy=True)
    out[dead] = 0
    return out
