"""Deterministic fault injection bound to named RNG streams.

A :class:`FaultInjector` couples a :class:`~repro.faults.models.FaultConfig`
to the library's deterministic RNG plumbing: every fault site draws
from its own child generator (:func:`repro.core.rng.child_rng` keyed
by the config's seed and a stream name), so

* the same ``(FaultConfig, stream)`` pair always produces the same
  corruption — corrupted accuracies are exactly reproducible;
* different fault sites (MLP hidden weights vs SNN weights vs spike
  fabric) are statistically independent;
* per-trial reseeding is just ``config.with_seed(trial_seed)``.

When the config is *null* (all rates zero) every method returns its
input unchanged — the injected inference paths are bit-identical to
the uninjected ones.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.rng import child_rng
from .models import (
    FaultConfig,
    flip_bits,
    perturb_counts,
    sample_dead_mask,
    stuck_at,
)


class FaultInjector:
    """Applies the faults of one :class:`FaultConfig` deterministically.

    One-shot corruption (weights, dead masks) derives a *fresh* child
    generator per call from ``(seed, stream)``, so repeating a call
    with the same stream reproduces the same corruption.  Streaming
    corruption (spike trains, transient upsets) advances a cached
    per-stream generator, so a *sequence* of calls is deterministic
    for a given injector instance.
    """

    def __init__(self, config: FaultConfig):
        self.config = config.validate()
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def null(self) -> bool:
        """True when injection is a provable no-op."""
        return self.config.null

    def _fresh(self, stream: str) -> np.random.Generator:
        """A fresh deterministic generator for a one-shot fault site."""
        return child_rng(self.config.seed, f"fault-{stream}")

    def stream(self, stream: str) -> np.random.Generator:
        """The cached, advancing generator for a streaming fault site."""
        if stream not in self._streams:
            self._streams[stream] = self._fresh(stream)
        return self._streams[stream]

    # ------------------------------------------------------------------
    # one-shot (construction-time) faults
    # ------------------------------------------------------------------

    def corrupt_weight_codes(
        self, codes: np.ndarray, stream: str, signed: bool = False
    ) -> np.ndarray:
        """SRAM corruption of stored 8-bit weight codes.

        Applies stuck-at defects first (a permanently shorted cell
        also suffers no further soft error in this model), then the
        bit-flip BER.  Returns ``codes`` unchanged when the config has
        no weight faults.
        """
        config = self.config
        if not config.affects_weights:
            return codes
        rng = self._fresh(f"{stream}-weights")
        out = stuck_at(
            codes,
            config.stuck_at_zero_rate,
            config.stuck_at_one_rate,
            rng,
            signed=signed,
        )
        return flip_bits(out, config.weight_bit_flip_ber, rng, signed=signed)

    def corrupt_weights(self, weights: np.ndarray, stream: str) -> np.ndarray:
        """SRAM corruption of *float* weights stored as unsigned codes.

        The SNN keeps float weights on (or near) the 8-bit [0, 255]
        grid; the SRAM stores the rounded code, so corruption rounds,
        corrupts the code, and returns the float image of the result.
        Returns ``weights`` unchanged (no rounding!) when the config
        has no weight faults — preserving the bit-identity guarantee.
        """
        if not self.config.affects_weights:
            return weights
        codes = np.clip(np.round(weights), 0, 255).astype(np.int64)
        return self.corrupt_weight_codes(codes, stream).astype(np.float64)

    def dead_neuron_mask(self, n_neurons: int, stream: str) -> np.ndarray:
        """Boolean mask of dead neuron circuits for one layer."""
        return sample_dead_mask(
            n_neurons, self.config.dead_neuron_rate, self._fresh(f"{stream}-dead")
        )

    # ------------------------------------------------------------------
    # streaming (inference-time) faults
    # ------------------------------------------------------------------

    def corrupt_counts(self, counts: np.ndarray, cap: int, stream: str) -> np.ndarray:
        """Dropped/spurious spikes on SNNwot's per-pixel counts."""
        config = self.config
        if not config.affects_spikes:
            return counts
        return perturb_counts(
            counts,
            config.spike_drop_rate,
            config.spike_spurious_rate,
            self.stream(f"{stream}-counts"),
            cap,
        )

    def corrupt_spike_train(self, train, stream: str):
        """Dropped/spurious spikes on a timed :class:`SpikeTrain`.

        Returns the train itself when the config has no spike faults;
        otherwise a new train (modulation of spurious spikes is 1.0,
        matching rate coding).
        """
        config = self.config
        if not config.affects_spikes:
            return train
        from ..snn.coding import SpikeTrain  # local import avoids a cycle

        rng = self.stream(f"{stream}-spikes")
        keep = rng.random(train.times.shape) >= config.spike_drop_rate
        times = train.times[keep]
        inputs = train.inputs[keep]
        modulation = train.modulation[keep]
        if config.spike_spurious_rate > 0.0:
            n_extra = int(
                rng.poisson(config.spike_spurious_rate * max(train.n_spikes, 1))
            )
            if n_extra:
                times = np.concatenate(
                    [times, rng.uniform(0.0, train.duration, size=n_extra)]
                )
                inputs = np.concatenate(
                    [inputs, rng.integers(0, train.n_inputs, size=n_extra)]
                )
                modulation = np.concatenate([modulation, np.ones(n_extra)])
        return SpikeTrain(
            times=times,
            inputs=inputs,
            n_inputs=train.n_inputs,
            duration=train.duration,
            modulation=modulation,
        )

    def maybe_upset(
        self, accumulators: np.ndarray, stream: str, bits: int = 20
    ) -> None:
        """One accumulation cycle's transient-upset lottery (in place).

        With probability ``transient_upset_rate`` a single-event upset
        flips one random bit (of the low ``bits``) in one random
        accumulator register.  No-op (and no RNG draw) at rate 0.
        """
        rate = self.config.transient_upset_rate
        if rate <= 0.0:
            return
        rng = self.stream(f"{stream}-upsets")
        if rng.random() >= rate:
            return
        index = int(rng.integers(0, accumulators.size))
        bit = int(rng.integers(0, bits))
        flat = accumulators.reshape(-1)
        flat[index] = int(flat[index]) ^ (1 << bit)


def null_injector() -> FaultInjector:
    """An injector with every rate zero (for tests and defaults)."""
    return FaultInjector(FaultConfig())
