"""Hardware fault models and injection hooks (robustness study).

The paper's comparison (MLP+BP vs SNNwt/SNNwot on shared hardware
substrates) stops at clean-hardware accuracy and cost.  A recurring
claim in the surrounding literature — e.g. Bouvier et al.'s SNN
hardware survey — is that spiking substrates *degrade gracefully*
under hardware faults while dense MLP datapaths do not.  This package
lets us test that claim directly against the models we already have:

* :mod:`repro.faults.models` — composable, seeded fault descriptions
  (:class:`FaultConfig`) plus the bit-level corruption primitives
  (SRAM weight bit-flips at a configurable BER, stuck-at-0/1
  synapses, dead neurons, dropped/spurious spikes, transient datapath
  upsets);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, binding a
  :class:`FaultConfig` to deterministic child RNG streams
  (:func:`repro.core.rng.child_rng`) so every corrupted run is
  reproducible;
* :mod:`repro.faults.apply` — model-level application helpers that
  build corrupted clones of trained models without mutating the
  originals.

All inference-path hooks are *provable no-ops* when every fault rate
is 0.0: the hooks return their inputs unchanged (the same array
objects), so the uninjected path is bit-identical.
"""

from .apply import corrupt_spiking_network, faulty_quantized_mlp, faulty_snn_wot
from .injector import FaultInjector, null_injector
from .models import (
    FaultConfig,
    flip_bits,
    perturb_counts,
    sample_dead_mask,
    stuck_at,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "null_injector",
    "flip_bits",
    "stuck_at",
    "sample_dead_mask",
    "perturb_counts",
    "faulty_quantized_mlp",
    "corrupt_spiking_network",
    "faulty_snn_wot",
]
