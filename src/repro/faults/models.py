"""Fault descriptions and bit-level corruption primitives.

The fault taxonomy follows the SNN-hardware reliability literature
(SRAM soft errors, manufacturing stuck-at defects, dead neuron
circuits, communication-fabric spike loss, transient datapath upsets)
applied to the two substrates of the paper:

* both accelerators keep 8-bit synaptic weights in SRAM banks
  (:mod:`repro.hardware.sram`), so *weight bit-flips* (a per-bit
  error rate, BER) and *stuck-at-0/1 synapses* apply to MLP and SNN
  alike at the stored-code level;
* *dead neurons* model a defective neuron circuit: an MLP hidden unit
  whose output contributes nothing downstream, or an SNN neuron that
  can never fire;
* *dropped / spurious spikes* model input-fabric faults of the
  spiking substrates (AER link errors);
* *transient upsets* model single-event upsets in the folded
  datapath's accumulator registers, one potential bit per event
  (:mod:`repro.hardware.cyclesim`).

Every primitive takes an explicit :class:`numpy.random.Generator` and
returns its input **unchanged and un-copied** when the corresponding
rate is zero, making the rate-0.0 path provably bit-identical to the
uninjected one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from ..core.errors import ConfigError

#: Width of a stored synaptic weight (both substrates use 8-bit SRAM
#: words; Table 6 / Section 4.2).
WEIGHT_BITS = 8

_RATE_FIELDS: Tuple[str, ...] = (
    "weight_bit_flip_ber",
    "stuck_at_zero_rate",
    "stuck_at_one_rate",
    "dead_neuron_rate",
    "spike_drop_rate",
    "spike_spurious_rate",
    "transient_upset_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """A composable description of the injected hardware faults.

    All rates are probabilities in [0, 1]; a rate of 0.0 disables the
    corresponding fault entirely (the injection hook becomes a no-op).

    Attributes:
        weight_bit_flip_ber: per-bit flip probability applied to every
            stored 8-bit weight code (SRAM soft-error BER).
        stuck_at_zero_rate: fraction of synapses whose stored code is
            stuck at all-zeros (manufacturing defect).
        stuck_at_one_rate: fraction of synapses whose stored code is
            stuck at all-ones (0xFF).
        dead_neuron_rate: fraction of neuron circuits that are dead.
        spike_drop_rate: probability that an input spike event is lost
            before reaching the synaptic array.
        spike_spurious_rate: expected number of spurious spike events
            injected per genuine event (AER noise).
        transient_upset_rate: per-accumulation-cycle probability of a
            single-event upset flipping one bit of one accumulator in
            the folded datapath simulators.
        seed: base seed for all fault RNG streams (child streams are
            derived per fault site, see
            :class:`repro.faults.injector.FaultInjector`).
    """

    weight_bit_flip_ber: float = 0.0
    stuck_at_zero_rate: float = 0.0
    stuck_at_one_rate: float = 0.0
    dead_neuron_rate: float = 0.0
    spike_drop_rate: float = 0.0
    spike_spurious_rate: float = 0.0
    transient_upset_rate: float = 0.0
    seed: int = 0

    def validate(self) -> "FaultConfig":
        """Raise :class:`ConfigError` on out-of-range rates."""
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise ConfigError(
                    f"FaultConfig.{name}={value} must be in [0, 1]"
                )
        if self.stuck_at_zero_rate + self.stuck_at_one_rate > 1.0:
            raise ConfigError(
                "stuck_at_zero_rate + stuck_at_one_rate must not exceed 1"
            )
        return self

    @property
    def null(self) -> bool:
        """True when every fault rate is zero (injection is a no-op)."""
        return all(float(getattr(self, name)) == 0.0 for name in _RATE_FIELDS)

    @property
    def affects_weights(self) -> bool:
        return (
            self.weight_bit_flip_ber > 0.0
            or self.stuck_at_zero_rate > 0.0
            or self.stuck_at_one_rate > 0.0
        )

    @property
    def affects_spikes(self) -> bool:
        return self.spike_drop_rate > 0.0 or self.spike_spurious_rate > 0.0

    def with_seed(self, seed: int) -> "FaultConfig":
        """Copy with a different base seed (per-trial reseeding)."""
        return replace(self, seed=int(seed))

    @classmethod
    def sram_ber(cls, ber: float, seed: int = 0) -> "FaultConfig":
        """A pure SRAM soft-error profile: weight bit-flips only.

        The shape used by the learning-time chaos scenarios, where the
        bit-error rate hits the 8-bit weight codes of a candidate
        snapshot *between* STDP windows — storage corruption, not a
        change to the learning rule itself.
        """
        return cls(weight_bit_flip_ber=float(ber), seed=int(seed)).validate()

    def scaled(self, severity: float) -> "FaultConfig":
        """Copy with every rate multiplied by ``severity`` (clipped to 1)."""
        if severity < 0:
            raise ConfigError(f"severity must be >= 0, got {severity}")
        updates = {
            name: min(float(getattr(self, name)) * severity, 1.0)
            for name in _RATE_FIELDS
        }
        return replace(self, **updates).validate()


def flip_bits(
    codes: np.ndarray,
    ber: float,
    rng: np.random.Generator,
    bits: int = WEIGHT_BITS,
    signed: bool = False,
) -> np.ndarray:
    """Flip each of the low ``bits`` bits of every code with prob ``ber``.

    Codes are treated as ``bits``-wide two's-complement (``signed``)
    or unsigned registers; the result stays inside the register range.
    The exact endpoints are deterministic *without consuming any RNG
    draws*: ``ber`` 0 returns ``codes`` itself (no copy), ``ber`` 1
    inverts every bit of every code.  Keeping the endpoints draw-free
    means a sweep over rates never shifts the RNG stream of the faults
    that follow it.
    """
    if ber <= 0.0:
        return codes
    codes = np.asarray(codes)
    register = _to_register(codes, bits)
    if ber >= 1.0:
        return _from_register(register ^ ((1 << bits) - 1), bits, signed)
    mask = np.zeros(codes.shape, dtype=np.int64)
    for bit in range(bits):
        mask |= (rng.random(codes.shape) < ber).astype(np.int64) << bit
    return _from_register(register ^ mask, bits, signed)


def stuck_at(
    codes: np.ndarray,
    zero_rate: float,
    one_rate: float,
    rng: np.random.Generator,
    bits: int = WEIGHT_BITS,
    signed: bool = False,
) -> np.ndarray:
    """Force a random fraction of codes to all-zeros / all-ones.

    A single uniform draw per synapse partitions the population into
    stuck-at-0 (``< zero_rate``), stuck-at-1 (next ``one_rate``), and
    healthy, so the two defect sets never overlap.  The endpoints are
    draw-free: both rates 0 returns ``codes`` itself, and a rate of
    exactly 1.0 forces *every* code without consuming RNG (uniform
    draws are half-open in [0, 1), so ``draw < 1.0`` is all-True by
    construction — we just skip the draw entirely).
    """
    if zero_rate <= 0.0 and one_rate <= 0.0:
        return codes
    codes = np.asarray(codes)
    if zero_rate >= 1.0:
        return _from_register(np.zeros(codes.shape, dtype=np.int64), bits, signed)
    if one_rate >= 1.0:
        return _from_register(
            np.full(codes.shape, (1 << bits) - 1, dtype=np.int64), bits, signed
        )
    draw = rng.random(codes.shape)
    register = _to_register(codes, bits)
    register = np.where(draw < zero_rate, 0, register)
    all_ones = (1 << bits) - 1
    register = np.where(
        (draw >= zero_rate) & (draw < zero_rate + one_rate), all_ones, register
    )
    return _from_register(register, bits, signed)


def sample_dead_mask(
    n_neurons: int, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Boolean mask of dead neuron circuits.

    All-False at rate 0 and all-True at rate 1, both without consuming
    RNG draws (see :func:`stuck_at` for why the endpoints are exact).
    """
    if rate <= 0.0:
        return np.zeros(n_neurons, dtype=bool)
    if rate >= 1.0:
        return np.ones(n_neurons, dtype=bool)
    return rng.random(n_neurons) < rate


def perturb_counts(
    counts: np.ndarray,
    drop_rate: float,
    spurious_rate: float,
    rng: np.random.Generator,
    cap: int,
) -> np.ndarray:
    """Corrupt per-pixel spike counts (the SNNwot representation).

    Each genuine spike is independently lost with ``drop_rate``
    (binomial thinning) and spurious events arrive Poisson-distributed
    at ``spurious_rate`` expected extras per genuine event (plus a
    small floor so silent pixels can glitch too).  The result is
    clipped to the hardware's 4-bit count range [0, cap].  Returns
    ``counts`` itself when both rates are 0.
    """
    if drop_rate <= 0.0 and spurious_rate <= 0.0:
        return counts
    counts = np.asarray(counts)
    kept = counts
    if drop_rate >= 1.0:
        # Total fabric loss is deterministic — no binomial draw, so the
        # RNG stream position matches the drop_rate=0 path exactly.
        kept = np.zeros(counts.shape, dtype=np.int64)
    elif drop_rate > 0.0:
        kept = rng.binomial(counts.astype(np.int64), 1.0 - drop_rate)
    if spurious_rate > 0.0:
        lam = spurious_rate * np.maximum(counts.astype(np.float64), 1.0)
        kept = kept + rng.poisson(lam)
    return np.clip(kept, 0, cap).astype(counts.dtype)


def _to_register(codes: np.ndarray, bits: int) -> np.ndarray:
    """Two's-complement register image of integer codes (int64 >= 0)."""
    return codes.astype(np.int64) & ((1 << bits) - 1)


def _from_register(register: np.ndarray, bits: int, signed: bool) -> np.ndarray:
    """Back from a register image to (signed) integer codes."""
    if not signed:
        return register.astype(np.int64)
    half = 1 << (bits - 1)
    return ((register + half) & ((1 << bits) - 1)) - half
