"""Piecewise-linear exponential-leak evaluator (paper Section 4.4).

The SNNwt datapath models the membrane leak with the analytical
expression v(T2) = v(T1) * exp(-(T2-T1)/T_leak).  "We implement this
expression in hardware using piecewise linear interpolation" — the
same small-table + multiplier + adder structure as the sigmoid unit.

In the 1-ms-per-cycle design the elapsed time between evaluations is
always one cycle, so the leak is a *constant* multiplicative factor
exp(-1/T_leak); the interpolation table exists for the general case
(multi-millisecond event gaps in an event-driven variant).  This
module provides both: :class:`ExponentialLUT` interpolates
exp(-dt/T_leak) over a dt range, and :func:`leak_factor_fixed_point`
gives the single-cycle factor as the fixed-point constant the
hardware multiplies by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError
from ..fixedpoint.qformat import QFormat

#: Number of interpolation segments (matches the sigmoid unit).
LEAK_SEGMENTS = 16

#: Fixed-point format of the leak multiplier: unsigned Q0.15 covers
#: factors in [0, 1) with ~3e-5 resolution.
LEAK_FACTOR_FORMAT = QFormat(integer_bits=0, fraction_bits=15, signed=False)


@dataclass(frozen=True)
class ExponentialLUT:
    """Piecewise-linear exp(-dt / t_leak) over dt in [0, dt_max]."""

    slopes: np.ndarray
    intercepts: np.ndarray
    t_leak: float
    dt_max: float

    @classmethod
    def build(
        cls, t_leak: float, dt_max: float = None, segments: int = LEAK_SEGMENTS
    ) -> "ExponentialLUT":
        """Fit the interpolation; default range covers 3 leak constants."""
        if t_leak <= 0:
            raise ConfigError(f"t_leak must be positive, got {t_leak}")
        if segments < 2:
            raise ConfigError(f"need at least 2 segments, got {segments}")
        if dt_max is None:
            dt_max = 3.0 * t_leak
        if dt_max <= 0:
            raise ConfigError(f"dt_max must be positive, got {dt_max}")
        edges = np.linspace(0.0, dt_max, segments + 1)
        values = np.exp(-edges / t_leak)
        slopes = (values[1:] - values[:-1]) / (edges[1:] - edges[:-1])
        intercepts = values[:-1] - slopes * edges[:-1]
        return cls(slopes=slopes, intercepts=intercepts, t_leak=t_leak, dt_max=dt_max)

    @property
    def segments(self) -> int:
        return int(self.slopes.size)

    def evaluate(self, dt: np.ndarray) -> np.ndarray:
        """Interpolated exp(-dt/t_leak); clamps dt into [0, dt_max]."""
        dt = np.clip(np.asarray(dt, dtype=np.float64), 0.0, self.dt_max)
        width = self.dt_max / self.segments
        index = np.minimum((dt / width).astype(np.int64), self.segments - 1)
        return np.clip(self.slopes[index] * dt + self.intercepts[index], 0.0, 1.0)

    def max_error(self, n_probe: int = 4001) -> float:
        """Worst-case |LUT - exact| over the covered range."""
        dts = np.linspace(0.0, self.dt_max, n_probe)
        return float(np.max(np.abs(self.evaluate(dts) - np.exp(-dts / self.t_leak))))


def leak_factor_fixed_point(t_leak: float, dt: float = 1.0) -> int:
    """The single-cycle leak multiplier as a Q0.15 integer code.

    The 1-ms-per-cycle SNNwt datapath multiplies every potential by
    this constant each cycle; with t_leak = 500 ms the factor is
    0.998002 -> code 32703.
    """
    if t_leak <= 0 or dt < 0:
        raise ConfigError("t_leak must be positive and dt non-negative")
    factor = float(np.exp(-dt / t_leak))
    return int(LEAK_FACTOR_FORMAT.quantize_code(np.array([factor]))[0])


def apply_fixed_point_leak(potential_codes: np.ndarray, factor_code: int) -> np.ndarray:
    """One hardware leak step: (v * factor) >> 15, in integer arithmetic."""
    potential_codes = np.asarray(potential_codes, dtype=np.int64)
    if not 0 <= factor_code <= LEAK_FACTOR_FORMAT.max_code:
        raise ConfigError(f"factor code {factor_code} outside Q0.15")
    return (potential_codes * factor_code) >> 15
