"""GPU reference cost model (paper Section 4.3.3, Table 8).

The paper compares its accelerators against CUDA implementations of
the same two models (MLP and SNNwot) on an NVIDIA K20M, built on
CUBLAS sgemv.  Table 8 reports accelerator speedups and energy
benefits over that GPU baseline.

We cannot run a K20M offline, so the GPU side is modeled by its
per-image kernel time and energy.  Those constants are not free
parameters: combining Table 7 (accelerator time/energy per image)
with Table 8 (ratios) pins them —

  time:   MLP ni=16 runs 57 x 2.25 ns = 128.25 ns and Table 8 gives
          626x, so the GPU takes ~80.3 us/image; the ni=1 and expanded
          rows give 79.9 and 82.0 us — consistent.  SNN rows give
          ~56-58 us.
  energy: MLP rows give 4.75-4.84 mJ/image; SNN rows 2.88-2.90 mJ.

The small per-image times reflect the paper's explanation: global
memory fetch latency, no reuse, and very small matrices (100-300
neurons, 784 inputs) keep the GPU far from peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import HardwareModelError
from .designs import DesignReport

#: Recovered K20M per-image costs (see module docstring).
MLP_GPU_TIME_US = 80.3
MLP_GPU_ENERGY_MJ = 4.78
SNN_GPU_TIME_US = 57.5
SNN_GPU_ENERGY_MJ = 2.90


@dataclass(frozen=True)
class GPUReference:
    """Per-image GPU cost of one network's CUDA implementation."""

    name: str
    time_per_image_us: float
    energy_per_image_mj: float

    def __post_init__(self) -> None:
        if self.time_per_image_us <= 0 or self.energy_per_image_mj <= 0:
            raise HardwareModelError(f"{self.name}: GPU costs must be positive")

    def speedup_of(self, design: DesignReport) -> float:
        """Accelerator speedup over this GPU implementation."""
        return self.time_per_image_us / design.time_per_image_us

    def energy_benefit_of(self, design: DesignReport) -> float:
        """Accelerator energy benefit over this GPU implementation."""
        return self.energy_per_image_mj * 1e3 / design.energy_per_image_uj


#: The two baselines of Table 8.  The SNNwt accelerator is compared
#: against the same SNN kernel as SNNwot (the GPU code has no notion
#: of emulated milliseconds; it computes the count-based forward pass).
MLP_GPU = GPUReference("MLP on K20M (CUBLAS)", MLP_GPU_TIME_US, MLP_GPU_ENERGY_MJ)
SNN_GPU = GPUReference("SNN on K20M (CUBLAS)", SNN_GPU_TIME_US, SNN_GPU_ENERGY_MJ)


def gpu_for(design_name: str) -> GPUReference:
    """Pick the Table 8 baseline matching a design name."""
    if design_name.lower().startswith("mlp"):
        return MLP_GPU
    if design_name.lower().startswith("snn"):
        return SNN_GPU
    raise HardwareModelError(f"no GPU baseline for design {design_name!r}")
