"""Design-space exploration and designer guidance.

The paper's third question — "In which cases shall the designer
consider using hardware SNN or hardware MLP accelerators?" — is
answered qualitatively in its conclusions:

* MLP+BP folded designs win on accuracy, area and energy at the
  few-mm^2 footprints of embedded systems;
* fully expanded (latency-critical, large-area) designs favour SNNs
  (adders beat multipliers once everything is spatially unrolled);
* workloads needing *permanent online learning* favour SNN+STDP
  (the learning circuit is cheap, BP in hardware is not);
* accuracy-critical workloads rule SNN+STDP out.

This module turns that guidance into code: it enumerates the design
space (family x fold factor x expanded), computes each point's cost
report, extracts the Pareto frontier for any pair of objectives, and
:func:`recommend` applies the paper's decision logic to a
:class:`Requirements` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import MLPConfig, SNNConfig
from ..core.errors import HardwareModelError
from .designs import DesignReport
from .expanded import expanded_mlp, expanded_snn_wot, expanded_snn_wt
from .folded import FOLD_FACTORS, folded_mlp, folded_snn_wot, folded_snn_wt
from .online import online_snn


#: Metrics a :class:`DesignPoint` can be ranked on (all minimized).
METRIC_NAMES = ("area", "energy", "latency", "power", "edp")


@dataclass(frozen=True)
class DesignPoint:
    """One explored accelerator design."""

    family: str              # "MLP", "SNNwot", "SNNwt", "SNN-online"
    variant: str             # "ni=1".."ni=16" or "expanded"
    report: DesignReport
    supports_online_learning: bool = False

    @property
    def area_mm2(self) -> float:
        return self.report.total_area_mm2

    @property
    def energy_uj(self) -> float:
        return self.report.energy_per_image_uj

    @property
    def latency_us(self) -> float:
        return self.report.time_per_image_us

    @property
    def edp_uj_us(self) -> float:
        """Energy-delay product (uJ x us per image)."""
        return self.energy_uj * self.latency_us

    def metric(self, name: str) -> float:
        try:
            return {
                "area": self.area_mm2,
                "energy": self.energy_uj,
                "latency": self.latency_us,
                "power": self.report.power_w,
                "edp": self.edp_uj_us,
            }[name]
        except KeyError:
            raise HardwareModelError(
                f"unknown metric {name!r}; choose " + "/".join(METRIC_NAMES)
            ) from None


def enumerate_design_space(
    mlp_config: MLPConfig,
    snn_config: SNNConfig,
    fold_factors: Sequence[int] = FOLD_FACTORS,
    include_online: bool = True,
) -> List[DesignPoint]:
    """All design points of the paper's study for the two topologies."""
    mlp_config.validate()
    snn_config.validate()
    points: List[DesignPoint] = []
    for ni in fold_factors:
        points.append(DesignPoint("MLP", f"ni={ni}", folded_mlp(mlp_config, ni)))
        points.append(
            DesignPoint("SNNwot", f"ni={ni}", folded_snn_wot(snn_config, ni))
        )
        points.append(
            DesignPoint("SNNwt", f"ni={ni}", folded_snn_wt(snn_config, ni))
        )
        if include_online:
            points.append(
                DesignPoint(
                    "SNN-online",
                    f"ni={ni}",
                    online_snn(snn_config, ni),
                    supports_online_learning=True,
                )
            )
    points.append(DesignPoint("MLP", "expanded", expanded_mlp(mlp_config)))
    points.append(DesignPoint("SNNwot", "expanded", expanded_snn_wot(snn_config)))
    points.append(DesignPoint("SNNwt", "expanded", expanded_snn_wt(snn_config)))
    return points


def pareto_frontier(
    points: Sequence[DesignPoint],
    objectives: Sequence[str] = ("area", "latency"),
) -> List[DesignPoint]:
    """Non-dominated points under the given minimize-all objectives.

    A point is dominated if another point is no worse on every
    objective and strictly better on at least one.  This O(n^2)
    pairwise scan is the *documented oracle* for the vectorized
    O(n log n) frontier in :mod:`repro.hardware.sweep`
    (:func:`~repro.hardware.sweep.pareto_frontier_fast` must return an
    identical list on every input); keep its semantics frozen:

    * **duplicates** — points with identical objective vectors never
      dominate each other (domination needs a strict improvement), so
      every copy of a frontier point is returned;
    * **ties on one objective** — a point tied on one objective but
      strictly worse on another *is* dominated and dropped;
    * **single point / empty input** — a lone point is its own
      frontier; an empty sequence yields an empty frontier (unknown
      objective names still raise, even then);
    * **ordering** — the frontier is sorted by the first objective,
      stably, so equal-valued points keep their input order.
    """
    if not objectives:
        raise HardwareModelError("need at least one objective")
    for objective in objectives:
        if objective not in METRIC_NAMES:
            raise HardwareModelError(
                f"unknown metric {objective!r}; choose " + "/".join(METRIC_NAMES)
            )
    points = list(points)
    values = [[p.metric(o) for o in objectives] for p in points]
    frontier: List[DesignPoint] = []
    for i, candidate in enumerate(points):
        candidate_values = values[i]
        dominated = False
        for j, other in enumerate(points):
            if other is candidate:
                continue
            other_values = values[j]
            if all(ov <= cv for ov, cv in zip(other_values, candidate_values)) and any(
                ov < cv for ov, cv in zip(other_values, candidate_values)
            ):
                dominated = True
                break
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.metric(objectives[0]))


@dataclass(frozen=True)
class Requirements:
    """A designer's constraints, in the units the paper uses.

    Attributes:
        max_area_mm2: silicon budget (None = unconstrained).
        max_latency_us: per-input deadline (None = unconstrained).
        max_energy_uj: per-input energy budget (None = unconstrained).
        needs_online_learning: the application must keep learning in
            the field (the paper's SNN+STDP niche).
        accuracy_critical: misclassifications are costly ("life or
            death decisions" in the paper's example) — rules out the
            lower-accuracy SNN+STDP family.
    """

    max_area_mm2: Optional[float] = None
    max_latency_us: Optional[float] = None
    max_energy_uj: Optional[float] = None
    needs_online_learning: bool = False
    accuracy_critical: bool = False


@dataclass
class Recommendation:
    """The explorer's answer: a chosen point plus the reasoning trail."""

    chosen: Optional[DesignPoint]
    reasons: List[str] = field(default_factory=list)
    feasible: List[DesignPoint] = field(default_factory=list)

    def summary(self) -> str:
        lines = list(self.reasons)
        if self.chosen is not None:
            lines.append(
                f"recommended: {self.chosen.family} {self.chosen.variant} — "
                f"{self.chosen.report.summary()}"
            )
        else:
            lines.append("no design satisfies the constraints")
        return "\n".join(lines)


def recommend(
    requirements: Requirements,
    mlp_config: MLPConfig,
    snn_config: SNNConfig,
    prefer: str = "energy",
) -> Recommendation:
    """Apply the paper's decision logic to a set of requirements.

    1. If permanent online learning is required, only SNN+STDP with
       the learning circuit qualifies (Section 4.4) — unless accuracy
       is also critical, in which case the paper offers no winner.
    2. Otherwise filter by the area / latency / energy constraints and
       pick the feasible point minimizing ``prefer``; with the paper's
       cost model this selects folded MLPs at embedded footprints and
       expanded SNNs when area is unconstrained but latency is tight.
    """
    reasons: List[str] = []
    points = enumerate_design_space(mlp_config, snn_config)

    if requirements.needs_online_learning and requirements.accuracy_critical:
        reasons.append(
            "online learning + accuracy-critical: the paper identifies no "
            "current winner (SNN+STDP accuracy is insufficient; hardware BP "
            "is out of scope)"
        )
        return Recommendation(chosen=None, reasons=reasons)

    if requirements.needs_online_learning:
        points = [p for p in points if p.supports_online_learning]
        reasons.append(
            "permanent online learning required -> SNN+STDP with the "
            "learning circuit (its overhead is small: Table 9)"
        )
    elif requirements.accuracy_critical:
        points = [p for p in points if p.family == "MLP"]
        reasons.append(
            "accuracy-critical -> MLP+BP family (the SNN+STDP accuracy "
            "gap is unacceptable here: Section 3.1)"
        )

    feasible = []
    for point in points:
        if requirements.max_area_mm2 is not None and point.area_mm2 > requirements.max_area_mm2:
            continue
        if (
            requirements.max_latency_us is not None
            and point.latency_us > requirements.max_latency_us
        ):
            continue
        if (
            requirements.max_energy_uj is not None
            and point.energy_uj > requirements.max_energy_uj
        ):
            continue
        feasible.append(point)

    if not feasible:
        reasons.append("constraints eliminate every design point")
        return Recommendation(chosen=None, reasons=reasons, feasible=[])

    chosen = min(feasible, key=lambda p: p.metric(prefer))
    reasons.append(
        f"{len(feasible)} feasible design(s); minimizing {prefer}"
    )
    return Recommendation(chosen=chosen, reasons=reasons, feasible=feasible)
