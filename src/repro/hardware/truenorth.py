"""Reimplementation of an IBM TrueNorth core (paper Section 5).

The paper makes "a best effort to reimplement the TrueNorth core down
to the layout" from Merolla et al.'s description and compares it with
the folded SNNwot at ni=1 (both process one input for all output
neurons at a time).  The published comparison (65nm reimplementation):

    =============  ==========  ============
    metric         SNNwot ni=1 TrueNorth
    =============  ==========  ============
    area           3.17 mm^2   3.30 mm^2
    time / image   0.98 us     1024 us
    energy / image 1.03 uJ     2.48 uJ
    accuracy       90.85%      89%
    =============  ==========  ============

This module provides both halves of that comparison's TrueNorth side:

* a *behavioral simulator* of the core's constrained synapse format —
  1024 axons x 256 neurons, binary crossbar connectivity, each axon
  carrying one of 4 types, each neuron holding one signed 9-bit weight
  per axon type — including the mapping of a trained SNN onto that
  format (which costs accuracy, reproducing the paper's 89% vs 90.85%
  gap); and
* a *cost model* anchored to the paper's reimplementation numbers
  (the core runs at 1 MHz, so one 1024-tick image takes 1024 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.errors import HardwareModelError, TrainingError
from ..core.metrics import EvaluationResult, evaluate
from ..datasets.base import Dataset
from ..snn.network import SpikingNetwork
from ..snn.snn_wot import SNNWithoutTime
from .designs import DesignReport

#: Core geometry (Merolla et al.; the paper's Section 5 figures).
N_AXONS = 1024
N_NEURONS = 256
N_AXON_TYPES = 4
WEIGHT_BITS = 9  # signed

#: Cost anchors of the paper's 65nm reimplementation.
CORE_AREA_MM2 = 3.30
CORE_TIME_PER_IMAGE_US = 1024.0
CORE_ENERGY_PER_IMAGE_UJ = 2.48
CORE_CLOCK_MHZ = 1.0


@dataclass
class TrueNorthCore:
    """Behavioral model of one neurosynaptic core.

    Attributes:
        connectivity: (N_AXONS, N_NEURONS) binary crossbar.
        axon_types: (N_AXONS,) values in [0, N_AXON_TYPES).
        type_weights: (N_NEURONS, N_AXON_TYPES) signed 9-bit weights.
        thresholds: (N_NEURONS,) firing thresholds.
        leak: per-tick leak subtracted from every potential.
    """

    connectivity: np.ndarray
    axon_types: np.ndarray
    type_weights: np.ndarray
    thresholds: np.ndarray
    leak: float = 0.0

    def __post_init__(self) -> None:
        if self.connectivity.shape != (N_AXONS, N_NEURONS):
            raise HardwareModelError(
                f"connectivity must be {N_AXONS}x{N_NEURONS}, got {self.connectivity.shape}"
            )
        if self.axon_types.shape != (N_AXONS,):
            raise HardwareModelError("axon_types must have one entry per axon")
        if self.type_weights.shape != (N_NEURONS, N_AXON_TYPES):
            raise HardwareModelError(
                f"type_weights must be {N_NEURONS}x{N_AXON_TYPES}"
            )
        limit = 2 ** (WEIGHT_BITS - 1)
        if np.any(np.abs(self.type_weights) >= limit):
            raise HardwareModelError(f"weights must fit signed {WEIGHT_BITS}-bit")

    def effective_weights(self) -> np.ndarray:
        """(N_NEURONS, N_AXONS) equivalent dense weight matrix.

        w[n, a] = connectivity[a, n] * type_weights[n, type(a)] — the
        defining constraint of the crossbar format.
        """
        per_axon = self.type_weights[:, self.axon_types]  # (N, A)
        return per_axon * self.connectivity.T

    def integrate_counts(self, axon_counts: np.ndarray) -> np.ndarray:
        """Potentials after presenting per-axon spike counts (one image).

        Each axon spike injects the neuron's weight for that axon's
        type wherever the crossbar bit is set; the per-tick leak is
        charged for the ticks the presentation spans.
        """
        axon_counts = np.asarray(axon_counts, dtype=np.float64)
        if axon_counts.shape != (N_AXONS,):
            raise HardwareModelError(f"need {N_AXONS} axon counts")
        potentials = self.effective_weights() @ axon_counts
        ticks = float(axon_counts.max()) if axon_counts.size else 0.0
        return potentials - self.leak * ticks

    def winner(self, axon_counts: np.ndarray) -> int:
        """Max-potential readout, as in the SNNwot comparison."""
        return int(np.argmax(self.integrate_counts(axon_counts)))


def map_snn_to_core(
    network: SpikingNetwork, threshold_quantile: float = 0.5
) -> TrueNorthCore:
    """Map a trained SNN onto the TrueNorth synapse format.

    The crossbar constrains each axon to one of four *types* and each
    neuron to one signed 9-bit weight per type, with binary
    connectivity.  Axon types are shared by all neurons, so the
    mapping picks them to maximize fidelity across the population:

    * each input pixel's type is its quartile of *population-mean*
      trained weight (pixels that matter similarly across neurons
      share a type, so a per-neuron level approximates them well);
    * for each neuron and type, pixels above the neuron's per-type
      ``threshold_quantile`` get their connectivity bit set, and the
      type weight is the mean trained weight over those pixels.

    The result approximates each 8-bit weight row by four binary-gated
    shared levels — the quantization that costs TrueNorth its ~2%
    accuracy versus SNNwot in the paper (89% vs 90.85%).
    """
    if network.neuron_labels is None:
        raise TrainingError("map_snn_to_core needs a trained, labeled network")
    n_inputs = network.config.n_inputs
    n_neurons = network.config.n_neurons
    if n_inputs > N_AXONS:
        raise HardwareModelError(
            f"{n_inputs} inputs exceed the core's {N_AXONS} axons"
        )
    if n_neurons > N_NEURONS:
        raise HardwareModelError(
            f"{n_neurons} neurons exceed the core's {N_NEURONS}; "
            "train a smaller network for the TrueNorth comparison"
        )
    mean_weight = network.weights.mean(axis=0)
    quartiles = np.quantile(mean_weight, [0.25, 0.5, 0.75])
    axon_types = np.zeros(N_AXONS, dtype=np.int64)
    axon_types[:n_inputs] = np.digitize(mean_weight, quartiles)
    connectivity = np.zeros((N_AXONS, N_NEURONS), dtype=np.int8)
    type_weights = np.zeros((N_NEURONS, N_AXON_TYPES))
    weight_limit = 2 ** (WEIGHT_BITS - 1) - 1
    for n in range(n_neurons):
        row = network.weights[n]
        for t in range(N_AXON_TYPES):
            members = np.flatnonzero(axon_types[:n_inputs] == t)
            if members.size == 0:
                continue
            cut = np.quantile(row[members], threshold_quantile)
            pixels = members[row[members] > cut]
            if pixels.size == 0:
                continue
            connectivity[pixels, n] = 1
            type_weights[n, t] = min(float(row[pixels].mean()), weight_limit)
    return TrueNorthCore(
        connectivity=connectivity,
        axon_types=axon_types,
        type_weights=np.round(type_weights),
        thresholds=np.full(N_NEURONS, 1.0),
    )


class TrueNorthClassifier:
    """End-to-end classifier: SNNwot front end + TrueNorth core."""

    def __init__(self, network: SpikingNetwork, core: Optional[TrueNorthCore] = None):
        self.network = network
        self.core = core if core is not None else map_snn_to_core(network)
        self._wot = SNNWithoutTime(network)

    def predict(self, images: np.ndarray) -> np.ndarray:
        counts = self._wot.spike_counts(images).astype(np.float64)
        n_images, n_inputs = counts.shape
        axon_counts = np.zeros((n_images, N_AXONS))
        axon_counts[:, :n_inputs] = counts
        potentials = axon_counts @ self.core.effective_weights().T
        winners = np.argmax(potentials[:, : self.network.config.n_neurons], axis=1)
        return self.network.neuron_labels[winners]

    def evaluate(self, dataset: Dataset) -> EvaluationResult:
        predictions = self.predict(dataset.images)
        return evaluate(predictions, dataset.labels, dataset.n_classes)


def truenorth_report() -> DesignReport:
    """Cost report of the reimplemented core (anchored to Section 5)."""
    delay_ns = 1e3 / CORE_CLOCK_MHZ  # one tick at 1 MHz = 1000 ns
    cycles = int(CORE_TIME_PER_IMAGE_US * 1e3 / delay_ns)
    return DesignReport(
        name="TrueNorth core (reimplemented)",
        topology=f"{N_AXONS}x{N_NEURONS}",
        logic_area_mm2=CORE_AREA_MM2 * 0.45,
        sram_area_mm2=CORE_AREA_MM2 * 0.55,  # crossbar memory dominates
        delay_ns=delay_ns,
        cycles_per_image=cycles,
        energy_per_image_uj=CORE_ENERGY_PER_IMAGE_UJ,
    )
