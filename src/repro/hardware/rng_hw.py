"""Bit-exact model of the hardware Gaussian RNG (paper Section 4.2.2).

The SNNwt design needs per-pixel random spike intervals.  A true
Poisson generator is costly in hardware, and the paper observes that
a Gaussian distribution loses no accuracy, so it builds a Gaussian
generator from the central limit theorem: the sum of four uniform
random numbers produced by four 31-bit Linear Feedback Shift
Registers with primitive polynomial x^31 + x^3 + 1 (whose 2^31 - 1
period avoids cycling).

This module implements that generator bit-exactly (Fibonacci LFSR,
taps 31 and 3) so the SNNwt spike-timing path can be driven by the
same pseudo-random stream the hardware would produce.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.errors import HardwareModelError

#: LFSR register length.
LFSR_BITS = 31

#: Tap positions of the primitive polynomial x^31 + x^3 + 1.
LFSR_TAPS = (31, 3)

#: LFSRs summed per Gaussian sample (central limit theorem).
CLT_TERMS = 4


class LFSR31:
    """A 31-bit Fibonacci LFSR with polynomial x^31 + x^3 + 1.

    ``step()`` advances one bit; ``next_bits(n)`` assembles an n-bit
    unsigned integer from successive output bits (MSB first), which is
    how the hardware serializes the register into a uniform sample.
    """

    _MASK = (1 << LFSR_BITS) - 1

    def __init__(self, seed: int):
        state = int(seed) & self._MASK
        if state == 0:
            raise HardwareModelError("LFSR seed must be non-zero")
        self.state = state

    def step(self) -> int:
        """Advance one cycle; returns the output bit (the LSB shifted out)."""
        bit = ((self.state >> (LFSR_TAPS[0] - 1)) ^ (self.state >> (LFSR_TAPS[1] - 1))) & 1
        self.state = ((self.state << 1) | bit) & self._MASK
        return bit

    def next_bits(self, n_bits: int) -> int:
        """Assemble the next ``n_bits`` output bits into an integer."""
        if n_bits < 1:
            raise HardwareModelError(f"n_bits must be >= 1, got {n_bits}")
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.step()
        return value


class HardwareGaussian:
    """Four-LFSR central-limit-theorem Gaussian sample stream.

    Each call to :meth:`sample` reads one ``resolution``-bit uniform
    from each of the four LFSRs and returns their sum, an Irwin-Hall(4)
    variate: mean ``4 * (2^resolution - 1) / 2``, standard deviation
    ``sqrt(4/12) * (2^resolution - 1)``.  :meth:`intervals` rescales
    the stream to a requested mean, producing the spike intervals the
    SNNwt datapath decrements millisecond counters with.
    """

    def __init__(self, seeds: List[int], resolution: int = 8):
        if len(seeds) != CLT_TERMS:
            raise HardwareModelError(f"need exactly {CLT_TERMS} seeds, got {len(seeds)}")
        if resolution < 2 or resolution > 24:
            raise HardwareModelError(f"resolution must be in [2, 24], got {resolution}")
        self.lfsrs = [LFSR31(seed) for seed in seeds]
        self.resolution = resolution

    @property
    def raw_mean(self) -> float:
        return CLT_TERMS * (2**self.resolution - 1) / 2.0

    @property
    def raw_std(self) -> float:
        return float(np.sqrt(CLT_TERMS / 12.0) * (2**self.resolution - 1))

    def sample(self) -> int:
        """One raw Irwin-Hall(4) sample (integer)."""
        return sum(lfsr.next_bits(self.resolution) for lfsr in self.lfsrs)

    def samples(self, n: int) -> np.ndarray:
        """``n`` raw samples as an int64 array."""
        if n < 0:
            raise HardwareModelError(f"n must be >= 0, got {n}")
        return np.array([self.sample() for _ in range(n)], dtype=np.int64)

    def intervals(self, mean: float, n: int, minimum: float = 1.0) -> np.ndarray:
        """``n`` spike intervals (ms) with the requested mean.

        Raw samples are rescaled by mean/raw_mean — in hardware a
        constant shift-and-add — and clamped below at one millisecond
        (one clock cycle).
        """
        if mean <= 0:
            raise HardwareModelError(f"mean must be positive, got {mean}")
        raw = self.samples(n).astype(np.float64)
        return np.maximum(raw * (mean / self.raw_mean), minimum)


def lfsr_period_probe(seed: int = 1, probe: int = 100_000) -> bool:
    """Check the LFSR does not revisit its seed state within ``probe`` steps.

    The full period is 2^31 - 1 (primitive polynomial), far beyond any
    test budget; this probe catches wiring mistakes (short cycles).
    """
    lfsr = LFSR31(seed)
    initial = lfsr.state
    for _ in range(probe):
        lfsr.step()
        if lfsr.state == initial:
            return False
    return True
