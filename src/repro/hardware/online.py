"""SNN with online STDP learning in hardware (paper Section 4.4, Table 9).

The paper's headline asset for SNN+STDP accelerators is *permanent
online learning*: the STDP circuit is cheap enough that applications
needing it (and tolerating moderate accuracy) are excellent SNN
candidates.  Table 9 quantifies the overhead over the plain folded
SNNwt: total area 1.34x (ni=16) to 1.93x (ni=1), cycle time +7% at
most, energy 1.02x to 1.50x.

The per-neuron STDP circuit (Figures 12/13) manages, through a small
FSM: the time since the last output spike (for LTP/LTD windowing),
the refractory and inhibition counters, constant +-1 weight
increments applied through the weight SRAM's write port, the
leak-interpolation path, and the homeostasis activity counter; only
the homeostasis epoch counter is global.
"""

from __future__ import annotations

from ..core.config import SNNConfig
from . import technology as tech
from .components import Netlist, stdp_unit
from .designs import DesignReport
from .folded import folded_snn_wt

#: Write-capable weight SRAM overhead factor: STDP updates weights in
#: place, so every bank needs a write port (Table 9 total-area deltas
#: beyond the logic delta imply ~15%).
SRAM_WRITE_PORT_FACTOR = 1.15

#: Cycle-time penalty of muxing the weight write-back path into the
#: read pipeline ("the cycle time increases by 7% at most").
DELAY_FACTOR = 1.07


def online_snn(config: SNNConfig, ni: int, weight_bits: int = 8) -> DesignReport:
    """The folded SNNwt design with the STDP learning circuit attached.

    Returns the Table 9 design point: the folded SNNwt of Table 7 plus
    one STDP unit per neuron, a write-ported weight SRAM, the muxed
    write-back delay, and the learning-event energy.
    """
    base = folded_snn_wt(config, ni, weight_bits)
    stdp = Netlist()
    stdp.add(stdp_unit(ni), config.n_neurons)

    # Learning energy: each output spike triggers one weight-row
    # update walk (n_inputs/ni write cycles); in the homeostasis
    # equilibrium ~1 neuron fires per image, so per image we charge
    # one row walk plus the per-cycle STDP counter activity.
    import math

    counter_energy_per_cycle = config.n_neurons * 1.6  # pJ: STDP counters/FSM
    row_walk_cycles = math.ceil(config.n_inputs / ni)
    write_energy = row_walk_cycles * ni * weight_bits * 0.05  # pJ: SRAM write/bit
    learning_energy_uj = (
        base.cycles_per_image * counter_energy_per_cycle + write_energy
    ) / 1e6

    breakdown = dict(base.area_breakdown)
    for name, (count, area) in stdp.breakdown().items():
        breakdown[name] = (count, area)
    suffix = "" if weight_bits == 8 else f" w{weight_bits}"
    return DesignReport(
        name=f"SNN online (STDP) ni={ni}{suffix}",
        topology=config.topology,
        logic_area_mm2=base.logic_area_mm2 + stdp.area_mm2,
        sram_area_mm2=base.sram_area_mm2 * SRAM_WRITE_PORT_FACTOR,
        delay_ns=base.delay_ns * DELAY_FACTOR,
        cycles_per_image=base.cycles_per_image,
        energy_per_image_uj=base.energy_per_image_uj * 1.02 + learning_energy_uj,
        area_breakdown=breakdown,
    )


def stdp_overhead(config: SNNConfig, ni: int) -> dict:
    """Overhead ratios of the online design over the plain folded SNNwt.

    The quantities the paper quotes in Section 4.4.1.
    """
    base = folded_snn_wt(config, ni)
    online = online_snn(config, ni)
    return {
        "ni": ni,
        "area_ratio": online.total_area_mm2 / base.total_area_mm2,
        "delay_ratio": online.delay_ns / base.delay_ns,
        "energy_ratio": online.energy_per_image_uj / base.energy_per_image_uj,
    }
