"""Spatially expanded designs (paper Section 4.2, Tables 4 and 5).

In a spatially expanded design every logical neuron and synapse maps
to its own hardware operator: the MLP neuron is one multiplier per
synapse feeding an adder tree plus a piecewise-linear sigmoid; the
SNNwot neuron replaces the multipliers with 4-bit-count shift-and-add
units and the sigmoid with a max-tree readout; the SNNwt neuron is an
adder tree plus per-input Gaussian spike-timing RNGs and the leak
interpolator, iterated for 500 one-millisecond cycles.

Areas compose exactly as the paper's Table 4 does (the per-operator
anchors reproduce to within 5%); expanded energies use the calibrated
per-weight constants of :mod:`repro.hardware.technology` because
Table 7's expanded rows are themselves estimates.
"""

from __future__ import annotations

import math

from ..core.config import MLPConfig, SNNConfig
from ..core.errors import HardwareModelError
from . import technology as tech
from .components import (
    Netlist,
    adder_tree,
    gaussian_rng,
    interpolation_unit,
    max_unit,
    multiplier,
    shift_add_unit,
    spike_converter,
)
from .designs import DesignReport
from .sram import expanded_storage_area_um2

#: Potential/accumulator width of the SNN datapaths (bits): 8-bit
#: weights times up to 10 spikes over 784 inputs needs ~21 bits; the
#: adder-tree *input* width that reproduces Table 4 is 12 (8-bit
#: weight x 4-bit count).
SNN_TREE_WIDTH = 12

#: Readout width of the max tree (Table 4 lists a 16-bit max unit).
MAX_WIDTH = 16

#: The paper's two-level max-tree organization for 300 neurons:
#: 15 x 20-input max units, then one 15-input max unit.
MAX_FANIN = 20


def _tree_depth(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def _name_suffix(weight_bits: int) -> str:
    return "" if weight_bits == 8 else f" w{weight_bits}"


def expanded_mlp(config: MLPConfig, weight_bits: int = 8) -> DesignReport:
    """The fully expanded MLP (Table 4's MLP rows).

    One multiplier per synapse (plus one per neuron inside the sigmoid
    interpolator, which is how Table 4's multiplier count of 79,510 =
    784x100 + 100x10 + 110 decomposes), one adder tree per neuron.

    ``weight_bits`` generalizes the paper's 8-bit precision for the
    design-space sweeps: datapath widths and storage scale with the
    precision, and the calibrated per-weight energy scales linearly in
    the bit width (the default reproduces the paper exactly).
    """
    config.validate()
    if weight_bits < 1:
        raise HardwareModelError(f"weight_bits must be >= 1, got {weight_bits}")
    n_neurons = config.n_hidden + config.n_output
    netlist = Netlist()
    netlist.add(adder_tree(config.n_inputs, weight_bits), config.n_hidden)
    netlist.add(adder_tree(config.n_hidden, weight_bits), config.n_output)
    n_multipliers = config.n_weights + n_neurons
    netlist.add(multiplier(weight_bits, weight_bits), n_multipliers)
    delay = (
        tech.MULTIPLIER_DELAY
        + _tree_depth(config.n_inputs) * tech.ADDER_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_uj = (
        config.n_weights * tech.EXPANDED_MLP_ENERGY_PER_WEIGHT / 1e6
    ) * (weight_bits / 8.0)
    return DesignReport(
        name=f"MLP expanded{_name_suffix(weight_bits)}",
        topology=config.topology,
        logic_area_mm2=netlist.area_mm2,
        sram_area_mm2=expanded_storage_area_um2(config.n_weights, weight_bits)
        / 1e6,
        delay_ns=delay,
        cycles_per_image=4,
        energy_per_image_uj=energy_uj,
        area_breakdown=netlist.breakdown(),
    )


def _max_tree(n_neurons: int) -> Netlist:
    """The readout max tree: first-level units of MAX_FANIN inputs."""
    netlist = Netlist()
    first_level = math.ceil(n_neurons / MAX_FANIN)
    if first_level > 1:
        netlist.add(max_unit(MAX_FANIN, MAX_WIDTH), first_level)
        netlist.add(max_unit(first_level, MAX_WIDTH), 1)
    else:
        netlist.add(max_unit(n_neurons, MAX_WIDTH), 1)
    return netlist


def expanded_snn_wot(config: SNNConfig, weight_bits: int = 8) -> DesignReport:
    """The fully expanded timing-free SNN (Table 4's SNNwot rows).

    Per neuron: one shift-and-add unit per input (the 4-bit count x
    8-bit weight "multiplier" of Figure 7) feeding a 12-bit Wallace
    adder tree; a shared pixel-to-count converter per input; a
    two-level max tree for the readout.  Three pipeline stages.
    """
    config.validate()
    if weight_bits < 1:
        raise HardwareModelError(f"weight_bits must be >= 1, got {weight_bits}")
    tree_width = weight_bits + 4
    netlist = Netlist()
    netlist.add(adder_tree(config.n_inputs, tree_width), config.n_neurons)
    netlist.add(shift_add_unit(tree_width), config.n_neurons * config.n_inputs)
    netlist.add(spike_converter(), config.n_inputs)
    for component, count in _max_tree(config.n_neurons).entries:
        netlist.add(component, count)
    delay = (
        tech.SHIFT_ADD_DELAY
        + _tree_depth(config.n_inputs) * tech.ADDER_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_uj = (
        config.n_weights * tech.EXPANDED_SNNWOT_ENERGY_PER_WEIGHT / 1e6
    ) * (weight_bits / 8.0)
    return DesignReport(
        name=f"SNNwot expanded{_name_suffix(weight_bits)}",
        topology=config.topology,
        logic_area_mm2=netlist.area_mm2,
        sram_area_mm2=expanded_storage_area_um2(config.n_weights, weight_bits)
        / 1e6,
        delay_ns=delay,
        cycles_per_image=3,
        energy_per_image_uj=energy_uj,
        area_breakdown=netlist.breakdown(),
    )


def expanded_snn_wt(config: SNNConfig, weight_bits: int = 8) -> DesignReport:
    """The fully expanded with-time SNN (Table 4's SNNwt rows).

    Per neuron: a 12-bit adder tree accumulating the weights of the
    inputs that spike each millisecond, plus the leak interpolator;
    one Gaussian spike-timing RNG per input (Table 4 counts 784).
    One clock cycle emulates one millisecond, so an image presentation
    takes t_period cycles.
    """
    config.validate()
    if weight_bits < 1:
        raise HardwareModelError(f"weight_bits must be >= 1, got {weight_bits}")
    tree_width = weight_bits + 4
    netlist = Netlist()
    netlist.add(adder_tree(config.n_inputs, tree_width), config.n_neurons)
    netlist.add(gaussian_rng(), config.n_inputs)
    netlist.add(interpolation_unit(), config.n_neurons)
    cycles = int(config.t_period)
    if cycles < 1:
        raise HardwareModelError("t_period must be at least 1 ms")
    delay = (
        _tree_depth(config.n_inputs) * tech.ADDER_STAGE_DELAY
        + tech.INTERPOLATION_DELAY
        + tech.REGISTER_DELAY
    )
    energy_uj = (
        config.n_weights * tech.EXPANDED_SNNWT_ENERGY_PER_WEIGHT_CYCLE * cycles / 1e6
    ) * (weight_bits / 8.0)
    return DesignReport(
        name=f"SNNwt expanded{_name_suffix(weight_bits)}",
        topology=config.topology,
        logic_area_mm2=netlist.area_mm2,
        sram_area_mm2=expanded_storage_area_um2(config.n_weights, weight_bits)
        / 1e6,
        delay_ns=delay,
        cycles_per_image=cycles,
        energy_per_image_uj=energy_uj,
        area_breakdown=netlist.breakdown(),
    )
