"""SRAM bank model for synaptic storage (paper Table 6).

The folded designs keep all synaptic weights in 128-bit-wide SRAM
banks.  The bank packing rule, recovered exactly from Table 6's
numbers (see DESIGN.md section 5):

* one neuron's weight table is ``n_inputs * 8`` bits;
* each cycle a hardware neuron reads ``ni * 8`` bits, so a 128-bit
  read can feed ``16 / ni`` neurons — that many neurons share a bank
  (at least one);
* the bank depth is whatever holds the sharing neurons' tables,
  rounded up to a multiple of 8 rows, with a 128-row minimum macro.

Bank area and read energy come from the paper's three published
geometries, with a CACTI-flavoured interpolation for other depths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..core.errors import HardwareModelError

#: All banks are 128 bits wide (Table 6).
BANK_WIDTH_BITS = 128

#: Smallest macro depth the paper instantiates.
MIN_BANK_DEPTH = 128

#: The paper's published bank geometries: depth -> (area um^2, read pJ).
_PUBLISHED_BANKS: Dict[int, tuple] = {
    784: (108_351.0, 44.41),
    200: (46_002.0, 33.05),
    128: (40_772.0, 32.46),
}


def bank_area_um2(depth: int) -> float:
    """Layout area of one 128-bit-wide bank of ``depth`` rows.

    Exact for the paper's three geometries; interpolated elsewhere
    with a linear bit-cost plus square-root periphery term fitted to
    the 128- and 784-row anchors.
    """
    _check_depth(depth)
    if depth in _PUBLISHED_BANKS:
        return _PUBLISHED_BANKS[depth][0]
    bits = depth * BANK_WIDTH_BITS
    # Fit area = a*bits + c*sqrt(bits) through (16384, 40772) and
    # (100352, 108351): a = 0.1244, c = 302.6.
    return 0.1244 * bits + 302.6 * math.sqrt(bits)


def bank_read_energy_pj(depth: int) -> float:
    """Energy of one 128-bit read from a bank of ``depth`` rows."""
    _check_depth(depth)
    if depth in _PUBLISHED_BANKS:
        return _PUBLISHED_BANKS[depth][1]
    bits = depth * BANK_WIDTH_BITS
    # Fit energy = a*bits + c through (16384, 32.46) and (100352, 44.41).
    return 1.4231e-4 * bits + 30.13


def _check_depth(depth: int) -> None:
    if depth < 1:
        raise HardwareModelError(f"bank depth must be >= 1, got {depth}")


@dataclass(frozen=True)
class SRAMPlan:
    """Synaptic-storage plan of one network layer at fold factor ni.

    Attributes:
        n_neurons: logical neurons in the layer.
        n_inputs: synapses per neuron.
        ni: inputs processed per cycle per hardware neuron.
        neurons_per_bank: neurons sharing one 128-bit bank.
        depth: rows per bank.
        n_banks: bank count for the layer.
    """

    n_neurons: int
    n_inputs: int
    ni: int
    neurons_per_bank: int
    depth: int
    n_banks: int

    @property
    def area_um2(self) -> float:
        return self.n_banks * bank_area_um2(self.depth)

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    @property
    def read_energy_per_cycle_pj(self) -> float:
        """All banks read one row per cycle (Table 6's 'Total Energy')."""
        return self.n_banks * bank_read_energy_pj(self.depth)

    @property
    def total_bits(self) -> int:
        return self.n_banks * self.depth * BANK_WIDTH_BITS

    @property
    def weight_bits(self) -> int:
        return self.n_neurons * self.n_inputs * 8


def plan_layer(n_neurons: int, n_inputs: int, ni: int, weight_bits: int = 8) -> SRAMPlan:
    """Build the Table 6 bank plan for one fully-connected layer.

    ``ni`` must divide the 128-bit bank width in weight units
    (ni * weight_bits <= 128), matching the paper's ni in {1,4,8,16}
    with 8-bit weights.
    """
    if n_neurons < 1 or n_inputs < 1:
        raise HardwareModelError(
            f"layer must have >=1 neurons and inputs, got {n_neurons}x{n_inputs}"
        )
    if ni < 1:
        raise HardwareModelError(f"ni must be >= 1, got {ni}")
    if ni * weight_bits > BANK_WIDTH_BITS:
        raise HardwareModelError(
            f"ni={ni} needs {ni * weight_bits} bits/cycle > bank width {BANK_WIDTH_BITS}"
        )
    neurons_per_bank = max(1, BANK_WIDTH_BITS // (ni * weight_bits))
    neurons_per_bank = min(neurons_per_bank, n_neurons)
    neuron_bits = n_inputs * weight_bits
    needed_rows = math.ceil(neurons_per_bank * neuron_bits / BANK_WIDTH_BITS)
    depth = max(MIN_BANK_DEPTH, 8 * math.ceil(needed_rows / 8))
    n_banks = math.ceil(n_neurons / neurons_per_bank)
    return SRAMPlan(
        n_neurons=n_neurons,
        n_inputs=n_inputs,
        ni=ni,
        neurons_per_bank=neurons_per_bank,
        depth=depth,
        n_banks=n_banks,
    )


def expanded_storage_area_um2(n_weights: int, weight_bits: int = 8) -> float:
    """Synaptic storage area of a *spatially expanded* design.

    Expanded designs must deliver every weight every cycle, forcing
    tiny periphery-dominated macros; Table 4 implies a uniform
    ~10.2 um^2/bit for both networks.
    """
    from . import technology as tech

    if n_weights < 0:
        raise HardwareModelError(f"n_weights must be >= 0, got {n_weights}")
    return n_weights * weight_bits * tech.EXPANDED_SRAM_AREA_PER_BIT
