"""Technology-node scaling of design reports (paper Section 5 context).

The paper compares designs across process nodes: TrueNorth's published
core is 4.2 mm^2 at IBM 45nm, while the paper reimplements it at TSMC
65nm (3.30 mm^2) to compare like for like.  This module provides the
classical (Dennard-style, with a leakage-era derating on voltage)
scaling rules used for such conversions, so any
:class:`~repro.hardware.designs.DesignReport` can be re-expressed at
another node:

* area scales with the square of the feature-size ratio;
* gate delay scales roughly linearly with feature size;
* dynamic energy (CV^2) scales with area x voltage^2.

These are first-order rules — good to tens of percent across one or
two nodes, which matches how the paper itself uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..core.errors import HardwareModelError
from .designs import DesignReport


@dataclass(frozen=True)
class ProcessNode:
    """A CMOS process node's first-order electrical parameters.

    Attributes:
        name: e.g. "65nm".
        feature_nm: drawn feature size in nanometres.
        voltage: nominal supply voltage (V).
    """

    name: str
    feature_nm: float
    voltage: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise HardwareModelError(f"{self.name}: feature size must be positive")
        if self.voltage <= 0:
            raise HardwareModelError(f"{self.name}: voltage must be positive")


#: Nodes relevant to the paper and its references (nominal voltages
#: from the respective foundry literature).
NODES: Dict[str, ProcessNode] = {
    "90nm": ProcessNode("90nm", 90.0, 1.2),
    "65nm": ProcessNode("65nm", 65.0, 1.2),
    "45nm": ProcessNode("45nm", 45.0, 1.1),
    "28nm": ProcessNode("28nm", 28.0, 1.0),
}


def get_node(name: str) -> ProcessNode:
    """Look up a known node by name."""
    try:
        return NODES[name]
    except KeyError:
        known = ", ".join(sorted(NODES))
        raise HardwareModelError(f"unknown node {name!r}; known: {known}") from None


@dataclass(frozen=True)
class ScalingFactors:
    """Multipliers applied when converting between two nodes."""

    area: float
    delay: float
    energy: float

    def __post_init__(self) -> None:
        if min(self.area, self.delay, self.energy) <= 0:
            raise HardwareModelError("scaling factors must be positive")


def scaling_factors(source: ProcessNode, target: ProcessNode) -> ScalingFactors:
    """First-order factors for converting source-node costs to target.

    area   x (Lt/Ls)^2
    delay  x (Lt/Ls)
    energy x (Lt/Ls)^2 * (Vt/Vs)^2
    """
    length_ratio = target.feature_nm / source.feature_nm
    voltage_ratio = target.voltage / source.voltage
    return ScalingFactors(
        area=length_ratio**2,
        delay=length_ratio,
        energy=length_ratio**2 * voltage_ratio**2,
    )


def scale_report(
    report: DesignReport, source: str, target: str
) -> DesignReport:
    """Re-express a design report at another process node.

    Cycle counts are architectural and do not change; area, cycle time
    and energy scale by the first-order factors.
    """
    factors = scaling_factors(get_node(source), get_node(target))
    return replace(
        report,
        name=f"{report.name} @{target}",
        logic_area_mm2=report.logic_area_mm2 * factors.area,
        sram_area_mm2=report.sram_area_mm2 * factors.area,
        delay_ns=report.delay_ns * factors.delay,
        energy_per_image_uj=report.energy_per_image_uj * factors.energy,
    )


def truenorth_45nm_sanity() -> dict:
    """Cross-check the paper's TrueNorth conversion.

    Merolla et al. report a 4.2 mm^2 core at 45nm (the paper's Section
    5 footnote describes the 4x-larger core); the paper's 65nm
    reimplementation lands at 3.30 mm^2.  A naive 45->65nm area scaling
    of 4.2 mm^2 would give ~8.8 mm^2, i.e. the paper's reimplementation
    is ~2.7x denser than a direct shrink — consistent with its caveat
    that the reimplementation "does not make justice to TrueNorth
    design optimizations".  Returns the numbers for reporting.
    """
    factors = scaling_factors(get_node("45nm"), get_node("65nm"))
    naive = 4.2 * factors.area
    return {
        "published_45nm_mm2": 4.2,
        "naive_65nm_mm2": round(naive, 2),
        "paper_reimplementation_mm2": 3.30,
        "density_gap": round(naive / 3.30, 2),
    }
