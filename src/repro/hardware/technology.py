"""65nm technology constants, calibrated to the paper's layouts.

The paper implements every design at RTL, synthesizes with Synopsys
Design Compiler against the TSMC 65nm GPlus high-VT library, and lays
out with IC Compiler; all published area/delay/power/energy numbers
come from those tools (Section 4.1).  Offline we cannot run Synopsys,
so this module is the substitution: per-component analytical models
whose constants are *calibrated against the paper's own published
per-operator numbers*, principally:

* Table 4 — per-operator areas of the spatially expanded designs
  (8-bit multiplier 862 um^2; 784-input adder trees 45,436 / 60,820 /
  89,006 um^2 for MLP / SNNwt / SNNwot; 16-input max 6,081 um^2;
  Gaussian RNG 1,749 um^2);
* Table 6 — SRAM bank geometry, area and read energy;
* Tables 5, 7, 9 — delays and energies of the laid-out designs.

Derived constants (see tests/hardware/test_calibration.py for the
residual checks against every anchor):

* A full-adder bit-slice of 5.81 um^2 reproduces all three 784-input
  adder-tree areas within 5% through the structural tree-composition
  formula (exact bit-growth per level).
* A multiplier cell of 13.47 um^2 per partial-product bit reproduces
  the 8-bit multiplier exactly (64 cells x 13.47 = 862).
* A compare-select slice of 20.0 um^2/bit reproduces the 16-bit
  20-input max unit exactly (19 stages x 16 bits x 20.0 = 6,081).

All areas in um^2, delays in ns, energies in pJ unless noted.
"""

from __future__ import annotations

#: Area of one full-adder bit slice (um^2).  Calibrated so the
#: structural adder-tree formula hits Table 4's 784-input, 8-bit MLP
#: tree (45,436 um^2) exactly: 45,436 / 7,824 FA slices.
FULL_ADDER_AREA = 5.808

#: Area of one multiplier partial-product cell (um^2); an n x m
#: multiplier uses n*m cells.  862 um^2 / 64 = 13.47 for the paper's
#: 8x8 multiplier.
MULTIPLIER_CELL_AREA = 13.47

#: Area of one compare-select bit slice of a max unit (um^2).
#: 6,081 um^2 / (19 stages x 16 bits) = 20.0.
COMPARE_SELECT_AREA = 20.0

#: Area of one D flip-flop bit (um^2), typical 65nm standard cell.
REGISTER_BIT_AREA = 4.8

#: Area of the 4-LFSR central-limit-theorem Gaussian random number
#: generator (um^2) — Table 4 reports it directly.
GAUSSIAN_RNG_AREA = 1749.0

#: Extra per-input area of the SNNwot shift-and-add spike-count
#: multiplier (4 shifters + 4 adders sharing hardware, Figure 7),
#: beyond the 12-bit adder tree: (89,006 - 63,632) / 784 inputs.
SHIFT_ADD_EXTRA_AREA = 32.4

#: Area of the piecewise-linear interpolation unit used for the MLP
#: sigmoid and the SNNwt leak (a small coefficient table + one
#: multiplier + one adder, Section 4.2.1 / 4.4).
INTERPOLATION_UNIT_AREA = 1000.0

#: Area of the SNNwot pixel-to-count converter per input (9
#: comparators on 8-bit luminance + 9-to-4 encoder, Figure 7).
SPIKE_CONVERTER_AREA = 160.0

#: Per-neuron base area of the STDP online-learning circuit
#: (refractory/inhibition/LTP counters, firing-time register,
#: homeostasis activity counter, FSM — Figures 12/13), plus the
#: per-input increment/decrement + LTP-compare slice.  Fitted to
#: Table 9 minus Table 7 (see DESIGN.md): base 6,300 um^2 + 590 um^2
#: per parallel input.
STDP_UNIT_BASE_AREA = 6300.0
STDP_UNIT_PER_INPUT_AREA = 590.0

#: SRAM area per bit for the *spatially expanded* designs (um^2/bit).
#: The expanded designs need every weight readable every cycle, which
#: forces tiny, periphery-dominated macros; Table 4's SRAM columns
#: imply 10.2 um^2/bit for both networks (19.27 mm^2 / 235,200 x 8
#: bits and 6.49 mm^2 / 79,400 x 8 bits).
EXPANDED_SRAM_AREA_PER_BIT = 10.22

# ---------------------------------------------------------------------------
# Delay constants (ns).  Calibrated against Tables 5 and 7.
# ---------------------------------------------------------------------------

#: SRAM read access (folded designs read one row per cycle).
SRAM_READ_DELAY = 0.55

#: 8x8 multiplier critical path.
MULTIPLIER_DELAY = 1.30

#: Delay of one adder stage in a tree (carry-save; per level).
ADDER_STAGE_DELAY = 0.22

#: Delay of a single (final / accumulator) adder.
ADDER_DELAY = 0.24

#: Delay of the SNNwot shift-and-add unit.
SHIFT_ADD_DELAY = 0.20

#: Delay of one compare-select stage of a max tree.
MAX_STAGE_DELAY = 0.16

#: Delay of the piecewise-linear interpolation unit.
INTERPOLATION_DELAY = 0.50

#: Register setup + clock-to-q overhead charged once per cycle.
REGISTER_DELAY = 0.15

# ---------------------------------------------------------------------------
# Energy constants (pJ).  Calibrated against Tables 5, 7 and 9.
# ---------------------------------------------------------------------------

#: Dynamic energy of one full-adder bit slice per operation.
FULL_ADDER_ENERGY = 0.010

#: Dynamic energy of one multiplier partial-product cell per operation.
MULTIPLIER_CELL_ENERGY = 0.010

#: Dynamic energy of one compare-select bit per operation.
COMPARE_SELECT_ENERGY = 0.010

#: Clock + state energy of one register bit per cycle.  Clock power is
#: a large share of total power in these designs (60% for the small
#: SNN layout of Table 5), so this constant matters.
REGISTER_BIT_ENERGY = 0.02

#: Energy of one Gaussian RNG update per cycle.
GAUSSIAN_RNG_ENERGY = 0.25

#: Energy of one interpolation-unit evaluation.
INTERPOLATION_ENERGY = 1.2

#: Energy of the per-neuron STDP circuit per learning event.
STDP_EVENT_ENERGY = 2.0

#: Per-hardware-neuron control/state overhead of the folded designs
#: (FSM, wide potential/pipeline registers), fitted per design family
#: to Table 7's no-SRAM areas.
MLP_NEURON_OVERHEAD_AREA = 500.0
SNNWOT_NEURON_OVERHEAD_AREA = 2000.0
SNNWT_NEURON_OVERHEAD_AREA = 0.0

# ---------------------------------------------------------------------------
# Expanded-design per-weight energies (pJ).  Table 7's expanded rows
# are the paper's own estimates; the cleanest consistent calibration
# is energy per synaptic weight touched:
#   MLP       0.75 pJ/weight/image   (79,400 x 0.75 ~ 0.06 uJ)
#   SNNwot    0.13 pJ/weight/image   (235,200 x 0.13 ~ 0.03 uJ)
#   SNNwt     1.825 pJ/weight/cycle  (x 500 cycles ~ 214.7 uJ)
# The SNNwt figure is per *cycle* because the with-time design re-walks
# every weight each simulated millisecond (leak + accumulation).
# ---------------------------------------------------------------------------

EXPANDED_MLP_ENERGY_PER_WEIGHT = 0.75
EXPANDED_SNNWOT_ENERGY_PER_WEIGHT = 0.13
EXPANDED_SNNWT_ENERGY_PER_WEIGHT_CYCLE = 1.825

#: Per-weight energy of the *laid-out small* MLP design (Table 5's
#: 4x4-10-10: 1.28 nJ / 260 weights).  The full layout includes the
#: clock tree and pipeline registers that Table 7's expanded estimates
#: omit (the paper notes clock power is 20% of the small MLP's total
#: and 60% of the small SNN's), hence the larger per-weight figure.
SMALL_MLP_ENERGY_PER_WEIGHT = 4.9

#: Process name recorded on every cost report.
PROCESS = "TSMC 65nm GPlus high-VT (calibrated analytical model)"
