"""Hardware operator library (the datapath building blocks).

Each factory returns a :class:`Component` carrying area (um^2),
critical-path delay (ns) and per-operation dynamic energy (pJ).
Composite designs aggregate components into a :class:`Netlist`, whose
cost roll-up is what the design modules (expanded / folded / online)
report.

Structural formulas mirror how the paper's datapaths are built; the
technology constants they multiply are calibrated to the paper's
published per-operator numbers (see :mod:`repro.hardware.technology`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import HardwareModelError
from . import technology as tech


@dataclass(frozen=True)
class Component:
    """One hardware operator instance type.

    Attributes:
        name: operator kind, e.g. "adder_tree(784,w8)".
        area_um2: layout area of one instance.
        delay_ns: critical path through one instance.
        energy_pj: dynamic energy per operation of one instance.
    """

    name: str
    area_um2: float
    delay_ns: float
    energy_pj: float

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.delay_ns < 0 or self.energy_pj < 0:
            raise HardwareModelError(f"negative cost in component {self.name}")


def adder(width: int) -> Component:
    """A ripple/carry-save adder of ``width`` bits."""
    _require_positive(width, "width")
    return Component(
        name=f"adder(w{width})",
        area_um2=width * tech.FULL_ADDER_AREA,
        delay_ns=tech.ADDER_DELAY,
        energy_pj=width * tech.FULL_ADDER_ENERGY,
    )


def adder_tree_slices(n_inputs: int, width: int) -> int:
    """Full-adder bit-slice count of an ``n_inputs``-to-1 adder tree.

    Level l combines pairs of level-(l-1) values whose width has grown
    by one bit per level (the structural formula that reproduces the
    paper's Table 4 tree areas):

        slices = sum over levels of floor(n_l / 2) * (width + l)
    """
    _require_positive(n_inputs, "n_inputs")
    _require_positive(width, "width")
    slices = 0
    remaining = n_inputs
    level = 0
    while remaining > 1:
        level += 1
        pairs = remaining // 2
        slices += pairs * (width + level)
        remaining = remaining - pairs
    return slices


def adder_tree(n_inputs: int, width: int) -> Component:
    """A balanced adder tree summing ``n_inputs`` values of ``width`` bits."""
    slices = adder_tree_slices(n_inputs, width)
    depth = max(1, math.ceil(math.log2(max(n_inputs, 2))))
    return Component(
        name=f"adder_tree({n_inputs},w{width})",
        area_um2=slices * tech.FULL_ADDER_AREA,
        delay_ns=depth * tech.ADDER_STAGE_DELAY,
        energy_pj=slices * tech.FULL_ADDER_ENERGY,
    )


def multiplier(width_a: int, width_b: int | None = None) -> Component:
    """An integer array multiplier (``width_a`` x ``width_b`` bits)."""
    if width_b is None:
        width_b = width_a
    _require_positive(width_a, "width_a")
    _require_positive(width_b, "width_b")
    cells = width_a * width_b
    return Component(
        name=f"multiplier({width_a}x{width_b})",
        area_um2=cells * tech.MULTIPLIER_CELL_AREA,
        delay_ns=tech.MULTIPLIER_DELAY,
        energy_pj=cells * tech.MULTIPLIER_CELL_ENERGY,
    )


def max_unit(n_inputs: int, width: int) -> Component:
    """A compare-select maximum over ``n_inputs`` values of ``width`` bits."""
    _require_positive(n_inputs, "n_inputs")
    _require_positive(width, "width")
    stages = max(n_inputs - 1, 1)
    depth = max(1, math.ceil(math.log2(max(n_inputs, 2))))
    return Component(
        name=f"max({n_inputs},w{width})",
        area_um2=stages * width * tech.COMPARE_SELECT_AREA,
        delay_ns=depth * tech.MAX_STAGE_DELAY,
        energy_pj=stages * width * tech.COMPARE_SELECT_ENERGY,
    )


def comparator(width: int) -> Component:
    """A single magnitude comparator (threshold check)."""
    _require_positive(width, "width")
    return Component(
        name=f"comparator(w{width})",
        area_um2=width * tech.COMPARE_SELECT_AREA,
        delay_ns=tech.MAX_STAGE_DELAY,
        energy_pj=width * tech.COMPARE_SELECT_ENERGY,
    )


def register(width: int) -> Component:
    """A ``width``-bit pipeline/state register (charged every cycle)."""
    _require_positive(width, "width")
    return Component(
        name=f"register(w{width})",
        area_um2=width * tech.REGISTER_BIT_AREA,
        delay_ns=tech.REGISTER_DELAY,
        energy_pj=width * tech.REGISTER_BIT_ENERGY,
    )


def gaussian_rng() -> Component:
    """The paper's 4-LFSR central-limit-theorem Gaussian generator."""
    return Component(
        name="gaussian_rng",
        area_um2=tech.GAUSSIAN_RNG_AREA,
        delay_ns=tech.ADDER_DELAY,
        energy_pj=tech.GAUSSIAN_RNG_ENERGY,
    )


def shift_add_unit(width: int = 12) -> Component:
    """SNNwot's per-input count-times-weight unit (4 shifters + adders).

    Computes n3*8W + n2*4W + n1*2W + n0*W for a 4-bit spike count N and
    8-bit weight W (Figure 7).  Area is the calibrated per-input extra
    of Table 4's SNNwot tree over the plain 12-bit tree.
    """
    _require_positive(width, "width")
    return Component(
        name=f"shift_add(w{width})",
        area_um2=tech.SHIFT_ADD_EXTRA_AREA,
        delay_ns=tech.SHIFT_ADD_DELAY,
        energy_pj=4 * width * tech.FULL_ADDER_ENERGY,
    )


def interpolation_unit() -> Component:
    """16-segment piecewise-linear evaluator (sigmoid / leak)."""
    return Component(
        name="interpolation_unit",
        area_um2=tech.INTERPOLATION_UNIT_AREA,
        delay_ns=tech.INTERPOLATION_DELAY,
        energy_pj=tech.INTERPOLATION_ENERGY,
    )


def spike_converter() -> Component:
    """SNNwot per-pixel luminance-to-count converter (9 CMP + encoder)."""
    return Component(
        name="spike_converter",
        area_um2=tech.SPIKE_CONVERTER_AREA,
        delay_ns=tech.MAX_STAGE_DELAY,
        energy_pj=8 * tech.COMPARE_SELECT_ENERGY,
    )


def stdp_unit(ni: int) -> Component:
    """Per-neuron STDP online-learning circuit (Figures 12/13).

    Contains the refractory, inhibition, last-firing and homeostasis
    activity counters, the learning FSM, and one weight
    increment/decrement + LTP-window compare slice per parallel input.
    """
    _require_positive(ni, "ni")
    return Component(
        name=f"stdp_unit(ni{ni})",
        area_um2=tech.STDP_UNIT_BASE_AREA + ni * tech.STDP_UNIT_PER_INPUT_AREA,
        delay_ns=tech.ADDER_DELAY,
        energy_pj=tech.STDP_EVENT_ENERGY,
    )


def _require_positive(value: int, name: str) -> None:
    if value < 1:
        raise HardwareModelError(f"{name} must be >= 1, got {value}")


@dataclass
class Netlist:
    """A bag of (component, instance count) with cost roll-ups.

    ``add`` accumulates instances; ``area_um2``/``energy_pj`` sum over
    instances; ``delay_ns`` is computed by the owning design from its
    pipeline structure, not by the netlist (a netlist has no notion of
    which components are in series).
    """

    entries: List[Tuple[Component, int]] = field(default_factory=list)

    def add(self, component: Component, count: int = 1) -> "Netlist":
        if count < 0:
            raise HardwareModelError(
                f"instance count must be >= 0, got {count} for {component.name}"
            )
        if count:
            self.entries.append((component, count))
        return self

    @property
    def area_um2(self) -> float:
        return sum(c.area_um2 * n for c, n in self.entries)

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    def energy_pj(self, activity: float = 1.0) -> float:
        """Total dynamic energy for one operation of every instance."""
        return activity * sum(c.energy_pj * n for c, n in self.entries)

    def breakdown(self) -> Dict[str, Tuple[int, float]]:
        """name -> (total instances, total area um^2), aggregated."""
        result: Dict[str, Tuple[int, float]] = {}
        for component, count in self.entries:
            instances, area = result.get(component.name, (0, 0.0))
            result[component.name] = (
                instances + count,
                area + component.area_um2 * count,
            )
        return result

    def instance_count(self) -> int:
        return sum(n for _c, n in self.entries)
