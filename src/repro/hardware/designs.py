"""Common cost-report structure for all hardware designs.

Every design module (expanded / folded / online / TrueNorth) produces
a :class:`DesignReport`: the quantities the paper tabulates — area
with and without SRAM, critical-path delay (= cycle time), cycles and
energy per classified image — plus derived time-per-image and average
power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.errors import HardwareModelError


@dataclass(frozen=True)
class DesignReport:
    """Cost roll-up of one hardware design point.

    Attributes:
        name: design identifier, e.g. "MLP folded ni=16".
        topology: network topology string, e.g. "28x28-100-10".
        logic_area_mm2: datapath area excluding synaptic SRAM.
        sram_area_mm2: synaptic storage area.
        delay_ns: critical-path delay = cycle time.
        cycles_per_image: cycles to classify one input.
        energy_per_image_uj: total energy per classified input (uJ).
        area_breakdown: component name -> (instances, area um^2).
    """

    name: str
    topology: str
    logic_area_mm2: float
    sram_area_mm2: float
    delay_ns: float
    cycles_per_image: int
    energy_per_image_uj: float
    area_breakdown: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.delay_ns <= 0:
            raise HardwareModelError(f"{self.name}: delay must be positive")
        if self.cycles_per_image < 1:
            raise HardwareModelError(f"{self.name}: needs >= 1 cycle per image")
        if min(self.logic_area_mm2, self.sram_area_mm2, self.energy_per_image_uj) < 0:
            raise HardwareModelError(f"{self.name}: negative cost")

    @property
    def total_area_mm2(self) -> float:
        return self.logic_area_mm2 + self.sram_area_mm2

    @property
    def time_per_image_ns(self) -> float:
        return self.delay_ns * self.cycles_per_image

    @property
    def time_per_image_us(self) -> float:
        return self.time_per_image_ns / 1e3

    @property
    def clock_mhz(self) -> float:
        return 1e3 / self.delay_ns

    @property
    def power_w(self) -> float:
        """Average power: energy per image / time per image."""
        return self.energy_per_image_uj * 1e-6 / (self.time_per_image_ns * 1e-9)

    @property
    def energy_per_image_nj(self) -> float:
        return self.energy_per_image_uj * 1e3

    def summary(self) -> str:
        return (
            f"{self.name} [{self.topology}]: "
            f"area {self.total_area_mm2:.2f} mm^2 "
            f"({self.logic_area_mm2:.2f} logic + {self.sram_area_mm2:.2f} SRAM), "
            f"delay {self.delay_ns:.2f} ns, "
            f"{self.cycles_per_image} cycles/image, "
            f"{self.energy_per_image_uj:.3g} uJ/image"
        )
