"""Cycle-accurate simulation of the folded datapaths.

The paper validates its C++ functional simulators against the RTL
(Section 4.1: "We validated both simulators against their RTL
counterpart").  This module plays the RTL's role: it executes the
folded schedules cycle by cycle — SRAM row reads, ni-wide
multiply-accumulate, activation/readout stages — and the tests assert
(a) bit-exact agreement with the functional (numpy) models and
(b) cycle counts equal to the Table 7 formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.errors import SimulationError
from ..core.timing import phase
from ..mlp.quantized import QuantizedMLP
from ..snn.network import SpikingNetwork
from ..snn.snn_wot import SNNWithoutTime


@dataclass
class CycleTrace:
    """Execution record of one simulated classification."""

    cycles: int
    sram_reads: int
    mac_operations: int


class FoldedMLPSimulator:
    """Cycle-accurate model of the folded MLP pipeline (Figure 10/11).

    Each hardware neuron has ni physical inputs.  A layer with N
    inputs takes ceil(N/ni) accumulation cycles (one SRAM row read and
    one ni-wide MAC per hardware neuron per cycle) plus one activation
    cycle through the piecewise-linear sigmoid; the full image is
    hidden-layer cycles + output-layer cycles, matching Table 7's
    ceil(784/ni) + ceil(100/ni) + 2.
    """

    def __init__(self, quantized: QuantizedMLP, ni: int, injector=None):
        if ni < 1:
            raise SimulationError(f"ni must be >= 1, got {ni}")
        self.quantized = quantized
        self.ni = ni
        #: Optional :class:`repro.faults.FaultInjector`; each
        #: accumulation cycle runs its transient-upset lottery against
        #: the accumulator registers (``None`` → clean datapath).  SRAM
        #: weight corruption enters through the ``QuantizedMLP`` itself
        #: (its ``injector=`` hook), which this simulator reads.
        self.injector = injector

    def _layer_cycles(self, n_inputs: int) -> int:
        return math.ceil(n_inputs / self.ni) + 1

    def run_image(self, image: np.ndarray) -> tuple:
        """Classify one normalized image; returns (output codes, trace).

        The output layer's rescaled accumulators (pre-activations) are
        kept on ``self.last_output_pre`` — the quantity the readout
        compares (see :meth:`QuantizedMLP.predict`).
        """
        q = self.quantized
        input_codes = q.activation_format.quantize_code(
            np.asarray(image, dtype=np.float64).reshape(1, -1)
        )[0]
        trace = CycleTrace(cycles=0, sram_reads=0, mac_operations=0)
        hidden_codes = self._run_layer(
            input_codes, q.w_hidden_codes, q.b_hidden_codes, q.lut, trace
        )
        output_codes = self._run_layer(
            hidden_codes, q.w_output_codes, q.b_output_codes, q.output_lut, trace
        )
        return output_codes, trace

    def _run_layer(self, activations, weight_codes, bias_codes, lut, trace):
        """Execute one layer's folded schedule."""
        n_neurons, n_inputs = weight_codes.shape
        if activations.shape[0] != n_inputs:
            raise SimulationError(
                f"layer expects {n_inputs} activations, got {activations.shape[0]}"
            )
        n_chunks = math.ceil(n_inputs / self.ni)
        if self.injector is None:
            # Clean datapath: the chunked int64 accumulation equals one
            # integer GEMV exactly (integer addition is associative and
            # int64 wraps modularly in any order), and the trace is the
            # closed-form folded schedule.
            accumulators = weight_codes.astype(np.int64) @ activations.astype(
                np.int64
            )
            trace.cycles += n_chunks
            trace.sram_reads += n_neurons * n_chunks
            trace.mac_operations += n_neurons * n_inputs
        else:
            accumulators = np.zeros(n_neurons, dtype=np.int64)
            for start in range(0, n_inputs, self.ni):
                chunk = slice(start, min(start + self.ni, n_inputs))
                # One cycle: every hardware neuron reads its SRAM row
                # slice and performs an ni-wide multiply-accumulate.
                accumulators += weight_codes[:, chunk] @ activations[chunk]
                self.injector.maybe_upset(accumulators, "folded-mlp")
                trace.cycles += 1
                trace.sram_reads += n_neurons
                trace.mac_operations += n_neurons * (chunk.stop - chunk.start)
        # Activation cycle: rescale, interpolated sigmoid, requantize —
        # identical arithmetic to QuantizedMLP._layer.
        q = self.quantized
        pre = (
            accumulators.astype(np.float64)
            * q.activation_format.scale
            * q.weight_format.scale
            + bias_codes.astype(np.float64) * q.weight_format.scale
        )
        trace.cycles += 1
        self.last_output_pre = pre
        return q.activation_format.quantize_code(lut.evaluate(pre))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predictions over a batch; compares the output accumulators,
        the same readout as :meth:`QuantizedMLP.predict`.

        With no transient-fault injector the folded schedule's chunked
        int64 accumulation equals one whole-batch integer GEMM exactly
        (integer addition is associative), so the clean path delegates
        to :meth:`QuantizedMLP.predict` — bit-identical and orders of
        magnitude faster.  An injector forces the cycle-by-cycle walk
        (upsets strike specific accumulation cycles).
        """
        with phase("hardware-sim"):
            images = np.atleast_2d(images)
            if self.injector is None:
                return self.quantized.predict(images)
            winners = []
            for image in images:
                self.run_image(image)
                winners.append(int(np.argmax(self.last_output_pre)))
            return np.array(winners)

    def predict_with_cycles(self, images: np.ndarray) -> tuple:
        """``(predictions, per-image cycle counts)`` in one pass."""
        with phase("hardware-sim"):
            images = np.atleast_2d(images)
            winners = np.empty(images.shape[0], dtype=np.int64)
            cycles = np.empty(images.shape[0], dtype=np.int64)
            for index, image in enumerate(images):
                _codes, trace = self.run_image(image)
                winners[index] = int(np.argmax(self.last_output_pre))
                cycles[index] = trace.cycles
            return winners, cycles

    def cycles_per_image(self) -> int:
        """Cycle count of one classification (matches Table 7's formula)."""
        config = self.quantized.config
        return self._layer_cycles(config.n_inputs) + self._layer_cycles(
            config.n_hidden
        )


class FoldedSNNwtSimulator:
    """Cycle-accurate model of the folded with-time SNN datapath.

    One clock cycle emulates one millisecond of the presentation
    (Section 4.2.2).  Each millisecond the datapath

    1. applies the fixed-point leak multiplier (Q0.15, the
       piecewise-linear interpolation's single-cycle constant) to
       every active neuron's integer potential,
    2. accumulates the 8-bit weights of the inputs whose hardware
       interval counters reached zero (spike timings drawn from the
       4-LFSR central-limit-theorem Gaussian generator),
    3. compares potentials against thresholds; the first neuron to
       cross fires, resets, starts its refractory counter and loads
       every other neuron's inhibition counter —

    i.e. the Figure 12/13 datapath.  The folded input walk multiplies
    the millisecond count by ceil(n_inputs/ni); this simulator models
    the *behaviour* per millisecond and reports the folded cycle count
    separately (Table 7's (ceil(784/ni)+7) x 500).
    """

    def __init__(
        self, network: SpikingNetwork, ni: int, seed: int = 1, injector=None
    ):
        if ni < 1:
            raise SimulationError(f"ni must be >= 1, got {ni}")
        if network.neuron_labels is None:
            raise SimulationError("needs a trained, labeled network")
        from .leak_lut import apply_fixed_point_leak, leak_factor_fixed_point
        from .rng_vec import VectorizedHardwareGaussian

        self.network = network
        self.ni = ni
        #: Optional fault injector for transient potential-register
        #: upsets (the network passed in may itself carry SRAM/spike
        #: faults via :func:`repro.faults.apply.corrupt_spiking_network`).
        self.injector = injector
        self.weight_codes = np.round(network.weights).astype(np.int64)
        config = network.config
        self.leak_code = leak_factor_fixed_point(config.t_leak, dt=1.0)
        self._apply_leak = apply_fixed_point_leak
        base = max(int(seed), 1)
        # Bit-identical to the serial HardwareGaussian stream, bulk
        # generated (tests/hardware/test_cyclesim_fast.py asserts the
        # stream equality).
        self.rng = VectorizedHardwareGaussian(
            seeds=[base, base * 7 + 3, base * 131 + 17, base * 8191 + 5]
        )
        # Hardware-constant lookups built once (the thresholds and
        # weight transpose do not change between presentations).
        self.threshold_codes = np.round(network.thresholds).astype(np.int64)
        self._wt = np.ascontiguousarray(self.weight_codes.T)
        self._potentials = np.zeros(config.n_neurons, dtype=np.int64)
        self._duration = int(config.t_period)
        self._walk = math.ceil(config.n_inputs / self.ni)
        self._fast_ok = bool(np.all(self.threshold_codes > 0))

    def _spike_events(self, image: np.ndarray) -> tuple:
        """Step-sorted spike events: ``(pixels, steps, bucket bounds)``.

        One bulk RNG draw replaces the per-pixel interval loop; the
        draw order (``cap`` samples per pixel, pixels ascending) and
        the per-element arithmetic (scale by ``mean / raw_mean``, clamp
        at 1 ms, cumulative sum, floor) match the serial schedule
        exactly.  Intervals are >= 1 ms, so each pixel's spike times are
        strictly increasing — the ``< duration`` cut is a per-pixel
        prefix, floors are distinct steps, and the stable sort by step
        reproduces the serial buckets' ascending-pixel order.
        """
        from ..snn.coding import mean_interval

        config = self.network.config
        duration = self._duration
        image = np.asarray(image).ravel()
        means = mean_interval(image, config.min_spike_interval)
        cap = int(config.max_spikes_per_pixel)
        raw = self.rng.samples(means.size * cap).astype(np.float64)
        intervals = np.maximum(
            raw.reshape(means.size, cap)
            * (means / self.rng.raw_mean)[:, None],
            1.0,
        )
        times = np.cumsum(intervals, axis=1)
        keep = times < duration
        pixels, _ = np.nonzero(keep)
        steps = times[keep].astype(np.int64)
        order = np.argsort(steps, kind="stable")
        pixels = pixels[order].astype(np.int64)
        steps = steps[order]
        bounds = np.searchsorted(steps, np.arange(duration + 1))
        return pixels, steps, bounds

    def _spike_schedule(self, image: np.ndarray) -> list:
        """Per-millisecond spiking-input lists from the hardware RNG."""
        pixels, _steps, bounds = self._spike_events(image)
        return [
            pixels[bounds[t] : bounds[t + 1]] for t in range(self._duration)
        ]

    def _spike_schedule_serial(self, image: np.ndarray) -> list:
        """Reference per-pixel schedule loop (oracle for the tests)."""
        from ..snn.coding import mean_interval

        config = self.network.config
        duration = self._duration
        image = np.asarray(image).ravel()
        means = mean_interval(image, config.min_spike_interval)
        buckets = [[] for _ in range(duration)]
        cap = config.max_spikes_per_pixel
        for pixel, mean in enumerate(means):
            intervals = self.rng.intervals(float(mean), cap)
            t = 0.0
            for interval in intervals:
                t += interval
                if t >= duration:
                    break
                buckets[int(t)].append(pixel)
        return [np.asarray(b, dtype=np.int64) for b in buckets]

    def run_image(self, image: np.ndarray) -> tuple:
        """Simulate one presentation; returns (winner index, trace).

        Clean datapath (no transient injector, positive thresholds):
        per-step contributions come from one int64 ``reduceat`` over the
        step-sorted spike rows (integer addition is associative, so any
        summation order is exact), the leak/integrate scan runs on a
        preallocated buffer with whole-array in-place ops (every neuron
        is active until the first output spike), and the scan stops at
        the first threshold crossing — later dynamics cannot change the
        returned winner, and the trace is the closed-form folded
        schedule.  Otherwise :meth:`run_image_serial` executes the
        cycle-by-cycle walk.
        """
        if self.injector is not None or not self._fast_ok:
            return self.run_image_serial(image)
        config = self.network.config
        n_neurons = config.n_neurons
        duration = self._duration
        pixels, steps, bounds = self._spike_events(image)
        trace = CycleTrace(
            cycles=self._walk * duration,
            sram_reads=n_neurons * self._walk * duration,
            mac_operations=n_neurons * pixels.size,
        )
        contributions = np.zeros((duration, n_neurons), dtype=np.int64)
        nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
        if nonempty.size:
            contributions[nonempty] = np.add.reduceat(
                self._wt[pixels], bounds[:-1][nonempty], axis=0
            )
        has_spike = (bounds[1:] > bounds[:-1]).tolist()
        potentials = self._potentials
        potentials.fill(0)
        leak = self.leak_code
        thresholds = self.threshold_codes
        winner = -1
        # Zero potentials stay exactly zero under (v * leak) >> 15 and
        # cannot cross a positive threshold, so the scan starts at the
        # first spike step.
        start = int(steps[0]) if steps.size else duration
        for t in range(start, duration):
            np.multiply(potentials, leak, out=potentials)
            np.right_shift(potentials, 15, out=potentials)
            if has_spike[t]:
                potentials += contributions[t]
            if (potentials >= thresholds).any():
                fired = np.flatnonzero(potentials >= thresholds)
                overshoot = potentials[fired] - thresholds[fired]
                winner = int(fired[int(np.argmax(overshoot))])
                break
        if winner < 0:
            winner = int(np.argmax(potentials))
        return winner, trace

    def run_image_serial(self, image: np.ndarray) -> tuple:
        """Cycle-by-cycle oracle walk (also serves the injector path)."""
        config = self.network.config
        n_neurons = config.n_neurons
        potentials = np.zeros(n_neurons, dtype=np.int64)
        thresholds = np.round(self.network.thresholds).astype(np.int64)
        refractory = np.zeros(n_neurons, dtype=np.int64)
        inhibited = np.zeros(n_neurons, dtype=np.int64)
        winner = -1
        trace = CycleTrace(cycles=0, sram_reads=0, mac_operations=0)
        schedule = self._spike_schedule(image)
        walk = self._walk
        for spiking in schedule:
            active = (refractory == 0) & (inhibited == 0)
            potentials[active] = self._apply_leak(
                potentials[active], self.leak_code
            )
            if spiking.size:
                contribution = self.weight_codes[:, spiking].sum(axis=1)
                potentials[active] += contribution[active]
            if self.injector is not None:
                self.injector.maybe_upset(potentials, "folded-snnwt")
            trace.cycles += walk
            trace.sram_reads += n_neurons * walk
            trace.mac_operations += n_neurons * spiking.size
            fired = np.flatnonzero((potentials >= thresholds) & active)
            if fired.size:
                overshoot = potentials[fired] - thresholds[fired]
                neuron = int(fired[int(np.argmax(overshoot))])
                if winner < 0:
                    winner = neuron
                potentials[neuron] = 0
                refractory[neuron] = int(config.t_refrac)
                mask = np.arange(n_neurons) != neuron
                inhibited[mask] = np.maximum(
                    inhibited[mask], int(config.t_inhibit)
                )
            refractory = np.maximum(refractory - 1, 0)
            inhibited = np.maximum(inhibited - 1, 0)
        if winner < 0:
            winner = int(np.argmax(potentials))
        return winner, trace

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Label predictions through the network's neuron labels."""
        with phase("hardware-sim"):
            images = np.atleast_2d(images)
            winners = np.array([self.run_image(image)[0] for image in images])
            return self.network.neuron_labels[winners]

    def predict_with_cycles(self, images: np.ndarray) -> tuple:
        """``(labels, per-image cycle counts)`` in one pass.

        Reuses the simulator's preallocated state between images (no
        per-image threshold/LUT rebuilds) and reports each image's
        simulated cycle count alongside its label.
        """
        with phase("hardware-sim"):
            images = np.atleast_2d(images)
            labels = np.empty(images.shape[0], dtype=np.int64)
            cycles = np.empty(images.shape[0], dtype=np.int64)
            for index, image in enumerate(images):
                winner, trace = self.run_image(image)
                labels[index] = self.network.neuron_labels[winner]
                cycles[index] = trace.cycles
            return labels, cycles

    def cycles_per_image(self) -> int:
        """Folded cycle count: (ceil(n_inputs/ni) per ms) x t_period."""
        config = self.network.config
        return math.ceil(config.n_inputs / self.ni) * int(config.t_period)


class FoldedSNNwotSimulator:
    """Cycle-accurate model of the folded SNNwot pipeline.

    Per cycle each of the N hardware neurons consumes ni pixels'
    (weight, 4-bit count) pairs and accumulates weight x count into
    its 20-bit potential; after ceil(784/ni) accumulation cycles, 7
    pipeline/readout cycles flush the converter, tree and two-level
    max stages (Table 7's ceil(784/ni) + 7).
    """

    #: Readout/pipeline flush cycles (spike conversion, tree, max tree).
    FLUSH_CYCLES = 7

    def __init__(self, model: SNNWithoutTime, ni: int, injector=None):
        if ni < 1:
            raise SimulationError(f"ni must be >= 1, got {ni}")
        self.model = model
        self.ni = ni
        #: Optional fault injector for transient potential-register
        #: upsets (weight/count faults come in through the model).
        self.injector = injector
        # The hardware stores 8-bit weights; the trained float weights
        # are already on (or clipped to) the 8-bit grid.  ``model.weights``
        # carries any SRAM corruption injected into this substrate.
        self.weight_codes = np.round(model.weights).astype(np.int64)
        self._n_chunks = math.ceil(self.weight_codes.shape[1] / self.ni)
        self._potentials = np.zeros(self.weight_codes.shape[0], dtype=np.int64)

    def run_image(self, image: np.ndarray) -> tuple:
        """Classify one 8-bit image; returns (winner index, trace).

        Clean datapath (no transient injector): the folded chunked
        int64 accumulation equals one integer GEMV exactly (integer
        addition is associative), and the trace is the closed-form
        folded schedule.  An injector forces the cycle-by-cycle walk
        (upsets strike specific accumulation cycles), reusing one
        preallocated potential buffer across calls.
        """
        counts = self.model.spike_counts(image.reshape(1, -1))[0].astype(np.int64)
        n_neurons, n_inputs = self.weight_codes.shape
        if self.injector is None:
            potentials = self.weight_codes @ counts
            trace = CycleTrace(
                cycles=self._n_chunks + self.FLUSH_CYCLES,
                sram_reads=n_neurons * self._n_chunks,
                mac_operations=n_neurons * n_inputs,
            )
            return int(np.argmax(potentials)), trace
        potentials = self._potentials
        potentials.fill(0)
        trace = CycleTrace(cycles=0, sram_reads=0, mac_operations=0)
        for start in range(0, n_inputs, self.ni):
            chunk = slice(start, min(start + self.ni, n_inputs))
            potentials += self.weight_codes[:, chunk] @ counts[chunk]
            self.injector.maybe_upset(potentials, "folded-snnwot")
            trace.cycles += 1
            trace.sram_reads += n_neurons
            trace.mac_operations += n_neurons * (chunk.stop - chunk.start)
        trace.cycles += self.FLUSH_CYCLES
        return int(np.argmax(potentials)), trace

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Label predictions through the network's neuron labels.

        Clean datapath (no transient injector): the folded chunked
        int64 accumulation equals a single whole-batch integer GEMM
        exactly, so predictions come from ``counts @ W.T`` in one shot.
        """
        with phase("hardware-sim"):
            images = np.atleast_2d(images)
            if self.injector is None:
                counts = self.model.spike_counts(images).astype(np.int64)
                potentials = counts @ self.weight_codes.T
                winners = np.argmax(potentials, axis=1)
                return self.model.network.neuron_labels[winners]
            winners = np.array([self.run_image(image)[0] for image in images])
            return self.model.network.neuron_labels[winners]

    def predict_with_cycles(self, images: np.ndarray) -> tuple:
        """``(labels, per-image cycle counts)`` in one pass."""
        with phase("hardware-sim"):
            images = np.atleast_2d(images)
            labels = np.empty(images.shape[0], dtype=np.int64)
            cycles = np.empty(images.shape[0], dtype=np.int64)
            for index, image in enumerate(images):
                winner, trace = self.run_image(image)
                labels[index] = self.model.network.neuron_labels[winner]
                cycles[index] = trace.cycles
            return labels, cycles

    def cycles_per_image(self) -> int:
        config = self.model.config
        return math.ceil(config.n_inputs / self.ni) + self.FLUSH_CYCLES
