"""Vectorized design-space sweeps over the analytical cost model.

ROADMAP item 3 asks for design-space exploration far beyond the
paper's ~13 points: millions of (family x fold factor x hidden width x
bit width x technology node) candidates, in the spirit of "To Spike or
Not to Spike?" (arXiv 2306.12742) and its digital-hardware companion
(arXiv 2306.15749), which show SNN-vs-ANN conclusions flip depending
on where you sit in exactly this space.  Walking the scalar
constructors (:mod:`repro.hardware.folded` / ``expanded`` /
``online``) one point at a time is orders of magnitude too slow, so
this module lowers the cost model into NumPy array form:

* **Grid** — :class:`SweepGrid` enumerates the cross product and
  filters invalid corners (``ni * weight_bits > 128``, hidden sizes
  outside Table 1's explored ranges, no expanded SNN-online design).
* **Blocks** — the grid factors into (family, ni, weight_bits, node)
  *combos*; within a combo every per-component cost is a plain Python
  float (identical to the scalar path, we call the same component
  factories) and only the hidden-size axis is vectorized.
* **Equivalence** — the array code mirrors the scalar code's exact
  floating-point operation order (``sum()`` is a sequential
  left-to-right fold; branch disagreements are resolved by computing
  both branch tails and ``np.where``-selecting), so sampled slices are
  *bit-identical* to the scalar oracle — asserted by
  ``tests/hardware/test_sweep.py`` and the PR-7 benchmark.  Integer
  ``ceil(a / b)`` via floats equals exact integer ceiling for every
  value this model produces (quotient gaps are >= 1/128, far above
  one ulp), so cycle counts and SRAM geometry use exact int arrays.
* **Frontier** — :func:`pareto_mask` extracts the multi-objective
  Pareto frontier in O(n log n) for two objectives (sort + prefix-min
  sweep) and by a vectorized lex-ordered cull for three or more;
  ``explorer.pareto_frontier`` remains the documented small-n oracle
  and :func:`pareto_frontier_fast` is its drop-in replacement.
* **Sharding** — :func:`run_sweep` chunks combos into shards, runs
  them through a thread pool (``jobs``), and memoizes each shard in
  the content-addressed :class:`~repro.core.artifacts.ArrayBundleCache`.
  Results are canonically ordered (lexicographic in the grid axes) so
  any shard split or job count produces the same rows.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import timing
from ..core.artifacts import ArrayBundleCache, _jsonable, cache_enabled
from ..core.config import MLP_RANGES, SNN_RANGES, MLPConfig, SNNConfig
from ..core.errors import HardwareModelError
from . import technology as tech
from .components import (
    adder,
    adder_tree,
    comparator,
    gaussian_rng,
    interpolation_unit,
    max_unit,
    multiplier,
    register,
    shift_add_unit,
    spike_converter,
    stdp_unit,
)
from .designs import DesignReport
from .expanded import (
    MAX_FANIN,
    MAX_WIDTH,
    _tree_depth,
    expanded_mlp,
    expanded_snn_wot,
    expanded_snn_wt,
)
from .folded import (
    FOLD_FACTORS,
    _tree_levels,
    folded_mlp,
    folded_snn_wot,
    folded_snn_wt,
    mlp_acc_width,
    snn_acc_width,
    snn_tree_width,
)
from .online import DELAY_FACTOR, SRAM_WRITE_PORT_FACTOR, online_snn
from .scaling import get_node, scale_report, scaling_factors
from .sram import _PUBLISHED_BANKS, BANK_WIDTH_BITS, MIN_BANK_DEPTH

#: Families the sweep knows, in canonical order (codes index this).
FAMILIES = ("MLP", "SNNwot", "SNNwt", "SNN-online")

#: ``ni`` sentinel for the spatially expanded variants.
EXPANDED = 0

#: Metrics a sweep can rank / constrain on.
METRICS = ("area", "energy", "latency", "power", "edp")

#: Salt mixed into shard cache keys; bump on any cost-model change.
SWEEP_CODE_VERSION = "sweep-pr7-1"

#: Shard granularity of :func:`run_sweep` — independent of ``jobs`` so
#: shard cache keys are stable across job counts.
SHARD_COUNT = 16

#: Default bit widths explored (the paper's 8 bits plus the
#: reduced/extended precisions the arXiv 2306.15749 comparison spans).
DEFAULT_WEIGHT_BITS = (2, 3, 4, 6, 8, 10, 12, 16)

#: Default fold factors: the paper's {1,4,8,16} plus intermediate
#: points, and 0 for the expanded variants.
DEFAULT_FOLD_FACTORS = (EXPANDED, 1, 2, 4, 8, 12, 16)


def _ceil_div(a, b):
    """Exact integer ceiling division (works on ints and int arrays)."""
    return -(-a // b)


def _seq_sum(terms):
    """Left-to-right fold mirroring Python's ``sum()`` start-at-0."""
    total = 0.0
    for term in terms:
        total = total + term
    return total


# ---------------------------------------------------------------------------
# Grid definition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCombo:
    """One (family, ni, weight_bits, node) block of a sweep grid.

    The hidden-size axis is carried as a tuple and vectorized inside
    the block evaluator; everything else is scalar per combo.
    """

    family: str
    ni: int  # 0 = expanded
    weight_bits: int
    node: str
    hidden: Tuple[int, ...]

    @property
    def n_points(self) -> int:
        return len(self.hidden)


@dataclass(frozen=True)
class SweepGrid:
    """A structured design-space grid.

    ``fold_factors`` may include :data:`EXPANDED` (0) for the spatially
    expanded variants; ``hidden_sizes`` is the MLP hidden width / SNN
    neuron count axis, filtered per family against Table 1's explored
    ranges.  Invalid corners (``ni * weight_bits > 128``, expanded
    SNN-online) are silently dropped, exactly as the scalar
    constructors would reject them.
    """

    hidden_sizes: Tuple[int, ...]
    families: Tuple[str, ...] = FAMILIES
    fold_factors: Tuple[int, ...] = FOLD_FACTORS
    weight_bits: Tuple[int, ...] = (8,)
    nodes: Tuple[str, ...] = ("65nm",)
    mlp_config: MLPConfig = field(default_factory=MLPConfig)
    snn_config: SNNConfig = field(default_factory=SNNConfig)

    def validate(self) -> "SweepGrid":
        if not self.hidden_sizes:
            raise HardwareModelError("grid needs at least one hidden size")
        for fam in self.families:
            if fam not in FAMILIES:
                raise HardwareModelError(
                    f"unknown family {fam!r}; known: {', '.join(FAMILIES)}"
                )
        for ni in self.fold_factors:
            if ni < 0:
                raise HardwareModelError(f"fold factor must be >= 0, got {ni}")
        for wb in self.weight_bits:
            if wb < 1:
                raise HardwareModelError(f"weight_bits must be >= 1, got {wb}")
        for node in self.nodes:
            get_node(node)  # raises on unknown
        return self

    def _family_hidden(self, family: str) -> Tuple[int, ...]:
        if family == "MLP":
            lo, hi = MLP_RANGES["n_hidden"]
        else:
            lo, hi = SNN_RANGES["n_neurons"]
        return tuple(h for h in self.hidden_sizes if lo <= h <= hi)

    def combos(self) -> List[SweepCombo]:
        """The valid (family, ni, weight_bits, node) blocks, in
        canonical (family, ni, weight_bits, node) order."""
        self.validate()
        out: List[SweepCombo] = []
        for fam in sorted(set(self.families), key=FAMILIES.index):
            hidden = self._family_hidden(fam)
            if not hidden:
                continue
            for ni in sorted(set(self.fold_factors)):
                if ni == EXPANDED and fam == "SNN-online":
                    continue  # no expanded online design exists
                for wb in sorted(set(self.weight_bits)):
                    if ni != EXPANDED and ni * wb > BANK_WIDTH_BITS:
                        continue  # SRAM row cannot feed ni weights/cycle
                    for node in self.nodes:
                        out.append(SweepCombo(fam, ni, wb, node, hidden))
        return out

    @property
    def n_points(self) -> int:
        return sum(c.n_points for c in self.combos())


# ---------------------------------------------------------------------------
# Columnar result
# ---------------------------------------------------------------------------


@dataclass
class SweepResult:
    """Columnar cost-model outputs over a sweep grid.

    One row per design point; grid coordinates are coded columns
    (``family_code`` / ``node_code`` index :attr:`families` /
    :attr:`nodes`), cost outputs are float64 columns bit-identical to
    the corresponding scalar :class:`DesignReport` fields.
    """

    families: Tuple[str, ...]
    nodes: Tuple[str, ...]
    family_code: np.ndarray
    ni: np.ndarray
    hidden: np.ndarray
    weight_bits: np.ndarray
    node_code: np.ndarray
    logic_area_mm2: np.ndarray
    sram_area_mm2: np.ndarray
    delay_ns: np.ndarray
    cycles_per_image: np.ndarray
    energy_per_image_uj: np.ndarray

    _COLUMNS = (
        "family_code",
        "ni",
        "hidden",
        "weight_bits",
        "node_code",
        "logic_area_mm2",
        "sram_area_mm2",
        "delay_ns",
        "cycles_per_image",
        "energy_per_image_uj",
    )

    @property
    def n_points(self) -> int:
        return int(self.family_code.shape[0])

    # Derived metrics mirror DesignReport's property arithmetic exactly.

    @property
    def total_area_mm2(self) -> np.ndarray:
        return self.logic_area_mm2 + self.sram_area_mm2

    @property
    def time_per_image_ns(self) -> np.ndarray:
        return self.delay_ns * self.cycles_per_image

    @property
    def latency_us(self) -> np.ndarray:
        return self.time_per_image_ns / 1e3

    @property
    def power_w(self) -> np.ndarray:
        return self.energy_per_image_uj * 1e-6 / (self.time_per_image_ns * 1e-9)

    @property
    def edp_uj_us(self) -> np.ndarray:
        """Energy-delay product (uJ x us per image)."""
        return self.energy_per_image_uj * self.latency_us

    @property
    def supports_online_learning(self) -> np.ndarray:
        code = self.families.index("SNN-online") if "SNN-online" in self.families else -1
        return self.family_code == code

    def metric(self, name: str) -> np.ndarray:
        try:
            return {
                "area": self.total_area_mm2,
                "energy": self.energy_per_image_uj,
                "latency": self.latency_us,
                "power": self.power_w,
                "edp": self.edp_uj_us,
            }[name]
        except KeyError:
            raise HardwareModelError(
                f"unknown metric {name!r}; choose " + "/".join(METRICS)
            ) from None

    def family_of(self, i: int) -> str:
        return self.families[int(self.family_code[i])]

    def variant_of(self, i: int) -> str:
        ni = int(self.ni[i])
        return "expanded" if ni == EXPANDED else f"ni={ni}"

    def point(self, i: int) -> Dict[str, object]:
        """Full record of row ``i`` with stable, machine-readable keys."""
        return {
            "family": self.family_of(i),
            "variant": self.variant_of(i),
            "hidden": int(self.hidden[i]),
            "weight_bits": int(self.weight_bits[i]),
            "node": self.nodes[int(self.node_code[i])],
            "logic_area_mm2": float(self.logic_area_mm2[i]),
            "sram_area_mm2": float(self.sram_area_mm2[i]),
            "total_area_mm2": float(self.total_area_mm2[i]),
            "delay_ns": float(self.delay_ns[i]),
            "cycles_per_image": int(self.cycles_per_image[i]),
            "energy_per_image_uj": float(self.energy_per_image_uj[i]),
            "latency_us": float(self.latency_us[i]),
            "power_w": float(self.power_w[i]),
            "edp_uj_us": float(self.edp_uj_us[i]),
            "supports_online_learning": bool(self.supports_online_learning[i]),
        }

    def as_arrays(self) -> Dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in self._COLUMNS}

    @classmethod
    def from_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        families: Tuple[str, ...] = FAMILIES,
        nodes: Tuple[str, ...] = ("65nm",),
    ) -> "SweepResult":
        return cls(
            families=tuple(families),
            nodes=tuple(nodes),
            **{name: np.asarray(arrays[name]) for name in cls._COLUMNS},
        )

    @classmethod
    def concatenate(cls, parts: Sequence["SweepResult"]) -> "SweepResult":
        if not parts:
            raise HardwareModelError("cannot concatenate zero sweep shards")
        first = parts[0]
        for part in parts[1:]:
            if part.families != first.families or part.nodes != first.nodes:
                raise HardwareModelError("sweep shards use different code tables")
        return cls(
            families=first.families,
            nodes=first.nodes,
            **{
                name: np.concatenate([getattr(p, name) for p in parts])
                for name in cls._COLUMNS
            },
        )

    def canonical(self) -> "SweepResult":
        """Rows sorted by (family, ni, weight_bits, node, hidden).

        Every grid coordinate appears at most once per sweep, so this
        order is unique — serial and sharded runs produce identical
        row sequences.
        """
        order = np.lexsort(
            (self.hidden, self.node_code, self.weight_bits, self.ni, self.family_code)
        )
        return SweepResult(
            families=self.families,
            nodes=self.nodes,
            **{name: getattr(self, name)[order] for name in self._COLUMNS},
        )


# ---------------------------------------------------------------------------
# Vectorized cost-model blocks.
#
# Each block mirrors its scalar constructor's floating-point operation
# order *exactly* (the sequential Netlist sums, the branch structure,
# the parenthesization), with per-component costs taken from the very
# same component factories.  Only the hidden axis is an array.
# ---------------------------------------------------------------------------


def _bank_area_um2(depth: np.ndarray) -> np.ndarray:
    """Vector mirror of :func:`repro.hardware.sram.bank_area_um2`."""
    bits = depth * BANK_WIDTH_BITS
    out = 0.1244 * bits + 302.6 * np.sqrt(bits)
    for published_depth, (area, _energy) in _PUBLISHED_BANKS.items():
        out = np.where(depth == published_depth, area, out)
    return out


def _bank_read_energy_pj(depth: np.ndarray) -> np.ndarray:
    """Vector mirror of :func:`repro.hardware.sram.bank_read_energy_pj`."""
    bits = depth * BANK_WIDTH_BITS
    out = 1.4231e-4 * bits + 30.13
    for published_depth, (_area, energy) in _PUBLISHED_BANKS.items():
        out = np.where(depth == published_depth, energy, out)
    return out


def _plan_arrays(n_neurons, n_inputs, ni: int, wb: int):
    """Vector mirror of :func:`repro.hardware.sram.plan_layer` geometry.

    Returns (area_mm2, read_energy_per_cycle_pj) of the layer's bank
    plan; either of ``n_neurons`` / ``n_inputs`` may be an array.
    """
    npb0 = max(1, BANK_WIDTH_BITS // (ni * wb))
    neurons_per_bank = np.minimum(npb0, n_neurons)
    neuron_bits = n_inputs * wb
    needed_rows = _ceil_div(neurons_per_bank * neuron_bits, BANK_WIDTH_BITS)
    depth = np.maximum(MIN_BANK_DEPTH, 8 * _ceil_div(needed_rows, 8))
    n_banks = _ceil_div(n_neurons, neurons_per_bank)
    area_mm2 = n_banks * _bank_area_um2(depth) / 1e6
    energy_pj = n_banks * _bank_read_energy_pj(depth)
    return area_mm2, energy_pj


def _tree_slices_vec(n: np.ndarray, width: int) -> np.ndarray:
    """Vector mirror of :func:`components.adder_tree_slices` (int exact)."""
    remaining = np.asarray(n, dtype=np.int64).copy()
    slices = np.zeros_like(remaining)
    level = 0
    while bool((remaining > 1).any()):
        level += 1
        pairs = remaining // 2
        slices += pairs * (width + level)
        remaining = remaining - pairs
    return slices


def _max_tree_terms(n_neurons: np.ndarray):
    """Area/energy term pairs of :func:`expanded._max_tree`, per branch.

    Returns ``(fl, [(area, energy) one-level], [(area, energy),
    (area, energy) two-level])`` where the caller selects the branch
    with ``np.where(fl > 1, ...)`` on the accumulated tails.
    """
    fl = _ceil_div(np.asarray(n_neurons, dtype=np.int64), MAX_FANIN)
    first = max_unit(MAX_FANIN, MAX_WIDTH)
    # two-level branch: (max_unit(20,16), fl) then (max_unit(fl,16), 1)
    fl_stages = fl - 1  # fl >= 2 on this branch, so max(fl-1,1) == fl-1
    two_level = [
        (first.area_um2 * fl, first.energy_pj * fl),
        (
            (fl_stages * MAX_WIDTH) * tech.COMPARE_SELECT_AREA,
            (fl_stages * MAX_WIDTH) * tech.COMPARE_SELECT_ENERGY,
        ),
    ]
    # one-level branch: (max_unit(n,16), 1)
    stages = np.maximum(np.asarray(n_neurons, dtype=np.int64) - 1, 1)
    one_level = [
        (
            (stages * MAX_WIDTH) * tech.COMPARE_SELECT_AREA,
            (stages * MAX_WIDTH) * tech.COMPARE_SELECT_ENERGY,
        )
    ]
    return fl, one_level, two_level


def _with_max_tree(fl, area_prefix, energy_prefix, one_level, two_level):
    """Append the max-tree terms to running netlist sums, branch-exact."""
    area_two = area_prefix
    energy_two = energy_prefix
    for area_term, energy_term in two_level:
        area_two = area_two + area_term
        energy_two = energy_two + energy_term
    area_one = area_prefix
    energy_one = energy_prefix
    for area_term, energy_term in one_level:
        area_one = area_one + area_term
        energy_one = energy_one + energy_term
    area = np.where(fl > 1, area_two, area_one)
    energy = np.where(fl > 1, energy_two, energy_one)
    return area, energy


def _folded_mlp_block(hidden: np.ndarray, ni: int, wb: int, cfg: MLPConfig):
    n_in, n_out = cfg.n_inputs, cfg.n_output
    n_neurons = hidden + n_out
    acc = mlp_acc_width(wb)
    entries = [(multiplier(wb, wb), ni)]
    if ni > 1:
        entries.append((adder_tree(ni, acc), 1))
    entries += [
        (adder(acc), 1),
        (interpolation_unit(), 1),
        (register(wb * ni), 2),
        (register(acc), 1),
        (register(wb), 1),
    ]
    area_um2 = _seq_sum(c.area_um2 * (n * n_neurons) for c, n in entries)
    net_energy = _seq_sum(c.energy_pj * (n * n_neurons) for c, n in entries)
    overhead_mm2 = n_neurons * tech.MLP_NEURON_OVERHEAD_AREA / 1e6

    area1, energy1 = _plan_arrays(hidden, n_in, ni, wb)
    area2, energy2 = _plan_arrays(n_out, hidden, ni, wb)
    sram_mm2 = _seq_sum([area1, area2])
    sram_energy = _seq_sum([energy1, energy2])

    cycles = _ceil_div(n_in, ni) + _ceil_div(hidden, ni) + 2
    delay = (
        tech.SRAM_READ_DELAY
        + tech.MULTIPLIER_DELAY
        + tech.ADDER_DELAY
        + tech.REGISTER_DELAY
    )
    energy_per_cycle = (
        sram_energy + net_energy - n_neurons * interpolation_unit().energy_pj
    )
    return {
        "logic_area_mm2": area_um2 / 1e6 + overhead_mm2,
        "sram_area_mm2": sram_mm2,
        "delay_ns": np.full(hidden.shape, delay),
        "cycles_per_image": cycles,
        "energy_per_image_uj": energy_per_cycle * cycles / 1e6,
    }


def _folded_snn_wot_block(hidden: np.ndarray, ni: int, wb: int, cfg: SNNConfig):
    n_in = cfg.n_inputs
    tw, aw = snn_tree_width(wb), snn_acc_width(wb)
    entries = [(multiplier(wb, 4), ni)]
    if ni > 1:
        entries.append((adder_tree(ni, tw), 1))
    entries += [
        (adder(aw), 1),
        (register(tw * ni), 1),
        (register(4 * ni), 1),
        (register(aw), 1),
    ]
    area_um2 = _seq_sum(c.area_um2 * (n * hidden) for c, n in entries)
    net_energy = _seq_sum(c.energy_pj * (n * hidden) for c, n in entries)
    conv = spike_converter()
    area_um2 = area_um2 + conv.area_um2 * n_in
    net_energy = net_energy + conv.energy_pj * n_in
    fl, one_level, two_level = _max_tree_terms(hidden)
    area_um2, net_energy = _with_max_tree(
        fl, area_um2, net_energy, one_level, two_level
    )
    overhead_mm2 = hidden * tech.SNNWOT_NEURON_OVERHEAD_AREA / 1e6

    sram_mm2, sram_energy = _plan_arrays(hidden, n_in, ni, wb)
    sram_mm2 = _seq_sum([sram_mm2])
    sram_energy = _seq_sum([sram_energy])

    cycles = _ceil_div(n_in, ni) + 7
    delay = (
        tech.SRAM_READ_DELAY
        + tech.SHIFT_ADD_DELAY
        + _tree_levels(ni) * tech.ADDER_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_per_cycle = sram_energy + net_energy
    return {
        "logic_area_mm2": area_um2 / 1e6 + overhead_mm2,
        "sram_area_mm2": sram_mm2,
        "delay_ns": np.full(hidden.shape, delay),
        "cycles_per_image": np.full(hidden.shape, cycles, dtype=np.int64),
        "energy_per_image_uj": energy_per_cycle * cycles / 1e6,
    }


def _folded_snn_wt_block(hidden: np.ndarray, ni: int, wb: int, cfg: SNNConfig):
    n_in = cfg.n_inputs
    tw, aw = snn_tree_width(wb), snn_acc_width(wb)
    entries = []
    if ni > 1:
        entries.append((adder_tree(ni, tw), 1))
    entries += [
        (adder(aw), 1),
        (interpolation_unit(), 1),
        (comparator(MAX_WIDTH), 1),
        (register(wb * ni), 2),
        (register(tw * ni), 1),
        (register(aw), 1),
    ]
    area_um2 = _seq_sum(c.area_um2 * (n * hidden) for c, n in entries)
    net_energy = _seq_sum(c.energy_pj * (n * hidden) for c, n in entries)
    rng, counters = gaussian_rng(), register(8)
    area_um2 = area_um2 + rng.area_um2 * ni
    net_energy = net_energy + rng.energy_pj * ni
    area_um2 = area_um2 + counters.area_um2 * n_in
    net_energy = net_energy + counters.energy_pj * n_in
    overhead_mm2 = hidden * tech.SNNWT_NEURON_OVERHEAD_AREA / 1e6

    sram_mm2, sram_energy = _plan_arrays(hidden, n_in, ni, wb)
    sram_mm2 = _seq_sum([sram_mm2])
    sram_energy = _seq_sum([sram_energy])

    cycles = (_ceil_div(n_in, ni) + 7) * int(cfg.t_period)
    delay = (
        tech.SRAM_READ_DELAY
        + _tree_levels(ni) * tech.ADDER_STAGE_DELAY
        + tech.MAX_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_per_cycle = (
        sram_energy + net_energy - hidden * interpolation_unit().energy_pj
    )
    return {
        "logic_area_mm2": area_um2 / 1e6 + overhead_mm2,
        "sram_area_mm2": sram_mm2,
        "delay_ns": np.full(hidden.shape, delay),
        "cycles_per_image": np.full(hidden.shape, cycles, dtype=np.int64),
        "energy_per_image_uj": energy_per_cycle * cycles / 1e6,
    }


def _online_block(hidden: np.ndarray, ni: int, wb: int, cfg: SNNConfig):
    base = _folded_snn_wt_block(hidden, ni, wb, cfg)
    stdp = stdp_unit(ni)
    stdp_mm2 = stdp.area_um2 * hidden / 1e6
    counter_energy = hidden * 1.6
    row_walk = _ceil_div(cfg.n_inputs, ni)
    write_energy = row_walk * ni * wb * 0.05
    cycles = base["cycles_per_image"]
    learning_uj = (cycles * counter_energy + write_energy) / 1e6
    return {
        "logic_area_mm2": base["logic_area_mm2"] + stdp_mm2,
        "sram_area_mm2": base["sram_area_mm2"] * SRAM_WRITE_PORT_FACTOR,
        "delay_ns": base["delay_ns"] * DELAY_FACTOR,
        "cycles_per_image": cycles,
        "energy_per_image_uj": base["energy_per_image_uj"] * 1.02 + learning_uj,
    }


def _expanded_mlp_block(hidden: np.ndarray, wb: int, cfg: MLPConfig):
    n_in, n_out = cfg.n_inputs, cfg.n_output
    n_neurons = hidden + n_out
    n_weights = n_in * hidden + hidden * n_out
    input_tree = adder_tree(n_in, wb)
    hidden_tree_area = _tree_slices_vec(hidden, wb) * tech.FULL_ADDER_AREA
    mult = multiplier(wb, wb)
    n_multipliers = n_weights + n_neurons
    area_um2 = _seq_sum(
        [
            input_tree.area_um2 * hidden,
            hidden_tree_area * n_out,
            mult.area_um2 * n_multipliers,
        ]
    )
    delay = (
        tech.MULTIPLIER_DELAY
        + _tree_depth(n_in) * tech.ADDER_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_uj = (n_weights * tech.EXPANDED_MLP_ENERGY_PER_WEIGHT / 1e6) * (
        wb / 8.0
    )
    sram_mm2 = (n_weights * wb * tech.EXPANDED_SRAM_AREA_PER_BIT) / 1e6
    return {
        "logic_area_mm2": area_um2 / 1e6,
        "sram_area_mm2": sram_mm2,
        "delay_ns": np.full(hidden.shape, delay),
        "cycles_per_image": np.full(hidden.shape, 4, dtype=np.int64),
        "energy_per_image_uj": energy_uj,
    }


def _expanded_snn_wot_block(hidden: np.ndarray, wb: int, cfg: SNNConfig):
    n_in = cfg.n_inputs
    tw = wb + 4
    n_weights = n_in * hidden
    tree = adder_tree(n_in, tw)
    shifter = shift_add_unit(tw)
    conv = spike_converter()
    area_um2 = _seq_sum(
        [
            tree.area_um2 * hidden,
            shifter.area_um2 * (hidden * n_in),
            conv.area_um2 * n_in,
        ]
    )
    fl, one_level, two_level = _max_tree_terms(hidden)
    area_um2, _unused = _with_max_tree(fl, area_um2, area_um2, one_level, two_level)
    delay = (
        tech.SHIFT_ADD_DELAY
        + _tree_depth(n_in) * tech.ADDER_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_uj = (n_weights * tech.EXPANDED_SNNWOT_ENERGY_PER_WEIGHT / 1e6) * (
        wb / 8.0
    )
    sram_mm2 = (n_weights * wb * tech.EXPANDED_SRAM_AREA_PER_BIT) / 1e6
    return {
        "logic_area_mm2": area_um2 / 1e6,
        "sram_area_mm2": sram_mm2,
        "delay_ns": np.full(hidden.shape, delay),
        "cycles_per_image": np.full(hidden.shape, 3, dtype=np.int64),
        "energy_per_image_uj": energy_uj,
    }


def _expanded_snn_wt_block(hidden: np.ndarray, wb: int, cfg: SNNConfig):
    n_in = cfg.n_inputs
    tw = wb + 4
    n_weights = n_in * hidden
    tree = adder_tree(n_in, tw)
    rng, interp = gaussian_rng(), interpolation_unit()
    area_um2 = _seq_sum(
        [tree.area_um2 * hidden, rng.area_um2 * n_in, interp.area_um2 * hidden]
    )
    cycles = int(cfg.t_period)
    delay = (
        _tree_depth(n_in) * tech.ADDER_STAGE_DELAY
        + tech.INTERPOLATION_DELAY
        + tech.REGISTER_DELAY
    )
    energy_uj = (
        n_weights * tech.EXPANDED_SNNWT_ENERGY_PER_WEIGHT_CYCLE * cycles / 1e6
    ) * (wb / 8.0)
    sram_mm2 = (n_weights * wb * tech.EXPANDED_SRAM_AREA_PER_BIT) / 1e6
    return {
        "logic_area_mm2": area_um2 / 1e6,
        "sram_area_mm2": sram_mm2,
        "delay_ns": np.full(hidden.shape, delay),
        "cycles_per_image": np.full(hidden.shape, cycles, dtype=np.int64),
        "energy_per_image_uj": energy_uj,
    }


_FOLDED_BLOCKS = {
    "MLP": _folded_mlp_block,
    "SNNwot": _folded_snn_wot_block,
    "SNNwt": _folded_snn_wt_block,
    "SNN-online": _online_block,
}

_EXPANDED_BLOCKS = {
    "MLP": _expanded_mlp_block,
    "SNNwot": _expanded_snn_wot_block,
    "SNNwt": _expanded_snn_wt_block,
}


def _evaluate_combo(combo: SweepCombo, grid: SweepGrid) -> Dict[str, np.ndarray]:
    hidden = np.asarray(combo.hidden, dtype=np.int64)
    cfg = grid.mlp_config if combo.family == "MLP" else grid.snn_config
    if combo.ni == EXPANDED:
        block = _EXPANDED_BLOCKS[combo.family](hidden, combo.weight_bits, cfg)
    else:
        block = _FOLDED_BLOCKS[combo.family](
            hidden, combo.ni, combo.weight_bits, cfg
        )
    if combo.node != "65nm":
        # scale_report's factor arithmetic, applied columnwise.
        factors = scaling_factors(get_node("65nm"), get_node(combo.node))
        block["logic_area_mm2"] = block["logic_area_mm2"] * factors.area
        block["sram_area_mm2"] = block["sram_area_mm2"] * factors.area
        block["delay_ns"] = block["delay_ns"] * factors.delay
        block["energy_per_image_uj"] = (
            block["energy_per_image_uj"] * factors.energy
        )
    n = hidden.shape[0]
    block["family_code"] = np.full(n, FAMILIES.index(combo.family), dtype=np.int16)
    block["ni"] = np.full(n, combo.ni, dtype=np.int32)
    block["hidden"] = hidden
    block["weight_bits"] = np.full(n, combo.weight_bits, dtype=np.int32)
    block["node_code"] = np.full(
        n, _node_code(grid.nodes, combo.node), dtype=np.int16
    )
    block["cycles_per_image"] = np.asarray(
        block["cycles_per_image"], dtype=np.int64
    )
    return block


def _node_code(nodes: Tuple[str, ...], node: str) -> int:
    return tuple(nodes).index(node)


def evaluate_grid(
    grid: SweepGrid, combos: Optional[Sequence[SweepCombo]] = None
) -> SweepResult:
    """Evaluate (a subset of) a grid serially into a canonical result."""
    if combos is None:
        combos = grid.combos()
    if not combos:
        raise HardwareModelError("sweep grid is empty after validity filtering")
    blocks = [_evaluate_combo(c, grid) for c in combos]
    parts = [
        SweepResult.from_arrays(b, families=FAMILIES, nodes=tuple(grid.nodes))
        for b in blocks
    ]
    return SweepResult.concatenate(parts).canonical()


# ---------------------------------------------------------------------------
# Sharded, cached execution
# ---------------------------------------------------------------------------


def _shard_key(grid: SweepGrid, combos: Sequence[SweepCombo]) -> str:
    payload = {
        "mlp_config": _jsonable(grid.mlp_config),
        "snn_config": _jsonable(grid.snn_config),
        "nodes": list(grid.nodes),
        "combos": [
            [c.family, c.ni, c.weight_bits, c.node, list(c.hidden)]
            for c in combos
        ],
        "code_version": SWEEP_CODE_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _chunk(items: Sequence, n_chunks: int) -> List[List]:
    n_chunks = max(1, min(n_chunks, len(items)))
    size = math.ceil(len(items) / n_chunks)
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def run_sweep(
    grid: SweepGrid,
    jobs: int = 1,
    cache: Optional[ArrayBundleCache] = None,
    use_cache: Optional[bool] = None,
) -> SweepResult:
    """Evaluate a grid in combo shards, optionally parallel and cached.

    ``jobs > 1`` fans shards out over a thread pool (the block
    evaluators are NumPy-bound, so threads parallelize the array work
    without pickling the grid).  Each shard is memoized in the
    content-addressed sweep cache keyed by its exact combo payload and
    :data:`SWEEP_CODE_VERSION`; ``use_cache=False`` (or
    ``REPRO_NO_CACHE=1``) bypasses it.  The returned rows are in
    canonical order regardless of the shard split or job count.
    """
    if jobs < 1:
        raise HardwareModelError(f"jobs must be >= 1, got {jobs}")
    combos = grid.combos()
    if not combos:
        raise HardwareModelError("sweep grid is empty after validity filtering")
    if use_cache is None:
        use_cache = cache_enabled()
    if use_cache and cache is None:
        cache = ArrayBundleCache()

    shards = _chunk(combos, SHARD_COUNT)

    def _run_shard(shard: List[SweepCombo]) -> SweepResult:
        def compute() -> Dict[str, np.ndarray]:
            return evaluate_grid(grid, shard).as_arrays()

        if use_cache and cache is not None:
            arrays = cache.get_or_compute(_shard_key(grid, shard), compute)
        else:
            arrays = compute()
        return SweepResult.from_arrays(
            arrays, families=FAMILIES, nodes=tuple(grid.nodes)
        )

    with timing.phase("hw-sweep"):
        if jobs == 1 or len(shards) == 1:
            parts = [_run_shard(s) for s in shards]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=jobs) as pool:
                parts = list(pool.map(_run_shard, shards))
    return SweepResult.concatenate(parts).canonical()


# ---------------------------------------------------------------------------
# Scalar oracle
# ---------------------------------------------------------------------------


def scalar_design_report(
    family: str,
    ni: int,
    hidden: int,
    weight_bits: int = 8,
    node: str = "65nm",
    mlp_config: Optional[MLPConfig] = None,
    snn_config: Optional[SNNConfig] = None,
) -> DesignReport:
    """One sweep point through the scalar constructors (the oracle).

    The vectorized sweep must agree with this bit for bit; the sweep
    tests and the PR-7 benchmark sample random rows and assert exact
    equality.
    """
    if family not in FAMILIES:
        raise HardwareModelError(
            f"unknown family {family!r}; known: {', '.join(FAMILIES)}"
        )
    if family == "MLP":
        cfg = (mlp_config or MLPConfig()).with_hidden(int(hidden))
        if ni == EXPANDED:
            report = expanded_mlp(cfg, weight_bits)
        else:
            report = folded_mlp(cfg, ni, weight_bits)
    else:
        cfg = (snn_config or SNNConfig()).with_neurons(int(hidden))
        if family == "SNNwot":
            if ni == EXPANDED:
                report = expanded_snn_wot(cfg, weight_bits)
            else:
                report = folded_snn_wot(cfg, ni, weight_bits)
        elif family == "SNNwt":
            if ni == EXPANDED:
                report = expanded_snn_wt(cfg, weight_bits)
            else:
                report = folded_snn_wt(cfg, ni, weight_bits)
        else:  # SNN-online
            if ni == EXPANDED:
                raise HardwareModelError("no expanded SNN-online design exists")
            report = online_snn(cfg, ni, weight_bits)
    if node != "65nm":
        report = scale_report(report, "65nm", node)
    return report


def scalar_walk(grid: SweepGrid, combos: Optional[Sequence[SweepCombo]] = None):
    """Yield every grid point through the scalar oracle (the slow path
    the benchmark compares against)."""
    if combos is None:
        combos = grid.combos()
    for combo in combos:
        for h in combo.hidden:
            yield scalar_design_report(
                combo.family,
                combo.ni,
                h,
                combo.weight_bits,
                combo.node,
                grid.mlp_config,
                grid.snn_config,
            )


def sample_with_cyclesim(result, models, images, **kwargs):
    """Price a sampled sub-grid of ``result`` with cycle-accurate numbers.

    The analytic sweep answers "what does this design cost?"; this
    hook answers "what does the cycle-accurate simulator say?" for a
    reproducible sample of the grid, cheaply enough to use inside a
    sweep: one fold-invariant label pass per model family plus
    closed-form clean-path cycle counts per point, instead of a
    per-point per-image simulator walk.  Delegates to
    :func:`repro.ir.cyclesim.sample_with_cyclesim` (see its docstring
    for arguments and payload shape).
    """
    from ..ir.cyclesim import sample_with_cyclesim as _sample

    return _sample(result, models, images, **kwargs)


# ---------------------------------------------------------------------------
# Fast Pareto frontier
# ---------------------------------------------------------------------------


def pareto_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (minimize every column).

    Semantics match :func:`repro.hardware.explorer.pareto_frontier`
    exactly: row i is dominated iff some row j is <= on every column
    and < on at least one; duplicate rows never dominate each other,
    so all copies of a frontier point are kept.

    Two columns run in O(n log n) (lexsort + prefix-min sweep); one
    column is a min scan; three or more use a vectorized cull over the
    lexicographic order (only lex-smaller rows can dominate).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise HardwareModelError(
            f"objective matrix must be 2-D, got shape {values.shape}"
        )
    n, k = values.shape
    if k < 1:
        raise HardwareModelError("need at least one objective")
    if n == 0:
        return np.zeros(0, dtype=bool)
    if k == 1:
        return values[:, 0] == values[:, 0].min()
    if k == 2:
        return _pareto_mask_2d(values[:, 0], values[:, 1])
    return _pareto_mask_nd(values)


def _pareto_mask_2d(o0: np.ndarray, o1: np.ndarray) -> np.ndarray:
    n = o0.shape[0]
    order = np.lexsort((o1, o0))
    s0, s1 = o0[order], o1[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = s0[1:] != s0[:-1]
    group_start = np.maximum.accumulate(np.where(new_group, np.arange(n), 0))
    group_min = s1[group_start]  # sorted by o1 within the group
    prefix_min = np.minimum.accumulate(s1)
    prev_best = np.full(n, np.inf)
    has_prev = group_start > 0
    prev_best[has_prev] = prefix_min[group_start[has_prev] - 1]
    # Dominated by a strictly-smaller-o0 row with o1 <= ours, or by a
    # same-o0 row with strictly smaller o1.
    dominated = (prev_best <= s1) | (s1 > group_min)
    mask = np.empty(n, dtype=bool)
    mask[order] = ~dominated
    return mask


def _pareto_mask_nd(values: np.ndarray) -> np.ndarray:
    n, k = values.shape
    order = np.lexsort(tuple(values[:, col] for col in range(k - 1, -1, -1)))
    pts = values[order]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        rest = pts[i + 1 :]
        if rest.size == 0:
            break
        worse_eq = (rest >= pts[i]).all(axis=1)
        strictly = (rest > pts[i]).any(axis=1)
        keep[i + 1 :] &= ~(worse_eq & strictly)
    mask = np.empty(n, dtype=bool)
    mask[order] = keep
    return mask


def pareto_frontier_fast(points, objectives=("area", "latency")):
    """Drop-in fast replacement for ``explorer.pareto_frontier``.

    Same inputs, same outputs (including ordering and duplicate
    handling) — the pairwise oracle and this function return identical
    lists on every grid; only the complexity differs.
    """
    if not objectives:
        raise HardwareModelError("need at least one objective")
    from .explorer import METRIC_NAMES

    for objective in objectives:
        if objective not in METRIC_NAMES:
            raise HardwareModelError(
                f"unknown metric {objective!r}; choose " + "/".join(METRIC_NAMES)
            )
    pts = list(points)
    if not pts:
        return []
    values = np.array(
        [[p.metric(o) for o in objectives] for p in pts], dtype=np.float64
    )
    mask = pareto_mask(values)
    frontier = [p for p, keep in zip(pts, mask) if keep]
    return sorted(frontier, key=lambda p: p.metric(objectives[0]))


def pareto_indices(
    result: SweepResult, objectives: Sequence[str] = ("area", "latency")
) -> np.ndarray:
    """Row indices of ``result``'s Pareto frontier, sorted by the first
    objective (stable, mirroring the oracle's output order)."""
    if not objectives:
        raise HardwareModelError("need at least one objective")
    values = np.column_stack([result.metric(o) for o in objectives])
    mask = pareto_mask(values)
    idx = np.flatnonzero(mask)
    order = np.argsort(values[idx, 0], kind="stable")
    return idx[order]


# ---------------------------------------------------------------------------
# Query layer (the `repro explore` backend)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Constraints:
    """Feasibility constraints over a sweep result."""

    max_area_mm2: Optional[float] = None
    max_energy_uj: Optional[float] = None
    max_latency_us: Optional[float] = None
    max_power_w: Optional[float] = None
    needs_online_learning: bool = False
    families: Optional[Tuple[str, ...]] = None


def feasible_mask(result: SweepResult, constraints: Constraints) -> np.ndarray:
    """Boolean mask of rows satisfying every constraint."""
    mask = np.ones(result.n_points, dtype=bool)
    bounds = (
        ("area", constraints.max_area_mm2),
        ("energy", constraints.max_energy_uj),
        ("latency", constraints.max_latency_us),
        ("power", constraints.max_power_w),
    )
    for metric_name, bound in bounds:
        if bound is not None:
            mask &= result.metric(metric_name) <= bound
    if constraints.needs_online_learning:
        mask &= result.supports_online_learning
    if constraints.families is not None:
        allowed = np.zeros(result.n_points, dtype=bool)
        for fam in constraints.families:
            if fam not in FAMILIES:
                raise HardwareModelError(
                    f"unknown family {fam!r}; known: {', '.join(FAMILIES)}"
                )
            allowed |= result.family_code == FAMILIES.index(fam)
        mask &= allowed
    return mask


def best_index(
    result: SweepResult,
    metric: str,
    constraints: Optional[Constraints] = None,
) -> Optional[int]:
    """Index of the feasible row minimizing ``metric`` (None if none)."""
    values = result.metric(metric)
    mask = (
        feasible_mask(result, constraints)
        if constraints is not None
        else np.ones(result.n_points, dtype=bool)
    )
    if not mask.any():
        return None
    idx = np.flatnonzero(mask)
    return int(idx[np.argmin(values[idx])])


def top_indices(
    result: SweepResult,
    metric: str,
    k: int,
    constraints: Optional[Constraints] = None,
) -> np.ndarray:
    """Indices of the k best feasible rows by ``metric``, ascending."""
    values = result.metric(metric)
    mask = (
        feasible_mask(result, constraints)
        if constraints is not None
        else np.ones(result.n_points, dtype=bool)
    )
    idx = np.flatnonzero(mask)
    order = np.argsort(values[idx], kind="stable")
    return idx[order[: max(k, 0)]]


def snn_vs_ann(
    result: SweepResult,
    metric: str = "edp",
    constraints: Optional[Constraints] = None,
) -> Dict[str, object]:
    """Best ANN (MLP) vs best SNN point under shared constraints.

    The comparison axis of arXiv 2306.12742 / 2306.15749: at a given
    operating point (area budget, latency deadline, ...), which camp
    wins on the chosen metric, and by how much?  ``ratio`` is
    snn / ann (values < 1 mean the SNN camp wins).
    """
    base = constraints or Constraints()
    snn_families = tuple(f for f in FAMILIES if f != "MLP")
    ann_best = best_index(
        result,
        metric,
        Constraints(
            max_area_mm2=base.max_area_mm2,
            max_energy_uj=base.max_energy_uj,
            max_latency_us=base.max_latency_us,
            max_power_w=base.max_power_w,
            needs_online_learning=False,
            families=("MLP",),
        ),
    )
    snn_best = best_index(
        result,
        metric,
        Constraints(
            max_area_mm2=base.max_area_mm2,
            max_energy_uj=base.max_energy_uj,
            max_latency_us=base.max_latency_us,
            max_power_w=base.max_power_w,
            needs_online_learning=base.needs_online_learning,
            families=snn_families,
        ),
    )
    ann = result.point(ann_best) if ann_best is not None else None
    snn = result.point(snn_best) if snn_best is not None else None
    ratio = None
    winner = "none"
    if ann is not None and snn is not None:
        ann_value = float(result.metric(metric)[ann_best])
        snn_value = float(result.metric(metric)[snn_best])
        ratio = snn_value / ann_value if ann_value > 0 else None
        winner = "SNN" if snn_value < ann_value else "ANN"
    elif ann is not None:
        winner = "ANN"
    elif snn is not None:
        winner = "SNN"
    return {
        "metric": metric,
        "ann": ann,
        "snn": snn,
        "snn_over_ann": ratio,
        "winner": winner,
    }
