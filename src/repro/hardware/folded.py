"""Spatially folded designs (paper Section 4.3, Table 7).

A folded design time-shares hardware: each hardware neuron has only
``ni`` physical inputs and walks its synapses in chunks of ni per
cycle, with weights streamed from the Table 6 SRAM banks.  The paper
keeps one hardware neuron per logical neuron (folding the *inputs*,
not the neurons) and evaluates ni in {1, 4, 8, 16}.

Cycle counts (validated against Table 7 within +-4 cycles):

* MLP:     ceil(784/ni) + ceil(100/ni) + 2     (the +2 are the two
  piecewise-linear activation steps);
* SNNwot:  ceil(784/ni) + 7                    (3-stage pipe + max);
* SNNwt:   (ceil(784/ni) + 7) * t_period       (one cycle per
  emulated millisecond of the presentation).
"""

from __future__ import annotations

import math

from ..core.config import MLPConfig, SNNConfig
from ..core.errors import HardwareModelError
from . import technology as tech
from .components import (
    Netlist,
    adder,
    adder_tree,
    comparator,
    gaussian_rng,
    interpolation_unit,
    multiplier,
    register,
    spike_converter,
)
from .designs import DesignReport
from .expanded import MAX_WIDTH, SNN_TREE_WIDTH, _max_tree
from .sram import SRAMPlan, plan_layer

#: MLP accumulator width (8x8 products summed over <=1024 inputs).
MLP_ACC_WIDTH = 16

#: SNN potential accumulator width.
SNN_ACC_WIDTH = 20

#: Explored fold factors (Table 7).
FOLD_FACTORS = (1, 4, 8, 16)


def mlp_acc_width(weight_bits: int = 8) -> int:
    """MLP accumulator width for a given weight precision (16 at 8b)."""
    return 2 * weight_bits


def snn_tree_width(weight_bits: int = 8) -> int:
    """SNN adder-tree input width: weight x 4-bit count (12 at 8b)."""
    return weight_bits + 4


def snn_acc_width(weight_bits: int = 8) -> int:
    """SNN potential accumulator width (20 at the paper's 8 bits)."""
    return weight_bits + 12


def _check_ni(ni: int, weight_bits: int = 8) -> None:
    if ni < 1:
        raise HardwareModelError(f"ni must be >= 1, got {ni}")
    if weight_bits < 1:
        raise HardwareModelError(f"weight_bits must be >= 1, got {weight_bits}")
    if ni * weight_bits > 128:
        raise HardwareModelError(
            f"ni={ni}: a 128-bit SRAM row feeds at most "
            f"{128 // weight_bits} {weight_bits}-bit weights"
        )


def _tree_levels(ni: int) -> int:
    """Adder levels including the final accumulate stage."""
    return max(1, math.ceil(math.log2(max(ni, 2)))) + (1 if ni > 1 else 0)


def mlp_cycles(config: MLPConfig, ni: int) -> int:
    """Cycles to classify one image on the folded MLP."""
    _check_ni(ni)
    return (
        math.ceil(config.n_inputs / ni) + math.ceil(config.n_hidden / ni) + 2
    )


def snn_wot_cycles(config: SNNConfig, ni: int) -> int:
    """Cycles to classify one image on the folded SNNwot."""
    _check_ni(ni)
    return math.ceil(config.n_inputs / ni) + 7


def snn_wt_cycles(config: SNNConfig, ni: int) -> int:
    """Cycles to classify one image on the folded SNNwt."""
    return snn_wot_cycles(config, ni) * int(config.t_period)


def mlp_sram_plans(config: MLPConfig, ni: int, weight_bits: int = 8) -> list:
    """Table 6 bank plans for the MLP's two layers."""
    return [
        plan_layer(config.n_hidden, config.n_inputs, ni, weight_bits),
        plan_layer(config.n_output, config.n_hidden, ni, weight_bits),
    ]


def snn_sram_plans(config: SNNConfig, ni: int, weight_bits: int = 8) -> list:
    """Table 6 bank plan for the SNN's single layer."""
    return [plan_layer(config.n_neurons, config.n_inputs, ni, weight_bits)]


def _sram_area_mm2(plans: list) -> float:
    return sum(p.area_mm2 for p in plans)


def _sram_energy_per_cycle_pj(plans: list) -> float:
    return sum(p.read_energy_per_cycle_pj for p in plans)


def folded_mlp(config: MLPConfig, ni: int, weight_bits: int = 8) -> DesignReport:
    """The folded MLP design point (Table 7, MLP rows).

    Hardware neuron (Figure 11): ni multipliers, an adder tree over the
    ni products merged with a 16-bit accumulator, input/weight buffer
    registers, and the piecewise-linear sigmoid unit.  The multiplier
    dominates the critical path, so the cycle time is essentially flat
    in ni — exactly what Table 7 shows (2.24-2.25 ns at every ni).

    ``weight_bits`` generalizes the paper's 8-bit weights for the
    design-space sweeps (:mod:`repro.hardware.sweep`): multiplier,
    buffer and accumulator widths and the SRAM packing all follow the
    precision; the default reproduces the paper exactly.
    """
    config.validate()
    _check_ni(ni, weight_bits)
    acc_width = mlp_acc_width(weight_bits)
    n_neurons = config.n_hidden + config.n_output
    per_neuron = Netlist()
    per_neuron.add(multiplier(weight_bits, weight_bits), ni)
    if ni > 1:
        per_neuron.add(adder_tree(ni, acc_width))
    per_neuron.add(adder(acc_width))
    per_neuron.add(interpolation_unit())
    per_neuron.add(register(weight_bits * ni), 2)   # input + weight buffers
    per_neuron.add(register(acc_width))  # accumulator
    per_neuron.add(register(weight_bits))           # output buffer

    netlist = Netlist()
    for component, count in per_neuron.entries:
        netlist.add(component, count * n_neurons)
    overhead_mm2 = n_neurons * tech.MLP_NEURON_OVERHEAD_AREA / 1e6

    plans = mlp_sram_plans(config, ni, weight_bits)
    cycles = mlp_cycles(config, ni)
    delay = (
        tech.SRAM_READ_DELAY
        + tech.MULTIPLIER_DELAY
        + tech.ADDER_DELAY
        + tech.REGISTER_DELAY
    )
    # The sigmoid interpolator evaluates once per layer per image, not
    # every accumulation cycle; its per-cycle energy is excluded (its
    # two evaluations per image are negligible at pJ scale).
    energy_per_cycle_pj = (
        _sram_energy_per_cycle_pj(plans)
        + netlist.energy_pj()
        - n_neurons * interpolation_unit().energy_pj
    )
    suffix = "" if weight_bits == 8 else f" w{weight_bits}"
    return DesignReport(
        name=f"MLP folded ni={ni}{suffix}",
        topology=config.topology,
        logic_area_mm2=netlist.area_mm2 + overhead_mm2,
        sram_area_mm2=_sram_area_mm2(plans),
        delay_ns=delay,
        cycles_per_image=cycles,
        energy_per_image_uj=energy_per_cycle_pj * cycles / 1e6,
        area_breakdown=netlist.breakdown(),
    )


def folded_snn_wot(
    config: SNNConfig, ni: int, weight_bits: int = 8
) -> DesignReport:
    """The folded timing-free SNN design point (Table 7, SNNwot rows).

    Each hardware neuron multiplies ni 8-bit weights by their 4-bit
    spike counts (shift-and-add "multipliers" — a real 8x4 array in
    the folded datapath, since all of one pixel's spikes are treated
    simultaneously) and accumulates into a 20-bit potential; the
    shared readout is the two-level max tree; pixel-to-count
    converters feed the input buffers.
    """
    config.validate()
    _check_ni(ni, weight_bits)
    tree_width = snn_tree_width(weight_bits)
    acc_width = snn_acc_width(weight_bits)
    per_neuron = Netlist()
    per_neuron.add(multiplier(weight_bits, 4), ni)
    if ni > 1:
        per_neuron.add(adder_tree(ni, tree_width))
    per_neuron.add(adder(acc_width))
    per_neuron.add(register(tree_width * ni))  # weighted-count buffer
    per_neuron.add(register(4 * ni))        # count buffer
    per_neuron.add(register(acc_width))  # potential

    netlist = Netlist()
    for component, count in per_neuron.entries:
        netlist.add(component, count * config.n_neurons)
    netlist.add(spike_converter(), config.n_inputs)
    for component, count in _max_tree(config.n_neurons).entries:
        netlist.add(component, count)
    overhead_mm2 = config.n_neurons * tech.SNNWOT_NEURON_OVERHEAD_AREA / 1e6

    plans = snn_sram_plans(config, ni, weight_bits)
    cycles = snn_wot_cycles(config, ni)
    delay = (
        tech.SRAM_READ_DELAY
        + tech.SHIFT_ADD_DELAY
        + _tree_levels(ni) * tech.ADDER_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    energy_per_cycle_pj = _sram_energy_per_cycle_pj(plans) + netlist.energy_pj()
    suffix = "" if weight_bits == 8 else f" w{weight_bits}"
    return DesignReport(
        name=f"SNNwot folded ni={ni}{suffix}",
        topology=config.topology,
        logic_area_mm2=netlist.area_mm2 + overhead_mm2,
        sram_area_mm2=_sram_area_mm2(plans),
        delay_ns=delay,
        cycles_per_image=cycles,
        energy_per_image_uj=energy_per_cycle_pj * cycles / 1e6,
        area_breakdown=netlist.breakdown(),
    )


def folded_snn_wt(
    config: SNNConfig, ni: int, weight_bits: int = 8
) -> DesignReport:
    """The folded with-time SNN design point (Table 7, SNNwt rows).

    Each hardware neuron accumulates ni spiking weights per cycle and
    applies the interpolated exponential leak; ni Gaussian RNGs and
    per-input interval counters generate spike timings; a threshold
    comparator detects firing.  One cycle emulates one millisecond,
    so the whole presentation is replayed: cycles = SNNwot x t_period.
    """
    config.validate()
    _check_ni(ni, weight_bits)
    tree_width = snn_tree_width(weight_bits)
    acc_width = snn_acc_width(weight_bits)
    per_neuron = Netlist()
    if ni > 1:
        per_neuron.add(adder_tree(ni, tree_width))
    per_neuron.add(adder(acc_width))
    per_neuron.add(interpolation_unit())     # leak evaluation
    per_neuron.add(comparator(MAX_WIDTH))    # threshold check
    per_neuron.add(register(weight_bits * ni), 2)  # weight + spike-mask buffers
    per_neuron.add(register(tree_width * ni))  # masked-weight pipeline
    per_neuron.add(register(acc_width))  # potential

    netlist = Netlist()
    for component, count in per_neuron.entries:
        netlist.add(component, count * config.n_neurons)
    netlist.add(gaussian_rng(), ni)
    netlist.add(register(8), config.n_inputs)  # spike interval counters
    overhead_mm2 = config.n_neurons * tech.SNNWT_NEURON_OVERHEAD_AREA / 1e6

    plans = snn_sram_plans(config, ni, weight_bits)
    cycles = snn_wt_cycles(config, ni)
    delay = (
        tech.SRAM_READ_DELAY
        + _tree_levels(ni) * tech.ADDER_STAGE_DELAY
        + tech.MAX_STAGE_DELAY
        + tech.REGISTER_DELAY
    )
    # The leak interpolator's energy is folded into the neuron's
    # register/adder activity (it is a shift-subtract in practice);
    # counting its full evaluation energy every emulated millisecond
    # would overshoot the paper's SNNwt energies by ~30%.
    energy_per_cycle_pj = (
        _sram_energy_per_cycle_pj(plans)
        + netlist.energy_pj()
        - config.n_neurons * interpolation_unit().energy_pj
    )
    suffix = "" if weight_bits == 8 else f" w{weight_bits}"
    return DesignReport(
        name=f"SNNwt folded ni={ni}{suffix}",
        topology=config.topology,
        logic_area_mm2=netlist.area_mm2 + overhead_mm2,
        sram_area_mm2=_sram_area_mm2(plans),
        delay_ns=delay,
        cycles_per_image=cycles,
        energy_per_image_uj=energy_per_cycle_pj * cycles / 1e6,
        area_breakdown=netlist.breakdown(),
    )
