"""Vectorized bit-exact hardware Gaussian RNG (leaps the LFSR in bulk).

:mod:`repro.hardware.rng_hw` steps its four 31-bit LFSRs one bit at a
time through Python integers — fine for unit tests, but the folded
SNNwt cycle simulator consumes ``pixels x max_spikes x resolution``
bits per image, and the per-bit loop dominates its runtime.  This
module produces the *identical* bit stream with NumPy:

The Fibonacci LFSR with primitive polynomial ``x^31 + x^3 + 1`` emits
output bits satisfying the GF(2)-linear recurrence

    b[t] = b[t-31] XOR b[t-3]

and, because squaring is a field homomorphism in characteristic 2,
every power-of-two dilation of it:

    b[t] = b[t - 31*2^k] XOR b[t - 3*2^k]        for all k >= 0.

So after bootstrapping the first 31 bits with the scalar
:class:`~repro.hardware.rng_hw.LFSR31`, whole blocks of up to
``3 * 2^k`` future bits are one vectorized XOR of two shifted slices of
the history, with ``k`` chosen as large as the available history
allows.  The stream is identical bit for bit to the serial generator
(asserted by ``tests/hardware/test_cyclesim_fast.py``), so spike
schedules — and therefore hardware winners and cycle counts — are
unchanged.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.errors import HardwareModelError
from .rng_hw import CLT_TERMS, LFSR_BITS, HardwareGaussian, LFSR31

#: History kept after compaction: bounds the ladder's look-back (the
#: largest usable dilation becomes ``31 * 2^k <= _HISTORY_BITS``) while
#: keeping the rolling buffer small.
_HISTORY_BITS = 1 << 17


class _VectorLFSR31:
    """Bulk bit generator for one ``x^31 + x^3 + 1`` Fibonacci LFSR.

    Maintains the full output-bit history (compacted to a bounded
    tail) and a consumption cursor; :meth:`take` hands out the next
    ``n`` output bits exactly as ``n`` successive ``LFSR31.step()``
    calls would.
    """

    def __init__(self, seed: int):
        scalar = LFSR31(seed)  # validates the seed
        bits = np.empty(LFSR_BITS, dtype=np.uint8)
        for i in range(LFSR_BITS):
            bits[i] = scalar.step()
        self._bits = bits
        self._pos = 0  # index of the first unconsumed bit

    def _grow(self, target: int) -> None:
        """Extend the history to at least ``target`` bits via the ladder."""
        have = self._bits.size
        out = np.empty(target, dtype=np.uint8)
        out[:have] = self._bits
        while have < target:
            k = 0
            while (LFSR_BITS << (k + 1)) <= have:
                k += 1
            lag_hi = LFSR_BITS << k  # 31 * 2^k
            lag_lo = 3 << k  # 3 * 2^k: max block before self-reference
            m = min(lag_lo, target - have)
            np.bitwise_xor(
                out[have - lag_hi : have - lag_hi + m],
                out[have - lag_lo : have - lag_lo + m],
                out=out[have : have + m],
            )
            have += m
        self._bits = out

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` output bits (uint8 view; do not mutate)."""
        end = self._pos + n
        if end > self._bits.size:
            self._grow(max(end, 2 * self._bits.size))
        out = self._bits[self._pos : end]
        self._pos = end
        if self._pos > _HISTORY_BITS and self._bits.size > 2 * _HISTORY_BITS:
            # Compact: the ladder only looks back 31 * 2^k <= history
            # bits, and k re-adapts to the shorter buffer.
            keep = self._bits.size - (self._pos - _HISTORY_BITS)
            self._bits = self._bits[-keep:].copy()
            self._pos = _HISTORY_BITS
        return out

    def next_bits(self, n_bits: int) -> int:
        """Scalar-compatible ``LFSR31.next_bits`` (MSB-first assembly)."""
        if n_bits < 1:
            raise HardwareModelError(f"n_bits must be >= 1, got {n_bits}")
        bits = self.take(n_bits)
        value = 0
        for bit in bits:
            value = (value << 1) | int(bit)
        return value


class VectorizedHardwareGaussian(HardwareGaussian):
    """Drop-in :class:`HardwareGaussian` with bulk sample generation.

    Consumes the four LFSR streams in exactly the serial order (every
    sample reads ``resolution`` bits from each register in turn, but
    the four registers' streams are independent, so batching each
    register's reads preserves all four streams), making
    ``samples(n)`` bitwise equal to ``n`` serial :meth:`sample` calls.
    """

    def __init__(self, seeds: List[int], resolution: int = 8):
        super().__init__(seeds=seeds, resolution=resolution)
        # Replace the scalar registers with bulk generators seeded the
        # same way; the base class's sample()/next_bits() protocol
        # keeps working through _VectorLFSR31.next_bits.
        self.lfsrs = [_VectorLFSR31(seed) for seed in seeds]
        self._weights = (
            1 << np.arange(self.resolution - 1, -1, -1, dtype=np.int64)
        ).astype(np.int64)

    def samples(self, n: int) -> np.ndarray:
        if n < 0:
            raise HardwareModelError(f"n must be >= 0, got {n}")
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        total = np.zeros(n, dtype=np.int64)
        res = self.resolution
        for lfsr in self.lfsrs:
            bits = lfsr.take(n * res).reshape(n, res)
            # MSB-first assembly, the vectorized next_bits(resolution).
            total += bits.astype(np.int64) @ self._weights
        return total

    def sample(self) -> int:
        return int(self.samples(1)[0])
