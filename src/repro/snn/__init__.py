"""The neuroscience model: single-layer LIF SNN + STDP (+ variants)."""

from .coding import (
    CODERS,
    GaussianCoder,
    PoissonCoder,
    RankOrderCoder,
    SpikeCoder,
    SpikeTrain,
    TimeToFirstSpikeCoder,
    deterministic_counts,
    make_coder,
    mean_interval,
)
from .batched import (
    DEFAULT_BATCH_SIZE,
    TEST_SPIKE_STREAM,
    BatchPresentationResult,
    SpikeTrainBatch,
    batch_winners,
    encode_indexed,
    encode_shared,
    gather_contribution,
    predict_batch,
    present_batch,
)
from .conversion import ConvertedSNN, conversion_sweep, convert_mlp
from .event_driven import (
    grid_agreement,
    predict_event_driven,
    present_event_driven,
)
from .homeostasis import HomeostasisController
from .labeling import NeuronLabeler
from .lif import LIFParameters, LIFPopulation
from .retention import (
    RetentionPoint,
    RetentionStudy,
    receptive_field_drift,
    retention_curve,
)
from .network import (
    PresentationResult,
    SNNTrainer,
    SpikingNetwork,
    evaluate_snn,
    train_snn,
)
from .snn_bp import BackPropSNN, train_snn_bp
from .snn_wot import SNNWithoutTime, relabel_for_counts
from .stdp import STDPRule

__all__ = [
    "SpikeTrain",
    "SpikeCoder",
    "PoissonCoder",
    "GaussianCoder",
    "RankOrderCoder",
    "TimeToFirstSpikeCoder",
    "CODERS",
    "make_coder",
    "mean_interval",
    "deterministic_counts",
    "SpikeTrainBatch",
    "BatchPresentationResult",
    "present_batch",
    "predict_batch",
    "batch_winners",
    "encode_indexed",
    "encode_shared",
    "gather_contribution",
    "DEFAULT_BATCH_SIZE",
    "TEST_SPIKE_STREAM",
    "LIFParameters",
    "LIFPopulation",
    "STDPRule",
    "HomeostasisController",
    "NeuronLabeler",
    "SpikingNetwork",
    "SNNTrainer",
    "PresentationResult",
    "train_snn",
    "evaluate_snn",
    "SNNWithoutTime",
    "relabel_for_counts",
    "BackPropSNN",
    "train_snn_bp",
    "ConvertedSNN",
    "convert_mlp",
    "conversion_sweep",
    "RetentionPoint",
    "RetentionStudy",
    "retention_curve",
    "receptive_field_drift",
    "present_event_driven",
    "predict_event_driven",
    "grid_agreement",
]
