"""Memory retention under continued STDP learning (Section 3.2).

The paper notes that "online learning rules like STDP raise the
problem of retention of earlier memories when new ones are presented"
and that "sufficient lateral inhibition stabilizes receptive fields,
the stability of which is a measure of memory retention time span"
(citing Billings & van Rossum).  This module makes that discussion
measurable:

* :func:`retention_curve` trains an SNN on a first set of classes
  (task A), then continues training on a second set (task B) while
  periodically probing accuracy on task A — the forgetting curve;
* :func:`receptive_field_drift` tracks how far the weight vectors
  move during continued learning — the paper's "stability of
  receptive fields" proxy.

Both run entirely on the public training APIs, so they double as an
integration stress of online learning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..core.errors import TrainingError
from ..core.rng import child_rng
from ..datasets.base import Dataset
from .labeling import NeuronLabeler
from .network import SNNTrainer, SpikingNetwork
from .training import FusedSTDPEngine


@dataclass
class RetentionPoint:
    """One probe during continued learning."""

    images_seen: int
    task_a_accuracy: float
    task_b_accuracy: float
    field_drift: float


@dataclass
class RetentionStudy:
    """The full forgetting curve plus summary statistics."""

    points: List[RetentionPoint] = field(default_factory=list)

    @property
    def initial_accuracy(self) -> float:
        if not self.points:
            raise TrainingError("study has no probe points")
        return self.points[0].task_a_accuracy

    @property
    def final_accuracy(self) -> float:
        if not self.points:
            raise TrainingError("study has no probe points")
        return self.points[-1].task_a_accuracy

    @property
    def forgetting(self) -> float:
        """Accuracy on task A lost over the continued-learning phase.

        Negative values mean task-A accuracy *improved* while task B
        was learned.  Well-defined even when the initial accuracy is
        zero (forgetting is then ``-final_accuracy``).
        """
        return self.initial_accuracy - self.final_accuracy

    @property
    def relative_forgetting(self) -> float:
        """Forgetting as a fraction of the initial accuracy.

        ``0.0`` when the initial accuracy is zero: a network that knew
        nothing had nothing to forget, and dividing by zero would turn
        that degenerate-but-legal study into a crash.
        """
        initial = self.initial_accuracy
        if initial == 0.0:
            return 0.0
        return self.forgetting / initial


def window_bounds(total: int, window: int):
    """Yield ``(start, stop)`` learning-window slices covering ``total``.

    The bounded-window schedule shared by :func:`retention_curve` and
    the live continual learner (:mod:`repro.serve.learner`): full
    ``window``-sized slices, with a short final slice when ``window``
    does not divide ``total``.  ``total == 0`` yields nothing — an
    empty stream is a valid (if boring) learning phase.
    """
    if window < 1:
        raise TrainingError(f"window must be >= 1, got {window}")
    if total < 0:
        raise TrainingError(f"total must be >= 0, got {total}")
    seen = 0
    while seen < total:
        upto = min(seen + window, total)
        yield seen, upto
        seen = upto


def _split_by_classes(dataset: Dataset, classes: Sequence[int]) -> Dataset:
    mask = np.isin(dataset.labels, list(classes))
    return dataset.subset(np.flatnonzero(mask))


def _relabel(network: SpikingNetwork, dataset: Dataset, rng) -> None:
    """Refresh neuron labels from a labeling pass over ``dataset``."""
    labeler = NeuronLabeler(network.config.n_neurons, network.config.n_labels)
    for image, label in zip(dataset.images, dataset.labels):
        winner = network.present_image(image, rng=rng).readout()
        labeler.record(winner, int(label))
    network.neuron_labels = labeler.labels()


def _accuracy_on(network: SpikingNetwork, dataset: Dataset, rng) -> float:
    correct = 0
    for image, label in zip(dataset.images, dataset.labels):
        if network.predict_image(image, rng=rng) == label:
            correct += 1
    return correct / max(len(dataset), 1)


def retention_curve(
    network: SpikingNetwork,
    train_set: Dataset,
    test_set: Dataset,
    task_a_classes: Sequence[int] = (0, 1, 2, 3, 4),
    task_b_classes: Sequence[int] = (5, 6, 7, 8, 9),
    probe_every: int = 100,
    task_b_images: int = 400,
) -> RetentionStudy:
    """Train on task A, continue on task B, probe task-A accuracy.

    The network is trained (with the standard pipeline) on task A's
    classes, then receives ``task_b_images`` presentations of task B
    with learning on; every ``probe_every`` presentations the study
    records accuracy on both tasks' test subsets and the receptive-
    field drift since task A ended.
    """
    if probe_every < 1:
        raise TrainingError(f"probe_every must be >= 1, got {probe_every}")
    trainer = SNNTrainer(network)
    task_a_train = _split_by_classes(train_set, task_a_classes)
    task_b_train = _split_by_classes(train_set, task_b_classes)
    task_a_test = _split_by_classes(test_set, task_a_classes)
    task_b_test = _split_by_classes(test_set, task_b_classes)
    if len(task_a_train) == 0 or len(task_b_train) == 0:
        raise TrainingError("both tasks need training images")

    trainer.train(task_a_train)
    network.equalize_thresholds()
    label_rng = child_rng(network.config.seed, "retention-label")
    _relabel(network, task_a_train, label_rng)
    baseline_weights = network.weights.copy()
    baseline_scale = float(np.linalg.norm(baseline_weights)) or 1.0

    probe_rng = child_rng(network.config.seed, "retention-probe")
    study = RetentionStudy()
    study.points.append(
        RetentionPoint(
            images_seen=0,
            task_a_accuracy=_accuracy_on(network, task_a_test, probe_rng),
            task_b_accuracy=_accuracy_on(network, task_b_test, probe_rng),
            field_drift=0.0,
        )
    )

    stream_rng = child_rng(network.config.seed, "retention-stream")
    spikes_rng = child_rng(network.config.seed, "retention-spikes")
    order = stream_rng.choice(len(task_b_train), size=task_b_images, replace=True)
    # Present task B through the fused engine in windows that end
    # exactly at the probe points; the engine's learning presentations
    # and spike-stream consumption are bit-identical to the per-image
    # present_image loop, so probed accuracies and drifts are unchanged.
    engine = FusedSTDPEngine(network)
    for start, upto in window_bounds(task_b_images, probe_every):
        window = order[start:upto]
        engine.learn_images(task_b_train.images[window], rng=spikes_rng)
        seen = upto
        _relabel(
            network,
            _merge_for_labeling(task_a_train, task_b_train, seen),
            label_rng,
        )
        drift = float(
            np.linalg.norm(network.weights - baseline_weights) / baseline_scale
        )
        study.points.append(
            RetentionPoint(
                images_seen=seen,
                task_a_accuracy=_accuracy_on(network, task_a_test, probe_rng),
                task_b_accuracy=_accuracy_on(network, task_b_test, probe_rng),
                field_drift=drift,
            )
        )
    return study


def _merge_for_labeling(task_a: Dataset, task_b: Dataset, seen_b: int) -> Dataset:
    """Labeling set: all of task A plus the task-B images seen so far."""
    from ..datasets.base import merge

    b_slice = task_b.take(min(max(seen_b, 10), len(task_b)))
    return merge(task_a, b_slice)


def receptive_field_drift(
    network: SpikingNetwork,
    dataset: Dataset,
    n_presentations: int = 200,
) -> List[float]:
    """Per-probe relative weight drift under continued learning.

    A compact stability probe: present ``n_presentations`` images with
    learning on and record ||W - W0|| / ||W0|| every 20 images.
    """
    baseline = network.weights.copy()
    scale = float(np.linalg.norm(baseline)) or 1.0
    rng = child_rng(network.config.seed, "drift-spikes")
    order_rng = child_rng(network.config.seed, "drift-order")
    order = order_rng.choice(len(dataset), size=n_presentations, replace=True)
    drifts = []
    engine = FusedSTDPEngine(network)
    for start, upto in window_bounds(n_presentations, 20):
        engine.learn_images(dataset.images[order[start:upto]], rng=rng)
        if upto % 20 == 0:
            drifts.append(float(np.linalg.norm(network.weights - baseline) / scale))
    return drifts
