"""Batched SNN inference engine (whole-test-set grid simulation).

The paper's central claim (Section 4) is that spiking dynamics
parallelize trivially — the SNNwt hardware updates every neuron every
emulated millisecond.  The per-image software path in
:mod:`repro.snn.network` simulates one image at a time inside a Python
``for t`` loop, so full-dataset evaluation is dominated by interpreter
overhead rather than math.  This module applies the hardware's
transformation to the numpy substrate: it runs inference for a whole
batch of B images *simultaneously*, with ``(B, n_neurons)`` potential /
refractory / inhibition matrices stepped on the same 1 ms grid.

Bit-identity contract
---------------------
Batched predictions are **bit-identical** to the per-image reference
path at every batch size.  Three mechanisms make that true:

1. *Per-image child RNGs.*  Spike trains are encoded with
   ``child_rng(seed, stream, image_index)``, a generator that depends
   only on ``(seed, stream, index)`` — never on evaluation order,
   batch size or worker count.
2. *Order-preserving accumulation.*  Floating-point addition is not
   associative, so both paths must add spike contributions in the same
   order.  The shared primitive :func:`gather_contribution` uses
   ``np.add.reduce(block, axis=0)`` — a strictly sequential
   accumulation over the outer axis (verified by
   ``tests/snn/test_batched.py``) — and the batched kernel adds the
   same per-spike weight rows *rank by rank* (k-th spike of every
   image in one vectorized gather-add), which reproduces exactly the
   same per-image accumulation order.
3. *Identical elementwise updates.*  Leak decay, masked integration,
   threshold comparison and argmax tie-breaking (first index wins) are
   elementwise / per-row operations with the same operand values in
   both paths.

Per-row early-exit masks let the first-spike readout stop simulating a
row as soon as its winner is known (the readout needs only the winner,
or — for rows that never fire — the full-presentation potentials),
which is where most of the batched speedup beyond vectorization comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import SimulationError
from ..core.rng import SeedLike, child_rng
from .coding import SpikeTrain

#: RNG stream name used for test-time spike generation.  Shared by the
#: per-image reference path and the batched engine so both draw the
#: same spike trains for the same ``(seed, image_index)``.
TEST_SPIKE_STREAM = "snn-test-spikes"

#: Default number of images simulated simultaneously.  Large enough to
#: amortize the per-step Python overhead over the whole batch, small
#: enough that the (B, n_neurons) state matrices stay cache-resident
#: and that one slow-to-fire straggler does not pin a huge batch on
#: the grid (rows retire individually, but the step loop runs until
#: the last live row finishes).  128 measured fastest on the digits
#: workload: 64 under-amortizes the per-step overhead, 256 keeps too
#: many finished rows in flight.
DEFAULT_BATCH_SIZE = 128


def gather_contribution(
    weights: np.ndarray,
    inputs: np.ndarray,
    modulation: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-neuron contribution of one step's input spikes (one image).

    Accumulates ``weights[:, inputs[j]] * modulation[j]`` over spikes j
    *in spike order* via ``np.add.reduce`` over the outer axis — a
    strictly sequential sum, bit-identical to the rank-by-rank
    accumulation of the batched kernel.  This is the shared arithmetic
    primitive of :meth:`repro.snn.network.SpikingNetwork.present` and
    :func:`present_batch`; both paths owe their bit-identity to it.
    """
    block = weights.T[inputs]
    if modulation is not None and not np.all(modulation == 1.0):
        block = block * modulation[:, None]
    return np.add.reduce(block, axis=0)


@dataclass
class SpikeTrainBatch:
    """CSR-by-(step, rank) representation of B images' spike trains.

    The dense equivalent is a ``(B, T, n_inputs)`` step-count tensor;
    storing only the spikes keeps memory proportional to the actual
    spike count.  Spikes are sorted by ``(step, rank, row)`` where
    ``rank`` is the spike's position within its ``(row, step)`` bucket:
    slicing one ``(step, rank)`` segment yields *at most one spike per
    batch row*, so the kernel can accumulate it with a single
    vectorized fancy-index add — and doing the ranks in order
    reproduces the per-image accumulation order exactly.

    Attributes:
        inputs / modulation / rows: per-spike pixel index, decoder
            attenuation and batch row, in (step, rank, row) order.
        boundaries: ``(n_steps * n_ranks + 1,)`` prefix offsets; the
            ``(t, k)`` segment is
            ``boundaries[t*n_ranks+k] : boundaries[t*n_ranks+k+1]``.
        n_steps: grid length (ceil(duration / 1 ms)).
        n_ranks: maximum spikes any (row, step) bucket holds.
        batch: number of images B.
        n_inputs: input channels per image.
        duration: presentation length in ms (shared by all trains).
        uniform_modulation: True when every modulation is exactly 1.0
            (rate coding), enabling the multiply-free fast path.
    """

    inputs: np.ndarray
    modulation: np.ndarray
    rows: np.ndarray
    boundaries: np.ndarray
    n_steps: int
    n_ranks: int
    batch: int
    n_inputs: int
    duration: float
    uniform_modulation: bool

    @classmethod
    def from_trains(
        cls, trains: Sequence[SpikeTrain], step_ms: float = 1.0
    ) -> "SpikeTrainBatch":
        """Pack per-image :class:`SpikeTrain` objects into batch form."""
        if not trains:
            raise SimulationError("cannot batch zero spike trains")
        n_inputs = trains[0].n_inputs
        duration = trains[0].duration
        for train in trains:
            if train.n_inputs != n_inputs or train.duration != duration:
                raise SimulationError(
                    "all trains in a batch must share n_inputs and duration"
                )
        n_steps = int(np.ceil(duration / step_ms))
        sizes = np.array([train.n_spikes for train in trains], dtype=np.int64)
        total = int(sizes.sum())
        rows = np.repeat(np.arange(len(trains), dtype=np.int64), sizes)
        if total:
            times = np.concatenate([train.times for train in trains])
            inputs = np.concatenate([train.inputs for train in trains])
            modulation = np.concatenate([train.modulation for train in trains])
        else:
            times = np.empty(0)
            inputs = np.empty(0, dtype=np.int64)
            modulation = np.empty(0)
        step = np.minimum((times / step_ms).astype(np.int64), n_steps - 1)

        # Rank of each spike within its (row, step) bucket.  The concat
        # order is row-major with times ascending inside each row, so
        # the (row, step) key is globally non-decreasing and bucket
        # starts are where it changes.
        key = rows * np.int64(n_steps) + step
        idx = np.arange(total, dtype=np.int64)
        if total:
            new_bucket = np.empty(total, dtype=bool)
            new_bucket[0] = True
            np.not_equal(key[1:], key[:-1], out=new_bucket[1:])
            bucket_start = np.maximum.accumulate(np.where(new_bucket, idx, 0))
            rank = idx - bucket_start
            n_ranks = int(rank.max()) + 1
        else:
            rank = idx
            n_ranks = 1

        # Sort by (step, rank, row): each (step, rank) segment then
        # holds at most one spike per row, rows ascending.
        order = np.lexsort((rows, rank, step))
        inputs = inputs[order]
        modulation = modulation[order]
        rows_sorted = rows[order]
        segment_key = step[order] * np.int64(n_ranks) + rank[order]
        boundaries = np.searchsorted(
            segment_key, np.arange(n_steps * n_ranks + 1, dtype=np.int64)
        )
        return cls(
            inputs=inputs,
            modulation=modulation,
            rows=rows_sorted,
            boundaries=boundaries,
            n_steps=n_steps,
            n_ranks=n_ranks,
            batch=len(trains),
            n_inputs=n_inputs,
            duration=duration,
            uniform_modulation=bool(np.all(modulation == 1.0)),
        )


@dataclass
class BatchPresentationResult:
    """Vectorized counterpart of :class:`~repro.snn.network.PresentationResult`.

    Attributes:
        winners: (B,) first-firing neuron per image, -1 if none fired.
        winner_times: (B,) first firing time in ms, inf if none.
        final_potentials: (B, n_neurons) potentials at the end of the
            presentation.  Rows retired by an early-exit mask hold the
            potentials at retirement time; their readout uses the
            winner, so the stale values are never consulted.
        n_output_spikes: (B,) output spikes observed per image (only
            counts spikes emitted while the row was live).
    """

    winners: np.ndarray
    winner_times: np.ndarray
    final_potentials: np.ndarray
    n_output_spikes: np.ndarray

    def readouts(self) -> np.ndarray:
        """The paper's readout per row: first spiker, else max potential."""
        fallback = np.argmax(self.final_potentials, axis=1)
        return np.where(self.winners >= 0, self.winners, fallback)


def present_batch(
    network,
    batch: SpikeTrainBatch,
    stop_after_first_spike: bool = False,
    early_exit: bool = False,
) -> BatchPresentationResult:
    """Simulate B image presentations simultaneously on the 1 ms grid.

    Inference only (the trainer keeps the per-image path; STDP's
    sequential weight updates are inherently per-presentation).  With
    ``early_exit=True`` a row stops being simulated once its winner is
    known — valid for the first-spike readout, which never consults a
    fired row's later potentials.  ``stop_after_first_spike`` mirrors
    the per-image flag (the row's presentation *ends* at its first
    output spike).

    Every arithmetic step mirrors
    :meth:`repro.snn.network.SpikingNetwork.present` bit for bit; see
    the module docstring for the three mechanisms.
    """
    config = network.config
    if batch.n_inputs != config.n_inputs:
        raise SimulationError(
            f"batch has {batch.n_inputs} inputs, network expects {config.n_inputs}"
        )
    parameters = network.lif_parameters
    weights = network.weights
    weights_t = np.ascontiguousarray(weights.T)
    thresholds = network.thresholds[None, :]
    decay = parameters.decay_factor(1.0)
    n_neurons = config.n_neurons
    n_images = batch.batch
    n_ranks = batch.n_ranks
    boundaries = batch.boundaries

    potentials = np.zeros((n_images, n_neurons))
    refractory_until = np.full((n_images, n_neurons), -np.inf)
    inhibited_until = np.full((n_images, n_neurons), -np.inf)
    winners = np.full(n_images, -1, dtype=np.int64)
    winner_times = np.full(n_images, np.inf)
    n_output_spikes = np.zeros(n_images, dtype=np.int64)
    alive = np.ones(n_images, dtype=bool)
    alive_rows = alive[:, None]
    retire = stop_after_first_spike or early_exit
    row_index = np.arange(n_images)
    contributions = np.empty((n_images, n_neurons))
    # Preallocated mask buffers.  The step loop is overhead-bound at
    # serving batch sizes (B <= 64 on ~50 neurons), so per-step boolean
    # temporaries and `potentials[mask] op= x` gather/scatter copies
    # cost more than the arithmetic itself.  Masked in-place ufuncs
    # (`out=potentials, where=active`) perform *the same elementwise
    # operation on the same operand values* — bit-identity with the
    # per-image path is unaffected (pinned by tests/snn/test_batched.py
    # and the serving equivalence suite).
    active = np.empty((n_images, n_neurons), dtype=bool)
    scratch = np.empty((n_images, n_neurons), dtype=bool)
    eligible = np.empty((n_images, n_neurons), dtype=bool)

    for t in range(batch.n_steps):
        now = float(t)
        np.greater_equal(now, refractory_until, out=active)
        np.greater_equal(now, inhibited_until, out=scratch)
        np.logical_and(active, scratch, out=active)
        if retire:
            np.logical_and(active, alive_rows, out=active)
        np.multiply(potentials, decay, out=potentials, where=active)

        base = t * n_ranks
        if boundaries[base + n_ranks] > boundaries[base]:
            contributions[:] = 0.0
            for k in range(n_ranks):
                s0 = boundaries[base + k]
                s1 = boundaries[base + k + 1]
                if s1 == s0:
                    # Ranks are dense per step: no rank-k spikes means
                    # no rank-(k+1) spikes either.
                    break
                segment_rows = batch.rows[s0:s1]
                block = weights_t[batch.inputs[s0:s1]]
                if not batch.uniform_modulation:
                    block = block * batch.modulation[s0:s1][:, None]
                # One spike per row within a (step, rank) segment, so a
                # plain fancy-index add is a correct (and sequential-
                # order-preserving) scatter.
                contributions[segment_rows] += block
            np.add(potentials, contributions, out=potentials, where=active)

        np.greater_equal(potentials, thresholds, out=eligible)
        np.logical_and(eligible, active, out=eligible)
        if not eligible.any():
            continue
        overshoot = np.where(eligible, potentials - thresholds, -np.inf)
        winning_neuron = np.argmax(overshoot, axis=1)
        fired_rows = np.flatnonzero(
            overshoot[row_index, winning_neuron] > -np.inf
        )
        if not fired_rows.size:
            continue
        fired_neurons = winning_neuron[fired_rows]
        first_time = fired_rows[winners[fired_rows] < 0]
        winners[first_time] = winning_neuron[first_time]
        winner_times[first_time] = now
        n_output_spikes[fired_rows] += 1

        potentials[fired_rows, fired_neurons] = 0.0
        refractory_until[fired_rows, fired_neurons] = now + parameters.t_refrac
        saved = inhibited_until[fired_rows, fired_neurons].copy()
        inhibited_until[fired_rows] = np.maximum(
            inhibited_until[fired_rows], now + parameters.t_inhibit
        )
        inhibited_until[fired_rows, fired_neurons] = saved

        if stop_after_first_spike:
            alive[fired_rows] = False
        elif early_exit:
            alive[first_time] = False
        if retire and not alive.any():
            break

    return BatchPresentationResult(
        winners=winners,
        winner_times=winner_times,
        final_potentials=potentials,
        n_output_spikes=n_output_spikes,
    )


def encode_indexed(
    network,
    images: np.ndarray,
    indices: Sequence[int],
    seed: SeedLike = None,
    stream: str = TEST_SPIKE_STREAM,
) -> List[SpikeTrain]:
    """Encode images with the per-index child-RNG scheme.

    Image ``indices[j]`` is encoded with
    ``child_rng(seed, stream, indices[j])`` — independent of batch
    composition — and passed through the network's fault injector (in
    index order, preserving the injector's stream semantics).
    """
    seed = network.config.seed if seed is None else seed
    trains = []
    for index, image in zip(indices, images):
        train = network.coder.encode(
            image, rng=child_rng(seed, stream, int(index))
        )
        if network.fault_injector is not None:
            train = network.fault_injector.corrupt_spike_train(train, "snnwt")
        trains.append(train)
    return trains


def encode_shared(
    network, images: np.ndarray, rng: np.random.Generator
) -> List[SpikeTrain]:
    """Encode images consuming one shared generator sequentially.

    Matches the legacy per-image loops (e.g. the labeling pass) that
    thread a single RNG through consecutive presentations, so batching
    the *simulation* does not change which spike trains are drawn.
    """
    trains = []
    for image in images:
        train = network.coder.encode(image, rng=rng)
        if network.fault_injector is not None:
            train = network.fault_injector.corrupt_spike_train(train, "snnwt")
        trains.append(train)
    return trains


def batch_winners(
    network,
    trains: Sequence[SpikeTrain],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> np.ndarray:
    """First-spike/max-potential readout winners for a list of trains."""
    if batch_size < 1:
        raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
    winners = np.empty(len(trains), dtype=np.int64)
    for start in range(0, len(trains), batch_size):
        chunk = trains[start : start + batch_size]
        result = present_batch(
            network, SpikeTrainBatch.from_trains(chunk), early_exit=True
        )
        winners[start : start + len(chunk)] = result.readouts()
    return winners


def predict_batch(
    network,
    images: np.ndarray,
    indices: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    stream: str = TEST_SPIKE_STREAM,
) -> np.ndarray:
    """Batched counterpart of :meth:`SpikingNetwork.predict_image`.

    Returns per-image class labels through the network's neuron-label
    map.  ``indices`` defaults to ``0..B-1`` (dataset order); pass
    explicit indices when predicting a shard of a larger set so the
    per-image RNG streams still line up with whole-set evaluation.
    """
    from ..core.errors import TrainingError  # mirrors predict_image

    if network.neuron_labels is None:
        raise TrainingError("network has no neuron labels; run a labeling pass")
    images = np.atleast_2d(images)
    if indices is None:
        indices = range(images.shape[0])
    trains = encode_indexed(network, images, indices, seed=seed, stream=stream)
    winners = batch_winners(network, trains, batch_size=batch_size)
    return np.asarray(network.neuron_labels)[winners]
