"""The single-layer winner-takes-all spiking network (paper Section 2.2).

Topology: one layer of LIF neurons, each connected to all inputs by
excitatory synapses; lateral inhibitory connections among neurons
produce winner-takes-all dynamics (emulated, as in the paper's
hardware, by the firing neuron inhibiting all others).  The readout
"considers the first neuron which spikes as the winner", which the
paper notes achieves some of the best machine-learning results with
SNNs and maps densely to hardware.

Simulation runs on a 1 ms grid — the same granularity as the paper's
SNNwt hardware, where one clock cycle models one millisecond — using
the analytical exponential leak between steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.config import SNNConfig
from ..core.errors import TrainingError
from ..core.metrics import EvaluationResult, evaluate
from ..core.rng import SeedLike, child_rng, make_rng
from ..core.timing import phase
from ..datasets.base import Dataset
from .batched import (
    DEFAULT_BATCH_SIZE,
    TEST_SPIKE_STREAM,
    batch_winners,
    encode_shared,
    gather_contribution,
    predict_batch,
)
from .coding import PoissonCoder, SpikeCoder, SpikeTrain
from .homeostasis import HomeostasisController
from .labeling import NeuronLabeler
from .lif import LIFParameters, LIFPopulation
from .stdp import STDPRule


@dataclass
class PresentationResult:
    """Outcome of presenting one image to the network."""

    winner: int                      # first neuron to fire, or -1
    winner_time: float               # firing time in ms, or inf
    output_spikes: List[Tuple[float, int]] = field(default_factory=list)
    final_potentials: Optional[np.ndarray] = None

    @property
    def n_output_spikes(self) -> int:
        return len(self.output_spikes)

    def readout(self) -> int:
        """The paper's readout: first spiker wins; if no neuron fired,
        fall back to the highest final potential (the potential is
        "highly correlated to the number of output spikes",
        Section 4.2.2)."""
        if self.winner >= 0:
            return self.winner
        if self.final_potentials is None or not self.final_potentials.size:
            return -1
        return int(np.argmax(self.final_potentials))


class SpikingNetwork:
    """Single-layer LIF network with WTA inhibition, STDP and homeostasis.

    Weights are float in [0, w_max] (trained with the +-1 constant-step
    STDP rule, so they stay on the 8-bit integer grid the hardware
    stores).  ``neuron_labels`` is filled by the labeling pass and maps
    each neuron to its class (or -1 if it never won).
    """

    def __init__(self, config: SNNConfig, coder: Optional[SpikeCoder] = None):
        config.validate()
        self.config = config
        self.coder = coder or PoissonCoder(
            duration=config.t_period, max_rate_interval=config.min_spike_interval
        )
        self.lif_parameters = LIFParameters(
            t_leak=config.t_leak,
            t_inhibit=config.t_inhibit,
            t_refrac=config.t_refrac,
        )
        self.population = LIFPopulation(
            config.n_neurons, self.lif_parameters, config.initial_threshold
        )
        self.stdp = STDPRule(
            t_ltp=config.t_ltp,
            ltp_step=config.stdp_ltp,
            ltd_step=config.stdp_ltd,
            w_min=1.0,  # a zero row could never reach threshold again
            w_max=float(config.w_max),
            soft=config.stdp_soft,
            beta=config.stdp_beta,
        )
        self.homeostasis = HomeostasisController(
            n_neurons=config.n_neurons,
            epoch_ms=config.homeo_epoch,
            activity_threshold=config.homeo_threshold,
            rate=config.homeo_rate,
        )
        rng = child_rng(config.seed, "snn-init")
        # Mid-range random initial weights, as in memristive-SNN practice.
        self.weights = rng.uniform(
            0.3 * config.w_max, 0.8 * config.w_max,
            size=(config.n_neurons, config.n_inputs),
        )
        self.neuron_labels: Optional[np.ndarray] = None
        #: Optional :class:`repro.faults.FaultInjector` corrupting the
        #: input spike fabric per presentation (set by
        #: :func:`repro.faults.apply.corrupt_spiking_network`; ``None``
        #: keeps the encode->present path untouched).
        self.fault_injector = None

    @property
    def thresholds(self) -> np.ndarray:
        return self.population.thresholds

    def present(
        self,
        train: SpikeTrain,
        learn: bool = False,
        stop_after_first_spike: bool = False,
        ltp_probabilities: Optional[np.ndarray] = None,
    ) -> PresentationResult:
        """Simulate one image presentation on the 1 ms grid.

        With ``learn=True`` the STDP rule updates the firing neuron's
        weights at each output spike and homeostasis activity is
        recorded; the homeostasis clock advances by the presentation
        duration at the end.

        ``stop_after_first_spike=True`` ends the presentation at the
        first output spike — the operating point the paper's
        homeostasis converges to ("overall, only one neuron can fire
        for a given input image, making the readout both trivial and
        fast"), which the trainer enforces directly so that scaled-down
        runs start at that equilibrium instead of spending tens of
        thousands of presentations finding it.

        ``ltp_probabilities`` (per-input probability of a spike inside
        the LTP window) switches learning to the variance-reduced
        expected-STDP update; see :meth:`STDPRule.expected_apply`.
        """
        population = self.population
        population.reset_for_presentation()
        decay = self.lif_parameters.decay_factor(1.0)
        last_pre = np.full(self.config.n_inputs, -np.inf)
        result = PresentationResult(winner=-1, winner_time=np.inf)
        for t, (inputs, modulation) in enumerate(train.steps_weighted(1.0)):
            active = population.active_mask(float(t))
            population.potentials[active] *= decay
            if inputs.size:
                last_pre[inputs] = float(t)
                # Shared sequential-accumulation primitive: guarantees
                # the batched engine (repro.snn.batched) adds the same
                # spike contributions in the same order, bit for bit.
                contribution = gather_contribution(self.weights, inputs, modulation)
                population.potentials[active] += contribution[active]
            fired = population.fired(active)
            if fired.size:
                # If several cross threshold in the same ms, the one with
                # the largest overshoot fires first (sub-ms resolution).
                overshoot = population.potentials[fired] - population.thresholds[fired]
                neuron = int(fired[int(np.argmax(overshoot))])
                if result.winner < 0:
                    result.winner = neuron
                    result.winner_time = float(t)
                result.output_spikes.append((float(t), neuron))
                if learn:
                    if ltp_probabilities is not None:
                        self.stdp.expected_apply(
                            self.weights[neuron], ltp_probabilities
                        )
                    else:
                        self.stdp.apply(self.weights[neuron], last_pre, float(t))
                    self.homeostasis.record_firing(neuron)
                population.fire(neuron, float(t))
                if stop_after_first_spike:
                    break
        result.final_potentials = population.potentials.copy()
        if learn:
            self.homeostasis.advance(train.duration, population.thresholds)
        return result

    def ltp_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Per-pixel probability of a spike inside the LTP window.

        For rate coding with mean inter-spike interval I(p), the most
        recent spike falls within the t_ltp window before a (late)
        firing time with probability q = 1 - exp(-t_ltp / I(p)).
        """
        from .coding import mean_interval  # local import avoids a cycle

        intervals = mean_interval(
            np.asarray(image).ravel(), self.config.min_spike_interval
        )
        return 1.0 - np.exp(-self.config.t_ltp / intervals)

    def present_image(
        self,
        image: np.ndarray,
        learn: bool = False,
        rng: SeedLike = None,
        stop_after_first_spike: bool = False,
    ) -> PresentationResult:
        """Encode an 8-bit image with the network's coder and present it.

        When learning with ``stdp_mode="expected"`` (the config
        default), the variance-reduced update is used; "sampled" runs
        the literal spike-sampled rule.
        """
        train = self.coder.encode(image, rng=make_rng(rng))
        if self.fault_injector is not None:
            train = self.fault_injector.corrupt_spike_train(train, "snnwt")
        probabilities = None
        if learn and self.config.stdp_mode == "expected" and self.coder.rate_coded:
            probabilities = self.ltp_probabilities(image)
        return self.present(
            train,
            learn=learn,
            stop_after_first_spike=stop_after_first_spike,
            ltp_probabilities=probabilities,
        )

    def predict_image(self, image: np.ndarray, rng: SeedLike = None) -> int:
        """Predict the class of one image via the labeled winner neuron."""
        if self.neuron_labels is None:
            raise TrainingError("network has no neuron labels; run a labeling pass")
        winner = self.present_image(image, learn=False, rng=rng).readout()
        if winner < 0:
            return -1
        return int(self.neuron_labels[winner])

    def initialize_prototype_weights(
        self, images: np.ndarray, rng: SeedLike = None
    ) -> None:
        """Initialize receptive fields from sample (unlabeled) images.

        Each neuron's weights become an affine map of one randomly
        drawn training image plus noise — the standard prototype
        initialization of competitive learning.  The paper's full-scale
        runs bootstrap cluster structure from uniform random weights
        over millions of presentations; a scaled-down run has to start
        from prototypes or the pattern-dependent part of the potential
        (<1% of its mean) stays buried under homeostasis adjustments.
        Uses only unlabeled images, so training stays unsupervised.
        """
        rng = make_rng(rng)
        images = np.atleast_2d(images)
        if images.shape[1] != self.config.n_inputs:
            raise TrainingError(
                f"expected {self.config.n_inputs}-pixel images, got {images.shape[1]}"
            )
        idx = rng.choice(
            images.shape[0],
            size=self.config.n_neurons,
            replace=images.shape[0] < self.config.n_neurons,
        )
        base = images[idx].astype(np.float64) / 255.0
        w_max = float(self.config.w_max)
        noise = rng.normal(0.0, 0.04 * w_max, size=self.weights.shape)
        self.weights = np.clip(w_max * (0.15 + 0.6 * base) + noise, 1.0, w_max)

    def calibrate_thresholds(self, images: np.ndarray, factor: float = 0.7) -> None:
        """Set initial firing thresholds near the WTA equilibrium.

        The paper's fixed initial threshold (w_max * 70, Table 1) is
        tuned for full-scale runs where homeostasis has hundreds of
        epochs to find the operating point at which "only one neuron
        can fire for a given input image".  Scaled-down runs cannot
        afford that burn-in, so this sets each neuron's threshold to
        ``factor`` times its *expected full-presentation potential*
        (expected spike counts x weights, corrected for the average
        exponential leak), from which homeostasis fine-tunes.

        Uses only unlabeled training images, so the procedure remains
        unsupervised.  The expected spike counts come from the
        network's own coder (temporal coders emit far fewer spikes
        than rate coders, so calibrating on the rate law would leave
        their thresholds unreachably high).
        """
        images = np.atleast_2d(images)
        rng = child_rng(self.config.seed, "snn-calibrate")
        # encode_batch consumes the calibration stream exactly like the
        # historical per-image encode loop (its documented contract),
        # so thresholds are unchanged by the batching.
        counts = np.stack(
            [
                train.weighted_counts()
                for train in self.coder.encode_batch(images, rng=rng)
            ]
        ).astype(np.float64)
        # Spikes arrive spread over the presentation; a spike at time t
        # retains exp(-(T-t)/tau) of its weight at readout time T.  The
        # uniform-arrival average of that factor:
        tau, period = self.config.t_leak, self.config.t_period
        leak_correction = tau / period * (1.0 - np.exp(-period / tau))
        potentials = counts @ self.weights.T * leak_correction
        self.population.thresholds[:] = np.maximum(
            factor * potentials.mean(axis=0), 1.0
        )

    def equalize_thresholds(self) -> None:
        """Rescale every neuron so all firing thresholds are equal.

        First-spike dynamics are invariant under jointly scaling a
        neuron's weights and threshold by the same factor, so after
        training each neuron j is rescaled by (target / threshold_j),
        with the common target chosen so the largest weight lands at
        w_max (preserving 8-bit representability).  This makes the raw
        potentials directly comparable across neurons — which is what
        the SNNwot hardware's MAX readout (Figure 7) compares — without
        changing the timed network's behaviour.
        """
        thresholds = self.population.thresholds
        scale = 1.0 / thresholds
        candidate = self.weights * scale[:, None]
        peak = candidate.max()
        if peak <= 0:
            raise TrainingError("cannot equalize thresholds of a zero network")
        target = float(self.config.w_max) / peak
        self.weights = np.clip(candidate * target, 0.0, self.config.w_max)
        self.population.thresholds[:] = target

    def receptive_fields(self) -> np.ndarray:
        """Weights reshaped to (n_neurons, side, side) when inputs are square."""
        side = int(round(self.config.n_inputs**0.5))
        if side * side != self.config.n_inputs:
            raise TrainingError("inputs are not a square image")
        return self.weights.reshape(self.config.n_neurons, side, side)


class SNNTrainer:
    """Drives STDP training, the labeling pass and evaluation.

    The default pipeline adapts the paper's procedure to scaled-down
    datasets (the paper trains on 60,000 MNIST images for tens of
    epochs; see each method's docstring for why the corresponding
    adaptation is needed and why it preserves the model):

    1. prototype weight initialization from unlabeled images;
    2. threshold calibration near the one-spike-per-image equilibrium;
    3. STDP with a per-image "conscience" homeostasis schedule
       (the paper's rule with a one-image epoch and an asymmetric
       down-rate, whose fixed point is the same balanced win rate);
    4. threshold equalization, then the self-labeling pass.

    Args:
        network: the network to train in place.
        homeo_images: homeostasis epoch in *images* (the paper's
            1,500,000 ms epoch is 3,000 images at 500 ms).  Default 1
            (conscience mode); pass the config schedule via
            ``homeo_images=None, conscience=False`` for a paper-exact
            large-scale schedule.
        conscience: use the asymmetric per-win balancing (default).
    """

    def __init__(
        self,
        network: SpikingNetwork,
        homeo_images: Optional[int] = 1,
        conscience: bool = True,
    ):
        self.network = network
        config = network.config
        homeostasis = network.homeostasis
        if homeo_images is not None:
            if homeo_images < 1:
                raise TrainingError(f"homeo_images must be >= 1, got {homeo_images}")
            homeostasis.epoch_ms = homeo_images * config.t_period
            # Table 1's own scaling: threshold = 3 * #images / #N keeps
            # the target population firing rate at ~3 spikes per image.
            homeostasis.activity_threshold = max(
                3.0 * homeo_images / config.n_neurons, 0.5
            )
        if conscience:
            # Asymmetric rates: a win costs +rate, a loss refunds
            # rate/(N-1), so thresholds are stationary exactly when
            # every neuron wins 1/N of the images — the operating point
            # the paper's symmetric long-epoch schedule converges to.
            homeostasis.down_rate = homeostasis.rate / max(config.n_neurons - 1, 1)

    def train(
        self,
        dataset: Dataset,
        epochs: Optional[int] = None,
        initialize: bool = True,
        calibrate: bool = True,
        engine: str = "fused",
    ) -> None:
        """Unsupervised STDP pass(es) over the training images.

        ``initialize``/``calibrate`` control the prototype weight
        initialization and threshold calibration pre-steps (see
        :class:`SNNTrainer`); both use only unlabeled images.

        ``engine`` selects the presentation kernel: ``"fused"`` (the
        default) runs the vectorized
        :class:`~repro.snn.training.FusedSTDPEngine`, ``"serial"``
        runs the historical per-image / per-timestep loop.  Both
        consume the same shared ``child_rng(seed, "snn-train-spikes")``
        stream and produce **bit-identical** weights, thresholds and
        homeostasis state (``tests/snn/test_training_fused.py``); the
        serial path is kept as the oracle, reachable directly through
        :meth:`train_serial`.
        """
        if engine not in ("fused", "serial"):
            raise TrainingError(
                f"unknown training engine {engine!r}; use 'fused' or 'serial'"
            )
        config = self.network.config
        if epochs is None:
            epochs = config.epochs
        sample = dataset.images[: min(len(dataset), 500)]
        if initialize:
            self.network.initialize_prototype_weights(
                sample, rng=child_rng(config.seed, "snn-prototypes")
            )
        if calibrate:
            self.network.calibrate_thresholds(sample[:200])
        rng = child_rng(config.seed, "snn-train-spikes")
        fused = None
        if engine == "fused":
            from .training import FusedSTDPEngine  # local: avoids eager import

            fused = FusedSTDPEngine(self.network)
        for epoch in range(epochs):
            order = child_rng(config.seed, f"snn-train-order-{epoch}").permutation(
                len(dataset)
            )
            if fused is not None:
                fused.learn_images(dataset.images[order], rng)
                continue
            for index in order:
                self.network.present_image(
                    dataset.images[index],
                    learn=True,
                    rng=rng,
                    stop_after_first_spike=True,
                )

    def train_serial(
        self,
        dataset: Dataset,
        epochs: Optional[int] = None,
        initialize: bool = True,
        calibrate: bool = True,
    ) -> None:
        """Per-image reference oracle for :meth:`train`.

        Runs the historical presentation loop one image and one
        millisecond at a time; kept as the ground truth the fused
        engine is tested against (``tests/snn/test_training_fused.py``),
        mirroring the :meth:`predict_serial` precedent.
        """
        self.train(
            dataset,
            epochs=epochs,
            initialize=initialize,
            calibrate=calibrate,
            engine="serial",
        )

    def label(
        self, dataset: Dataset, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> NeuronLabeler:
        """Self-labeling pass (Section 2.2): tag neurons by win counts.

        Spike trains are drawn from the same shared
        ``child_rng(seed, "snn-label-spikes")`` stream, consumed in
        dataset order, as the historical per-image loop — so batching
        the *simulation* leaves the labeling outcome bit-identical.
        """
        config = self.network.config
        labeler = NeuronLabeler(config.n_neurons, config.n_labels)
        rng = child_rng(config.seed, "snn-label-spikes")
        trains = encode_shared(self.network, dataset.images, rng)
        winners = batch_winners(self.network, trains, batch_size=batch_size)
        for winner, label in zip(winners, dataset.labels):
            labeler.record(int(winner), int(label))
        self.network.neuron_labels = labeler.labels()
        return labeler

    def fit(self, dataset: Dataset, epochs: Optional[int] = None) -> NeuronLabeler:
        """Train, equalize thresholds, then label.

        Threshold equalization (a pure per-neuron rescaling that leaves
        first-spike behaviour unchanged) happens between training and
        labeling so the labeling pass sees the deployed network.
        """
        self.train(dataset, epochs=epochs)
        self.network.equalize_thresholds()
        return self.label(dataset)

    def predict(
        self,
        dataset: Dataset,
        batch_size: int = DEFAULT_BATCH_SIZE,
        engine: str = "plan",
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Predictions for every sample of a dataset (batched engine).

        Each image ``i`` is encoded with the per-image generator
        ``child_rng(seed, "snn-test-spikes", i)``, so predictions
        depend only on ``(seed, i)`` — not on evaluation order, batch
        size or worker count — and are bit-identical to
        :meth:`predict_serial` at every ``batch_size``.

        ``engine="plan"`` (default) routes through the compiled
        execution IR (:mod:`repro.ir`) — same spike streams, same
        batched simulator, plus a content-addressed cache of the
        encoded dataset so repeated evaluation skips re-encoding.
        ``engine="legacy"`` calls :func:`predict_batch` directly; both
        are bit-identical to :meth:`predict_serial`.  A network with a
        live fault injector falls back to legacy automatically (plans
        compile only clean models).

        ``backend`` picks the plan-execution backend by registry name
        (``repro.ir.backends``; ``None`` follows the
        ``REPRO_IR_BACKEND``-then-default precedence).  Every backend
        is bit-identical on this plan kind, so the choice only affects
        speed.  Unknown names raise
        :class:`~repro.core.errors.BackendError`; ``engine="legacy"``
        ignores the backend (there is no plan to execute).

        .. note:: Before the batched engine, this method consumed one
           shared generator sequentially, which coupled every
           prediction to evaluation order.  The per-image scheme is an
           intentional one-time change to the expected spike streams
           (accuracy fixtures are tolerance-based and unaffected).
        """
        if engine not in ("plan", "legacy"):
            raise TrainingError(
                f"unknown predict engine {engine!r}; use 'plan' or 'legacy'"
            )
        if engine == "plan":
            from ..core.errors import CompileError
            from ..ir import compile_model, run_plan
            from ..ir.plan_cache import context_for

            try:
                # Compile fresh (not via the plan memo): a trainer may
                # keep mutating this network in place between predicts,
                # and plan consts are snapshots.  Compilation is cheap;
                # the expensive encoded-dataset cache is keyed by
                # content, not by plan object, so it still hits.
                plan = compile_model(self.network, kind="snnwt")
            except CompileError:
                pass  # live fault injector: simulate the faulty network
            else:
                ctx = context_for(plan, dataset.images, warm=True)
                return run_plan(
                    plan,
                    dataset.images,
                    indices=list(range(len(dataset))),
                    ctx=ctx,
                    backend=backend,
                )
        return predict_batch(
            self.network, dataset.images, batch_size=batch_size
        )

    def predict_serial(self, dataset: Dataset) -> np.ndarray:
        """Per-image reference oracle for :meth:`predict`.

        Simulates one image at a time with the same per-image RNG
        scheme; kept as the ground truth the batched engine is tested
        against (``tests/snn/test_batched.py``).
        """
        config = self.network.config
        return np.array(
            [
                self.network.predict_image(
                    image, rng=child_rng(config.seed, TEST_SPIKE_STREAM, index)
                )
                for index, image in enumerate(dataset.images)
            ]
        )

    def evaluate(
        self,
        dataset: Dataset,
        batch_size: int = DEFAULT_BATCH_SIZE,
        engine: str = "plan",
        backend: Optional[str] = None,
    ) -> EvaluationResult:
        """Accuracy bundle on a test set."""
        with phase("eval"):
            predictions = self.predict(
                dataset, batch_size=batch_size, engine=engine,
                backend=backend,
            )
            return evaluate(predictions, dataset.labels, dataset.n_classes)


def train_snn(
    config: SNNConfig,
    train_set: Dataset,
    coder: Optional[SpikeCoder] = None,
    epochs: Optional[int] = None,
    homeo_images: Optional[int] = 1,
) -> SpikingNetwork:
    """Convenience: build, STDP-train and label a network."""
    network = SpikingNetwork(config, coder=coder)
    trainer = SNNTrainer(network, homeo_images=homeo_images)
    trainer.fit(train_set, epochs=epochs)
    return network


def evaluate_snn(network: SpikingNetwork, test_set: Dataset) -> EvaluationResult:
    """Evaluate a trained, labeled network on a test set."""
    return SNNTrainer(network).evaluate(test_set)
