"""Fused STDP presentation/training engine (the vectorized cold path).

PR 2 made *inference* fast (:mod:`repro.snn.batched`); this module
applies the same discipline to unsupervised STDP **training**, the
remaining per-image / per-timestep / per-spike Python hot loop that
dominates a cold (cache-miss) reproduction run.  The serial path —
:meth:`repro.snn.network.SpikingNetwork.present` driven by
:meth:`SNNTrainer.train_serial` — stays in place as the oracle; this
engine produces **bit-identical weights, thresholds, homeostasis
state and labels** (asserted by ``tests/snn/test_training_fused.py``).

Why training cannot be batched across images
--------------------------------------------
STDP updates the winning neuron's weight row after every presentation,
and the trainer's per-image "conscience" homeostasis updates *all*
thresholds between presentations — image ``i+1``'s dynamics depend on
image ``i``'s outcome.  So unlike inference, presentations must stay
sequential.  What *can* be fused:

1. **Batched spike encoding.**  All RNG draws for a chunk of images
   are folded into one generator call
   (:meth:`SpikeCoder.encode_batch`); a single ``(B, ...)``-shaped
   NumPy draw fills rows in the same stream order as ``B`` successive
   per-image draws, so the shared ``child_rng(seed,
   "snn-train-spikes")`` stream advances identically.
2. **Precomputed per-step contributions.**  Each presentation's
   per-step input drive ``C[t]`` is built once by a rank-layer
   scatter: spikes are already (step)-sorted, the ``k``-th spike of
   every step is added in one vectorized fancy-index add, and doing
   the ranks in order reproduces the strict left-fold of the shared
   :func:`repro.snn.batched.gather_contribution` primitive bit for
   bit (``np.add.reduce`` over the outer axis; the scatter's extra
   leading ``0.0 + x`` is exact for the non-negative weight rows).
3. **A lean integration scan.**  With ``stop_after_first_spike=True``
   (the trainer's invariant operating point) every neuron stays
   active until the presentation's single output spike, so the serial
   loop's masked operations reduce to whole-array ones
   (``v[all-true] *= d`` is bitwise ``v *= d``) and the per-step
   recurrence is exactly ``v[t] = round(v[t-1] * d) + C[t]`` — a
   first-order IIR filter.  When SciPy is importable the whole
   trajectory is produced by one ``scipy.signal.lfilter([1], [1, -d])``
   call: direct-form-II-transposed evaluates ``round(C[t] +
   round(d * v[t-1]))`` per step, and because IEEE-754 addition and
   multiplication are commutative bit for bit, every intermediate
   rounding matches the serial loop (property-tested in
   ``tests/snn/test_training_fused.py``).  The first row of the exact
   trajectory that crosses a threshold *is* the serial loop's firing
   step, so firing detection is a vectorized comparison.
4. **Gated fire checks (SciPy-free fallback).**  Without SciPy the
   scan stays a Python loop, but contributions and the leak are
   non-negative with decay ``<= 1``, so the decay-free running sum
   ``U[t] = sum(C[:t+1])`` bounds every potential from above; steps
   where no ``U[t]`` reaches its threshold cannot fire and skip the
   threshold comparison entirely.  (The serial path's comparison is
   executed verbatim on the steps that remain, so the first firing
   step, winning neuron and overshoot tie-break are unchanged.)

The filter path computes the *true* potential trajectory, so it needs
no sign preconditions.  The fallback loop's upper bound does: whenever
one fails there (negative weights from a custom STDP floor, negative
decoder modulation, non-positive thresholds) the engine falls back to
the serial oracle for that presentation — slower, never wrong.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

try:  # SciPy is optional; the engine degrades to a gated Python scan.
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - exercised on SciPy-free installs
    _lfilter = None

from ..core.rng import SeedLike, make_rng
from .coding import SpikeTrain, mean_interval

#: Images encoded per fused chunk.  Bounds the batched RNG draw and
#: keeps the shared-stream consumption granular enough that callers
#: interleaving other work (e.g. the retention study's probes) can
#: window their presentations without changing any stream.
TRAIN_CHUNK = 64


class FusedSTDPEngine:
    """Vectorized learning presentations for one :class:`SpikingNetwork`.

    Reusable scratch buffers (potentials, ``last_pre``, the contiguous
    transposed weight matrix) are allocated once per engine; the
    transposed weights are kept in sync with STDP's row updates by
    writing back the single modified column after each firing.
    """

    def __init__(self, network):
        self.network = network
        config = network.config
        self._v = np.empty(config.n_neurons)
        self._last_pre = np.empty(config.n_inputs)
        self._decay = network.lif_parameters.decay_factor(1.0)
        self._filter_b = np.array([1.0])
        self._filter_a = np.array([1.0, -self._decay])
        self._wt: Optional[np.ndarray] = None
        self._wt_source: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Preconditions
    # ------------------------------------------------------------------
    def supported(self) -> bool:
        """True when the fused engine can run this network's presentations.

        The SciPy filter path computes exact potentials, so it is
        always safe.  The SciPy-free fallback additionally requires
        non-negative weights (guaranteed when the STDP floor
        ``w_min >= 0`` clamps every update) and strictly positive
        thresholds, so potentials can only *decrease* on spike-free
        steps and ``cumsum(C)`` bounds them from above.  Checked per
        chunk; a False verdict routes presentations through the serial
        oracle instead.
        """
        if _lfilter is not None:
            return True
        network = self.network
        if network.stdp.w_min < 0:
            return False
        if not np.all(network.population.thresholds > 0):
            return False
        if np.any(network.weights < 0):
            return False
        return True

    def _transposed_weights(self) -> np.ndarray:
        """Contiguous ``weights.T`` cache, rebuilt when the array is replaced."""
        weights = self.network.weights
        if self._wt is None or self._wt_source is not weights:
            self._wt = np.ascontiguousarray(weights.T)
            self._wt_source = weights
        return self._wt

    # ------------------------------------------------------------------
    # Chunked learning pass
    # ------------------------------------------------------------------
    def learn_images(self, images: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Present ``images`` in order with learning on; returns winners.

        Bit-identical to the serial loop ::

            for image in images:
                network.present_image(image, learn=True, rng=rng,
                                      stop_after_first_spike=True)

        including consumption of the shared ``rng`` stream and of the
        fault injector's spike-corruption stream (corruptions are
        applied per image, in presentation order, after encoding).
        """
        network = self.network
        rng = make_rng(rng)
        images = np.atleast_2d(np.asarray(images))
        winners = np.full(images.shape[0], -1, dtype=np.int64)
        expected = (
            network.config.stdp_mode == "expected" and network.coder.rate_coded
        )
        for start in range(0, images.shape[0], TRAIN_CHUNK):
            chunk = images[start : start + TRAIN_CHUNK]
            if not self.supported():
                # Serial oracle, image by image (same streams by contract).
                for offset, image in enumerate(chunk):
                    result = network.present_image(
                        image, learn=True, rng=rng, stop_after_first_spike=True
                    )
                    winners[start + offset] = result.winner
                continue
            trains = network.coder.encode_batch(chunk, rng=rng)
            if network.fault_injector is not None:
                trains = [
                    network.fault_injector.corrupt_spike_train(train, "snnwt")
                    for train in trains
                ]
            q_rows: Optional[np.ndarray] = None
            if expected:
                # Batched counterpart of SpikingNetwork.ltp_probabilities:
                # every operation is elementwise, so each row is
                # bit-identical to the per-image computation.
                intervals = mean_interval(
                    chunk, network.config.min_spike_interval
                )
                q_rows = 1.0 - np.exp(-network.config.t_ltp / intervals)
            for offset, train in enumerate(trains):
                q = q_rows[offset] if q_rows is not None else None
                winners[start + offset] = self.present_learn(train, q)
        return winners

    # ------------------------------------------------------------------
    # One fused learning presentation
    # ------------------------------------------------------------------
    def present_learn(
        self, train: SpikeTrain, ltp_probabilities: Optional[np.ndarray] = None
    ) -> int:
        """One learning presentation (``stop_after_first_spike`` semantics).

        Mirrors :meth:`SpikingNetwork.present` with ``learn=True``:
        same leak/integration arithmetic, same threshold comparison and
        overshoot tie-break, same STDP and homeostasis side effects —
        on the fused data layout.  Returns the winning neuron (-1 if
        none fired).
        """
        network = self.network
        config = network.config
        thresholds = network.population.thresholds
        modulation = train.modulation
        if _lfilter is None and np.any(modulation < 0):
            # Negative decoder attenuation breaks the fallback loop's
            # upper bound; run this presentation through the serial
            # oracle.  (The filter path is exact and keeps going.)
            return network.present(
                train,
                learn=True,
                stop_after_first_spike=True,
                ltp_probabilities=ltp_probabilities,
            ).winner
        homeostasis = network.homeostasis
        n_steps, step_idx = train.step_indices(1.0)
        inputs = train.inputs
        n_spikes = inputs.size
        if n_spikes == 0:
            if np.any(thresholds <= 0):
                # A zero potential crosses a non-positive threshold at
                # step 0; let the serial oracle arbitrate that edge.
                return network.present(
                    train,
                    learn=True,
                    stop_after_first_spike=True,
                    ltp_probabilities=ltp_probabilities,
                ).winner
            # No input spikes: potentials stay exactly 0 < thresholds,
            # nothing fires; only the homeostasis clock advances.
            homeostasis.advance(train.duration, thresholds)
            return -1
        if np.any(np.diff(step_idx) < 0):
            # Only reachable if the train was mutated post-init
            # (step_slices has the same defensive branch).
            return network.present(
                train,
                learn=True,
                stop_after_first_spike=True,
                ltp_probabilities=ltp_probabilities,
            ).winner

        boundaries = np.searchsorted(step_idx, np.arange(n_steps + 1))
        block = self._transposed_weights()[inputs]
        if not np.all(modulation == 1.0):
            block = block * modulation[:, None]

        # Per-step contributions, grouped by spike count: all steps with
        # exactly c spikes form one rectangular (m, c, n_neurons) gather
        # whose axis-1 ``np.add.reduce`` runs the same strided
        # sequential row fold as gather_contribution's axis-0 reduce
        # over each step's (c, n_neurons) slice (property-tested in the
        # fused-training suite), so every row of C carries the serial
        # path's exact rounding.  The k-th spike of a step sits at
        # ``boundaries[step] + k`` (spikes are step-sorted), so the
        # gather is a closed-form index expression — no per-image sort.
        n_neurons = config.n_neurons
        contributions = np.zeros((n_steps, n_neurons))
        counts = boundaries[1:] - boundaries[:-1]
        max_count = int(counts.max())
        starts = boundaries[:-1]
        if max_count == 1:
            contributions[step_idx] = block
        elif n_neurons >= 2:
            for c in np.unique(counts):
                if c == 0:
                    continue
                sel = np.flatnonzero(counts == c)
                if c == 1:
                    contributions[sel] = block[starts[sel]]
                else:
                    rows = block[starts[sel][:, None] + np.arange(c)]
                    contributions[sel] = np.add.reduce(rows, axis=1)
        else:
            # n_neurons == 1: the inner axis degenerates to contiguous
            # scalars where np.add.reduce switches to pairwise
            # summation, so fall back to rank layers (one spike of each
            # step per pass — a strict left fold by construction).
            for k in range(max_count):
                steps_k = np.flatnonzero(counts > k)
                contributions[steps_k] += block[starts[steps_k] + k]

        winner = -1
        if _lfilter is not None:
            # Exact trajectory in one C-level filter pass: DF2T applies
            # round(C[t] + round(d * v[t-1])) per step, bitwise equal to
            # the serial loop's round(round(v[t-1] * d) + C[t]) because
            # IEEE multiplication and addition are commutative.
            potentials = _lfilter(
                self._filter_b, self._filter_a, contributions, axis=0
            )
            crossed = potentials >= thresholds
            rows = np.flatnonzero(crossed.any(axis=1))
            if rows.size:
                t = int(rows[0])
                winner = self._fire(
                    t,
                    potentials[t],
                    thresholds,
                    np.flatnonzero(crossed[t]),
                    inputs,
                    step_idx,
                    boundaries,
                    ltp_probabilities,
                )
        else:
            # Decay-free running sums bound every potential from above
            # (contributions are non-negative by supported()); steps
            # where no neuron's bound reaches threshold cannot fire.
            upper = np.cumsum(contributions, axis=0)
            possible = np.any(upper >= thresholds[None, :], axis=1).tolist()
            has_spikes = (boundaries[1:] > boundaries[:-1]).tolist()
            decay = self._decay
            v = self._v
            v.fill(0.0)
            # Steps before the first spike leave v at exactly +0.0 (the
            # serial path multiplies zeros by the decay), so the scan
            # can start at the first spike step.
            for t in range(int(step_idx[0]), n_steps):
                v *= decay
                if has_spikes[t]:
                    v += contributions[t]
                if possible[t]:
                    # Two-stage check: the cheap any() gate decides
                    # exactly the same predicate as the serial path's
                    # flatnonzero(...).size (fired-set emptiness); the
                    # index set itself is only materialized on an
                    # actual firing.
                    if (v >= thresholds).any():
                        winner = self._fire(
                            t,
                            v,
                            thresholds,
                            np.flatnonzero(v >= thresholds),
                            inputs,
                            step_idx,
                            boundaries,
                            ltp_probabilities,
                        )
                        break
        homeostasis.advance(train.duration, thresholds)
        return winner

    def _fire(
        self,
        t: int,
        v: np.ndarray,
        thresholds: np.ndarray,
        fired: np.ndarray,
        inputs: np.ndarray,
        step_idx: np.ndarray,
        boundaries: np.ndarray,
        ltp_probabilities: Optional[np.ndarray],
    ) -> int:
        """Apply the serial path's firing side effects; returns the winner.

        Same overshoot tie-break, STDP update (sampled or expected) and
        homeostasis activity recording as :meth:`SpikingNetwork.present`
        at its single ``stop_after_first_spike`` output spike.
        """
        network = self.network
        stdp = network.stdp
        weights = network.weights
        overshoot = v[fired] - thresholds[fired]
        neuron = int(fired[int(np.argmax(overshoot))])
        if ltp_probabilities is not None:
            stdp.expected_apply(weights[neuron], ltp_probabilities)
        else:
            last_pre = self._last_pre
            last_pre.fill(-np.inf)
            upto = int(boundaries[t + 1])
            # Later duplicates win the fancy assignment, so each input
            # ends at its most recent step — exactly the serial loop's
            # per-step overwrite.
            last_pre[inputs[:upto]] = step_idx[:upto].astype(np.float64)
            stdp.apply(weights[neuron], last_pre, float(t))
        if self._wt is not None:
            self._wt[:, neuron] = weights[neuron]
        network.homeostasis.record_firing(neuron)
        return neuron


def learn_images_serial(network, images: np.ndarray, rng: SeedLike = None) -> List[int]:
    """Reference per-image loop matching :meth:`FusedSTDPEngine.learn_images`.

    Kept as an importable oracle for tests and benchmarks that compare
    the fused stream helper directly (the trainer-level oracle is
    :meth:`SNNTrainer.train_serial`).
    """
    rng = make_rng(rng)
    winners = []
    for image in np.atleast_2d(np.asarray(images)):
        result = network.present_image(
            image, learn=True, rng=rng, stop_after_first_spike=True
        )
        winners.append(result.winner)
    return winners
