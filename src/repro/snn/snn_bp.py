"""SNN trained with Back-Propagation (paper Section 3.2, "SNN+BP").

To isolate the learning algorithm from spike coding, the paper keeps
the SNN's feed-forward mode exactly as before (spike counts, threshold
dynamics) but, after each image presentation, computes the output
error and propagates it to the synaptic weights by gradient descent.
On MNIST this lifts accuracy from 91.82% (STDP) to 95.40% — most of
the SNN/MLP gap is the learning rule, not spike coding.

Realization: the network is the same single 784->N layer over the
spike-count representation.  Neurons are partitioned into equal-size
class groups (the supervised analogue of the labeling pass); the
forward pass computes potentials p = W @ counts, a softmax over
neurons gives firing probabilities, and the target distribution is
uniform over the true class's group.  The cross-entropy gradient for
this single layer is the delta rule the paper describes ("gradient
descent and weights updates" on the output error).  Prediction is the
class group of the highest-potential neuron — the same winner-readout
as SNNwot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import SNNConfig
from ..core.errors import TrainingError
from ..core.metrics import EvaluationResult, evaluate
from ..core.rng import child_rng
from ..core.timing import phase
from ..datasets.base import Dataset
from .coding import deterministic_counts_batch


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class BackPropSNN:
    """Single-layer spiking network trained supervised by gradient descent."""

    def __init__(self, config: SNNConfig, learning_rate: float = 0.5):
        config.validate()
        if config.n_neurons < config.n_labels:
            raise TrainingError(
                f"need at least one neuron per label: "
                f"{config.n_neurons} neurons < {config.n_labels} labels"
            )
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        self.config = config
        self.learning_rate = float(learning_rate)
        rng = child_rng(config.seed, "snnbp-init")
        self.weights = rng.normal(
            0.0, 0.01, size=(config.n_neurons, config.n_inputs)
        )
        # Round-robin class groups: neuron j serves class j % n_labels,
        # so every class owns ~n_neurons/n_labels neurons.
        self.neuron_labels = np.arange(config.n_neurons) % config.n_labels
        # Potential scale: normalize counts to [0, 1] so the softmax
        # temperature is stable across count magnitudes.
        self._count_scale = 1.0 / max(
            config.max_spikes_per_pixel, 1
        )

    def spike_counts(self, images: np.ndarray) -> np.ndarray:
        """(B, n_inputs) deterministic spike counts (SNNwot front end).

        Vectorized over the whole batch; bit-identical per row to the
        per-image converter (the conversion is elementwise).
        """
        images = np.atleast_2d(images)
        counts = deterministic_counts_batch(
            images,
            duration=self.config.t_period,
            max_rate_interval=self.config.min_spike_interval,
        )
        return counts.astype(np.float64) * self._count_scale

    def potentials(self, images: np.ndarray) -> np.ndarray:
        """(B, n_neurons) membrane potentials from counts."""
        return self.spike_counts(images) @ self.weights.T

    def _target_distribution(self, labels: np.ndarray) -> np.ndarray:
        """(B, n_neurons) uniform distribution over the true class group."""
        groups = self.neuron_labels[None, :] == np.asarray(labels)[:, None]
        return groups / groups.sum(axis=1, keepdims=True)

    def train_batch(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One gradient step; returns the batch cross-entropy loss."""
        counts = self.spike_counts(images)
        potentials = counts @ self.weights.T
        probabilities = _softmax(potentials)
        targets = self._target_distribution(labels)
        batch = counts.shape[0]
        # Softmax cross-entropy gradient: (p - t) @ counts.
        gradient = (probabilities - targets).T @ counts / batch
        self.weights -= self.learning_rate * gradient
        loss = -np.sum(targets * np.log(probabilities + 1e-12)) / batch
        return float(loss)

    def train(
        self, dataset: Dataset, epochs: int = 10, batch_size: int = 32
    ) -> list:
        """Epoch loop; returns per-epoch mean losses."""
        if epochs < 1:
            raise TrainingError(f"epochs must be >= 1, got {epochs}")
        rng = child_rng(self.config.seed, "snnbp-shuffle")
        losses = []
        for _epoch in range(epochs):
            order = rng.permutation(len(dataset))
            epoch_losses = []
            for start in range(0, len(dataset), batch_size):
                idx = order[start : start + batch_size]
                epoch_losses.append(
                    self.train_batch(dataset.images[idx], dataset.labels[idx])
                )
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Winner-neuron readout mapped through the class groups."""
        winners = np.argmax(self.potentials(images), axis=1)
        return self.neuron_labels[winners]

    def predict_dataset(self, dataset: Dataset) -> np.ndarray:
        return self.predict(dataset.images)

    def evaluate(self, dataset: Dataset) -> EvaluationResult:
        with phase("eval"):
            predictions = self.predict_dataset(dataset)
            return evaluate(predictions, dataset.labels, dataset.n_classes)


def train_snn_bp(
    config: SNNConfig,
    train_set: Dataset,
    epochs: int = 10,
    learning_rate: float = 0.5,
    batch_size: int = 32,
) -> BackPropSNN:
    """Convenience: build and train an SNN+BP model."""
    model = BackPropSNN(config, learning_rate=learning_rate)
    model.train(train_set, epochs=epochs, batch_size=batch_size)
    return model
