"""SNNwot — the SNN with timing information removed (Section 4.2.2).

The paper's simplified hardware variant: each pixel is converted into
a *number* of spikes (a 4-bit count, up to 10), not a timed train; the
leak plays no role; a neuron's potential is simply the weighted sum of
counts (computed in hardware by shifters + a Wallace adder tree); and
the winner is the neuron with the highest final potential (the
potential being "highly correlated to the number of output spikes").

Training still happens with the timed STDP process (the paper trains
once and deploys either forward path, generating "the same number of
spikes as for the STDP learning process ... to obtain consistent
forward-phase results"); SNNwot costs about 1% of accuracy versus
SNNwt in exchange for a 500x shorter evaluation (Table 7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import TrainingError
from ..core.metrics import EvaluationResult, evaluate
from ..datasets.base import Dataset
from .coding import deterministic_counts_batch
from .network import SpikingNetwork


class SNNWithoutTime:
    """Count-based forward path over an STDP-trained network's weights.

    ``injector`` (a :class:`repro.faults.FaultInjector`, duck-typed)
    optionally corrupts this substrate's own copy of the weight SRAM
    (bit flips / stuck-at), disables dead MAX-tree lanes, and — at
    inference time — drops/injects spikes on the 4-bit counts.  A
    ``None`` or null injector leaves the path bit-identical to the
    clean one (``self.weights`` *is* ``network.weights``).
    """

    def __init__(self, network: SpikingNetwork, injector=None):
        if network.neuron_labels is None:
            raise TrainingError(
                "SNNwot needs a trained, labeled network; run SNNTrainer.fit first"
            )
        self.network = network
        self.config = network.config
        self.weights = network.weights
        self.fault_injector = None
        self._inject_faults(injector)

    def _inject_faults(self, injector) -> None:
        if injector is None or injector.null:
            return
        self.weights = injector.corrupt_weights(self.network.weights, "snnwot")
        if self.weights is self.network.weights:  # no weight faults set
            self.weights = self.network.weights.copy()
        dead = injector.dead_neuron_mask(self.config.n_neurons, "snnwot")
        if dead.any():
            # A dead lane accumulates nothing; with non-negative weights
            # and counts it can never win the MAX readout.
            self.weights[dead] = 0.0
        if injector.config.affects_spikes:
            self.fault_injector = injector

    def spike_counts(self, images: np.ndarray) -> np.ndarray:
        """(B, n_inputs) 4-bit spike counts from the hardware converter.

        Computed for the whole batch in one vectorized pass
        (:func:`repro.snn.coding.deterministic_counts_batch`); the
        conversion is elementwise, so each row is bit-identical to the
        per-image :func:`~repro.snn.coding.deterministic_counts`.
        """
        images = np.atleast_2d(images)
        counts = deterministic_counts_batch(
            images,
            duration=self.config.t_period,
            max_rate_interval=self.config.min_spike_interval,
        )
        if self.fault_injector is not None:
            counts = self.fault_injector.corrupt_counts(
                counts, cap=self.config.max_spikes_per_pixel, stream="snnwot"
            )
        return counts

    def potentials(self, images: np.ndarray) -> np.ndarray:
        """(B, n_neurons) final potentials: weights x counts."""
        counts = self.spike_counts(images).astype(np.float64)
        return counts @ self.weights.T

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions: max-potential neuron's label per image."""
        winners = np.argmax(self.potentials(images), axis=1)
        labels = self.network.neuron_labels[winners]
        return labels

    def predict_dataset(self, dataset: Dataset) -> np.ndarray:
        return self.predict(dataset.images)

    def evaluate(self, dataset: Dataset) -> EvaluationResult:
        predictions = self.predict_dataset(dataset)
        return evaluate(predictions, dataset.labels, dataset.n_classes)


def relabel_for_counts(network: SpikingNetwork, train_set: Dataset) -> SNNWithoutTime:
    """Build an SNNwot whose neuron labels come from the count readout.

    The timing-free readout can crown different winners than the timed
    one, so labeling neurons *with the same readout used at test time*
    (still only using training images) is the consistent procedure.
    Returns the wrapped model with labels refreshed.
    """
    from .labeling import NeuronLabeler  # local import to avoid a cycle

    model = SNNWithoutTime.__new__(SNNWithoutTime)
    model.network = network
    model.config = network.config
    model.weights = network.weights
    model.fault_injector = None
    potentials = model.potentials(train_set.images)
    winners = np.argmax(potentials, axis=1)
    labeler = NeuronLabeler(network.config.n_neurons, network.config.n_labels)
    for winner, label in zip(winners, train_set.labels):
        labeler.record(int(winner), int(label))
    network.neuron_labels = labeler.labels()
    return SNNWithoutTime(network)
