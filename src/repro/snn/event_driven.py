"""Exact event-driven SNN simulation (paper Section 2.2).

The paper's efficiency insight: between two input spikes the membrane
potential obeys dv/dt + v/T_leak = 0, whose analytical solution
v(T2) = v(T1) * exp(-(T2-T1)/T_leak) removes the need for fine-grained
time stepping — "such an expression lends to a more efficient hardware
implementation".

:class:`repro.snn.network.SpikingNetwork` simulates on the hardware's
1-ms grid (one cycle per millisecond, like the SNNwt datapath).  This
module is the *exact* counterpart: spikes are processed at their real-
valued times, potentials decay analytically between consecutive event
groups, and refractory/inhibition windows use exact deadlines.  On
integer spike times the two simulators agree exactly; on fractional
times the event-driven result is the reference the grid approximates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import SimulationError
from .batched import SpikeTrainBatch, gather_contribution, present_batch
from .coding import SpikeTrain
from .network import PresentationResult, SpikingNetwork


def present_event_driven(
    network: SpikingNetwork,
    train: SpikeTrain,
    stop_after_first_spike: bool = False,
    time_tolerance: float = 1e-9,
) -> PresentationResult:
    """Run one presentation with exact event-driven dynamics.

    Spikes sharing a timestamp (within ``time_tolerance``) form one
    event group — they arrive simultaneously, as in the network's
    step-based simulation.  Learning is not supported here (the
    trainer uses the grid simulator, matching the hardware); this is
    the high-fidelity inference/validation path.
    """
    config = network.config
    if train.n_inputs != config.n_inputs:
        raise SimulationError(
            f"train has {train.n_inputs} inputs, network expects {config.n_inputs}"
        )
    parameters = network.lif_parameters
    potentials = np.zeros(config.n_neurons)
    thresholds = network.thresholds
    refractory_until = np.full(config.n_neurons, -np.inf)
    inhibited_until = np.full(config.n_neurons, -np.inf)
    result = PresentationResult(winner=-1, winner_time=np.inf)

    times = train.times
    inputs = train.inputs
    modulation = train.modulation
    last_time = 0.0
    index = 0
    n_spikes = times.size
    # A neuron frozen above its threshold fires the instant it thaws,
    # so inhibition/refractory expiries are events too (the 1-ms grid
    # gets this for free by re-checking every step).
    wake_times: list = []
    stop = False
    while not stop:
        next_spike = float(times[index]) if index < n_spikes else np.inf
        wake_times = [w for w in wake_times if w > last_time + time_tolerance]
        next_wake = min(wake_times) if wake_times else np.inf
        now = min(next_spike, next_wake)
        if not np.isfinite(now) or now >= train.duration:
            break

        group_inputs = inputs[0:0]
        group_modulation = modulation[0:0]
        if next_spike <= now + time_tolerance:
            end = index
            while end < n_spikes and times[end] - next_spike <= time_tolerance:
                end += 1
            group_inputs = inputs[index:end]
            group_modulation = modulation[index:end]
            index = end

        # Analytical decay over the exact inter-event gap.  Frozen
        # neurons "do not modify their potential" (Section 4.4), so a
        # neuron's effective decay time excludes whatever part of the
        # gap it spent refractory/inhibited.
        gap = now - last_time
        if gap > 0:
            frozen_until = np.maximum(refractory_until, inhibited_until)
            frozen_overlap = np.clip(
                np.minimum(frozen_until, now) - last_time, 0.0, gap
            )
            potentials *= np.exp(-(gap - frozen_overlap) / parameters.t_leak)
        last_time = now

        active = (now >= refractory_until) & (now >= inhibited_until)
        if group_inputs.size:
            # Same sequential-accumulation primitive as the grid and
            # batched simulators, so all three add spike contributions
            # in an identical order.
            contribution = gather_contribution(
                network.weights, group_inputs, group_modulation
            )
            potentials[active] += contribution[active]

        # Fire every eligible neuron in sequence (each fire inhibits
        # the rest, so re-evaluate after each), as the grid does across
        # its per-ms checks.
        while True:
            fired = np.flatnonzero((potentials >= thresholds) & active)
            if not fired.size:
                break
            overshoot = potentials[fired] - thresholds[fired]
            neuron = int(fired[int(np.argmax(overshoot))])
            if result.winner < 0:
                result.winner = neuron
                result.winner_time = now
            result.output_spikes.append((now, neuron))
            potentials[neuron] = 0.0
            refractory_until[neuron] = now + parameters.t_refrac
            others = np.arange(config.n_neurons) != neuron
            inhibited_until[others] = np.maximum(
                inhibited_until[others], now + parameters.t_inhibit
            )
            wake_times.append(now + parameters.t_inhibit)
            wake_times.append(now + parameters.t_refrac)
            active = (now >= refractory_until) & (now >= inhibited_until)
            if stop_after_first_spike:
                stop = True
                break

    # Final decay to the end of the presentation window.
    remaining = train.duration - last_time
    if remaining > 0:
        active = (train.duration >= refractory_until) & (
            train.duration >= inhibited_until
        )
        potentials[active] *= parameters.decay_factor(remaining)
    result.final_potentials = potentials.copy()
    return result


def predict_event_driven(
    network: SpikingNetwork, image: np.ndarray, rng=None
) -> int:
    """Event-driven counterpart of SpikingNetwork.predict_image."""
    if network.neuron_labels is None:
        raise SimulationError("network has no neuron labels; run a labeling pass")
    from ..core.rng import make_rng

    train = network.coder.encode(image, rng=make_rng(rng))
    winner = present_event_driven(network, train).readout()
    if winner < 0:
        return -1
    return int(network.neuron_labels[winner])


def grid_agreement(
    network: SpikingNetwork,
    images: np.ndarray,
    seed: int = 0,
    use_batched: bool = False,
) -> float:
    """Fraction of images where grid and event-driven winners agree.

    Both simulators consume the *same* encoded spike trains, so the
    only difference is time quantization.  Used by tests and by the
    validation bench.  ``use_batched=True`` runs the grid side through
    the batched engine (:func:`repro.snn.batched.present_batch`), which
    is bit-identical to the per-image grid and simulates every image
    simultaneously.
    """
    from ..core.rng import make_rng

    images = np.atleast_2d(images)
    rng = make_rng(seed)
    trains = [network.coder.encode(image, rng=rng) for image in images]
    event_winners = [
        present_event_driven(network, train).readout() for train in trains
    ]
    if use_batched:
        result = present_batch(network, SpikeTrainBatch.from_trains(trains))
        grid_winners = result.readouts()
    else:
        grid_winners = [network.present(train).readout() for train in trains]
    agree = sum(
        int(int(g) == int(e)) for g, e in zip(grid_winners, event_winners)
    )
    return agree / max(images.shape[0], 1)
