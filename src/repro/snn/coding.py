"""Pixel-to-spike conversion schemes (paper Sections 3.1, 4.2.2 and 5).

The paper's primary scheme is *rate coding*: each 8-bit pixel
luminance becomes a spike train whose rate is proportional to the
luminance.  A maximum luminance of 255 corresponds to a mean
inter-spike interval of 50 ms (20 Hz); per the paper's lambda
expression the mean interval is ``U * (3 - 2*p/255)`` with U = 50 ms,
so a black pixel spikes three times slower than a white one.

Two random processes are implemented for the intervals:

* ``poisson`` — exponential inter-spike intervals (the paper's
  software model);
* ``gaussian`` — Gaussian intervals generated the way the paper's
  *hardware* does it (Section 4.2.2): sum of four uniform random
  numbers (central-limit theorem) from LFSRs.  The paper reports the
  accuracy difference is negligible; a benchmark checks that.

Two *temporal* coding schemes from Section 5 (Figure 14) are also
implemented; the paper finds them significantly less accurate:

* ``time-to-first-spike`` — one spike per pixel at a latency
  decreasing with luminance;
* ``rank-order`` — one spike per pixel, ordered by luminance rank,
  with rank-based attenuation at the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..core.rng import SeedLike, make_rng

#: Images encoded per batched RNG draw by :meth:`SpikeCoder.encode_batch`
#: subclasses that support it.  Bounds the temporary interval tensor
#: (worst case, the Gaussian coder's ``(B, pixels, cap, 4)`` uniforms)
#: to a few tens of megabytes at MNIST scale.
ENCODE_BATCH_CHUNK = 64

#: Interval multiplier at zero luminance relative to full luminance,
#: from the paper's expression (3*U - 2*U*p/255).
_DARK_FACTOR = 3.0

#: Attenuation per rank position used by the rank-order decoder
#: (Thorpe & Gautrais rank-order coding).  At 0.98 the contribution of
#: the ~400th-ranked pixel is ~3e-4 of the first's, so only the
#: brightest few hundred pixels carry information — the lossy regime
#: that makes the paper's temporal coding clearly weaker than rate
#: coding (Figure 14).
RANK_ORDER_MODULATION = 0.98


@dataclass
class SpikeTrain:
    """All input spikes for one image presentation.

    Attributes:
        times: spike times in ms, float64, sorted ascending.
        inputs: input (pixel) index of each spike, aligned with times.
        n_inputs: number of input channels.
        duration: presentation length in ms.
        modulation: decoder-side multiplicative attenuation per spike
            (1.0 for rate coding; rank-order coding attenuates later
            ranks).  Aligned with ``times``.
    """

    times: np.ndarray
    inputs: np.ndarray
    n_inputs: int
    duration: float
    modulation: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.inputs = np.asarray(self.inputs, dtype=np.int64)
        if self.times.shape != self.inputs.shape:
            raise ConfigError("times and inputs must have equal length")
        if self.times.size and np.any(np.diff(self.times) < 0):
            order = np.argsort(self.times, kind="stable")
            self.times = self.times[order]
            self.inputs = self.inputs[order]
            if self.modulation is not None:
                self.modulation = np.asarray(self.modulation)[order]
        if self.modulation is None:
            self.modulation = np.ones_like(self.times)

    @property
    def n_spikes(self) -> int:
        return int(self.times.size)

    def counts(self) -> np.ndarray:
        """Spikes per input channel — the SNNwot representation."""
        return np.bincount(self.inputs, minlength=self.n_inputs).astype(np.int64)

    def weighted_counts(self) -> np.ndarray:
        """Modulation-weighted spike counts per input channel."""
        result = np.zeros(self.n_inputs)
        np.add.at(result, self.inputs, self.modulation)
        return result

    def step_indices(self, step_ms: float = 1.0) -> Tuple[int, np.ndarray]:
        """(n_steps, per-spike step index) for a 1-ms-like grid."""
        n_steps = int(np.ceil(self.duration / step_ms))
        step_idx = np.minimum((self.times / step_ms).astype(np.int64), n_steps - 1)
        return n_steps, step_idx

    def step_slices(self, step_ms: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """(order, boundaries) partitioning spikes by grid step.

        ``order`` permutes the spike arrays into step-major order while
        preserving the original (time-sorted) order *within* each step;
        ``boundaries[t]:boundaries[t+1]`` slices step ``t``'s spikes out
        of the permuted arrays.  ``times`` is already sorted ascending
        (enforced by ``__post_init__``), so step indices are already
        non-decreasing and no re-sort is needed — ``order`` is the
        identity and only the ``searchsorted`` boundaries are computed.
        This is the precomputed-slices fast path shared by
        :meth:`steps`, :meth:`steps_weighted` and the batched engine.
        """
        n_steps, step_idx = self.step_indices(step_ms)
        if step_idx.size and np.any(np.diff(step_idx) < 0):
            # Defensive: only reachable if times were mutated post-init.
            order = np.argsort(step_idx, kind="stable")
            step_idx = step_idx[order]
        else:
            order = np.arange(step_idx.size)
        boundaries = np.searchsorted(step_idx, np.arange(n_steps + 1))
        return order, boundaries

    def steps(self, step_ms: float = 1.0) -> List[np.ndarray]:
        """Bucket spikes into integer time steps of ``step_ms``.

        Returns a list of length ceil(duration/step_ms); element t is
        the array of input indices spiking during step t.  This is the
        representation the 1-ms-per-cycle hardware (and our simulator)
        consumes.  Implemented with the argsort/searchsorted pattern
        (no per-spike Python loop).
        """
        order, boundaries = self.step_slices(step_ms)
        inputs = self.inputs[order]
        return [
            inputs[boundaries[t] : boundaries[t + 1]]
            for t in range(boundaries.size - 1)
        ]

    def steps_weighted(self, step_ms: float = 1.0) -> List[tuple]:
        """Like :meth:`steps`, but each bucket is (inputs, modulations).

        Uses the precomputed :meth:`step_slices` boundaries; when the
        spike times are already step-ordered (always, after
        ``__post_init__``) no re-sort happens.
        """
        order, boundaries = self.step_slices(step_ms)
        inputs = self.inputs[order]
        modulation = self.modulation[order]
        return [
            (inputs[boundaries[t] : boundaries[t + 1]],
             modulation[boundaries[t] : boundaries[t + 1]])
            for t in range(boundaries.size - 1)
        ]


def mean_interval(luminance: np.ndarray, max_rate_interval: float = 50.0) -> np.ndarray:
    """Mean inter-spike interval (ms) for each 8-bit luminance.

    Implements the paper's rate law: full luminance (255) gives
    ``max_rate_interval`` (50 ms = 20 Hz); the interval grows linearly
    to 3x that at zero luminance.
    """
    luminance = np.asarray(luminance, dtype=np.float64)
    if np.any(luminance < 0) or np.any(luminance > 255):
        raise ConfigError("luminance values must be in [0, 255]")
    return max_rate_interval * (_DARK_FACTOR - 2.0 * luminance / 255.0)


class SpikeCoder:
    """Base class: converts one 8-bit image vector into a SpikeTrain."""

    #: Registry name, e.g. "poisson"; subclasses set it.
    name = "base"

    #: True for rate coders (spike count ~ luminance), False for the
    #: temporal coders (one spike per pixel).  Rate coding admits the
    #: closed-form LTP probability used by expected-STDP; temporal
    #: coders train with the sampled rule.
    rate_coded = True

    def __init__(self, duration: float = 500.0, max_rate_interval: float = 50.0):
        if duration <= 0:
            raise ConfigError(f"duration must be positive, got {duration}")
        if max_rate_interval <= 0:
            raise ConfigError(
                f"max_rate_interval must be positive, got {max_rate_interval}"
            )
        self.duration = float(duration)
        self.max_rate_interval = float(max_rate_interval)

    def encode(self, image: np.ndarray, rng: SeedLike = None) -> SpikeTrain:
        raise NotImplementedError

    def encode_batch(
        self, images: np.ndarray, rng: SeedLike = None
    ) -> List[SpikeTrain]:
        """Encode a ``(B, n_pixels)`` batch of images.

        Contract: consumes ``rng`` exactly as ``B`` sequential
        :meth:`encode` calls would and returns bit-identical trains —
        callers (the fused STDP trainer) rely on this to interchange
        the batched and per-image paths freely.  The base
        implementation *is* the sequential loop; rate coders override
        :meth:`_draw_intervals_batch` to fold all ``B`` RNG draws into
        one vectorized draw (bit-identical because a single
        ``(B, ...)``-shaped draw from a NumPy generator fills rows in
        the same stream order as ``B`` successive per-image draws).
        """
        rng = make_rng(rng)
        return [self.encode(image, rng=rng) for image in np.atleast_2d(images)]

    @property
    def max_spikes_per_pixel(self) -> int:
        """Hard cap on per-pixel spikes (duration / fastest interval)."""
        return int(self.duration // self.max_rate_interval)


class _IntervalRateCoder(SpikeCoder):
    """Shared machinery for rate coders that draw inter-spike intervals.

    The interval draws are vectorized over all pixels at once:
    subclasses produce an (n_pixels, n_max) matrix of candidate
    intervals; cumulative sums give candidate spike times, of which
    those inside the presentation window (and under the hardware's
    4-bit per-pixel count cap) are kept.
    """

    def _draw_intervals(
        self, means: np.ndarray, n_max: int, rng: np.random.Generator
    ) -> np.ndarray:
        """(n_pixels, n_max) inter-spike intervals with row means ``means``."""
        raise NotImplementedError

    def _draw_intervals_batch(
        self, means: np.ndarray, n_max: int, rng: np.random.Generator
    ) -> np.ndarray:
        """(B, n_pixels, n_max) intervals, stream-identical to B serial draws.

        Must consume ``rng`` exactly as ``B`` successive
        :meth:`_draw_intervals` calls and return bit-identical slices;
        subclasses that cannot guarantee that should not override (the
        base raises, and :meth:`encode_batch` falls back to the
        sequential loop).
        """
        raise NotImplementedError

    def encode_batch(
        self, images: np.ndarray, rng: SeedLike = None
    ) -> List[SpikeTrain]:
        """Vectorized :meth:`SpikeCoder.encode_batch` for interval coders.

        One batched RNG draw replaces ``B`` per-image draws (the single
        stream-order-preserving call); spike-time assembly (cumulative
        sums, window clipping) is elementwise per image, so every
        returned train is bit-identical to the sequential path.
        Chunked by :data:`ENCODE_BATCH_CHUNK` to bound the temporary
        interval tensor.
        """
        rng = make_rng(rng)
        images = np.atleast_2d(np.asarray(images))
        trains: List[SpikeTrain] = []
        n_max = max(self.max_spikes_per_pixel, 1)
        for start in range(0, images.shape[0], ENCODE_BATCH_CHUNK):
            chunk = images[start : start + ENCODE_BATCH_CHUNK]
            means = mean_interval(chunk, self.max_rate_interval)
            try:
                intervals = self._draw_intervals_batch(means, n_max, rng)
            except NotImplementedError:
                trains.extend(self.encode(image, rng=rng) for image in chunk)
                continue
            for i in range(chunk.shape[0]):
                spike_times = np.cumsum(intervals[i], axis=1)
                keep = spike_times < self.duration
                pixels, _ranks = np.nonzero(keep)
                times = spike_times[keep]
                trains.append(
                    SpikeTrain(
                        times,
                        pixels.astype(np.int64),
                        n_inputs=chunk.shape[1],
                        duration=self.duration,
                    )
                )
        return trains

    def encode(self, image: np.ndarray, rng: SeedLike = None) -> SpikeTrain:
        rng = make_rng(rng)
        image = np.asarray(image).ravel()
        means = mean_interval(image, self.max_rate_interval)
        # Upper bound on spikes per pixel: duration / fastest interval,
        # enforcing the hardware's 4-bit count cap (<= 10 spikes).
        cap = self.max_spikes_per_pixel
        n_max = max(cap, 1)
        intervals = self._draw_intervals(means, n_max, rng)
        spike_times = np.cumsum(intervals, axis=1)
        keep = spike_times < self.duration
        pixels, _ranks = np.nonzero(keep)
        times = spike_times[keep]
        return SpikeTrain(
            times, pixels.astype(np.int64), n_inputs=image.size, duration=self.duration
        )


class PoissonCoder(_IntervalRateCoder):
    """Rate coding with exponential (Poisson-process) intervals."""

    name = "poisson"

    def _draw_intervals(self, means, n_max, rng):
        draws = rng.exponential(1.0, size=(means.size, n_max)) * means[:, None]
        return np.maximum(draws, 1.0)

    def _draw_intervals_batch(self, means, n_max, rng):
        # One (B, P, n_max) draw fills rows in the same stream order as
        # B successive (P, n_max) draws; the scale/clamp is elementwise.
        draws = rng.exponential(1.0, size=means.shape + (n_max,))
        return np.maximum(draws * means[:, :, None], 1.0)


class GaussianCoder(_IntervalRateCoder):
    """Rate coding with Gaussian intervals via the central limit theorem.

    Mirrors the paper's hardware generator (Section 4.2.2): each
    interval is the sum of four uniform random numbers, yielding an
    approximately Gaussian distribution (Irwin-Hall with n=4) with the
    requested mean; the standard deviation is mean/sqrt(12) per the
    four-uniform construction.
    """

    name = "gaussian"

    def _draw_intervals(self, means, n_max, rng):
        # Four uniforms on [0, mean/2] sum to mean on average, with
        # variance 4 * (mean/2)^2 / 12 -> sigma = mean / sqrt(12).
        uniform = rng.uniform(0.0, 0.5, size=(means.size, n_max, 4)).sum(axis=2)
        return np.maximum(uniform * means[:, None], 1.0)

    def _draw_intervals_batch(self, means, n_max, rng):
        # Same stream-order argument as the Poisson coder; the
        # four-uniform sum reduces the same four values per interval.
        uniform = rng.uniform(0.0, 0.5, size=means.shape + (n_max, 4)).sum(axis=3)
        return np.maximum(uniform * means[:, :, None], 1.0)


class TimeToFirstSpikeCoder(SpikeCoder):
    """Temporal coding: one spike per pixel, earlier for brighter pixels.

    A pixel of luminance p spikes once at t = duration * (1 - p/255);
    fully dark pixels never spike.  (Section 5 / Figure 14,
    "time-to-first-spike".)
    """

    name = "time-to-first-spike"
    rate_coded = False

    def encode(self, image: np.ndarray, rng: SeedLike = None) -> SpikeTrain:
        image = np.asarray(image).ravel().astype(np.float64)
        active = image > 0
        pixels = np.flatnonzero(active)
        # Scale latencies into [0, duration); jitter below 1 ms keeps
        # deterministic ties broken stably without changing the code.
        latencies = (1.0 - image[pixels] / 255.0) * (self.duration - 1.0)
        return SpikeTrain(
            latencies, pixels, n_inputs=image.size, duration=self.duration
        )


class RankOrderCoder(SpikeCoder):
    """Temporal coding by luminance rank (Thorpe & Gautrais).

    Pixels spike once each, in decreasing-luminance order, one per
    millisecond slot (compressed to fit the presentation window).  The
    decoder attenuates each successive spike by a modulation factor
    ``m^rank``, so early (bright) spikes dominate — the defining
    feature of rank-order coding.  Fully dark pixels never spike.
    """

    name = "rank-order"
    rate_coded = False

    def __init__(
        self,
        duration: float = 500.0,
        max_rate_interval: float = 50.0,
        modulation: float = RANK_ORDER_MODULATION,
    ):
        super().__init__(duration, max_rate_interval)
        if not 0.0 < modulation <= 1.0:
            raise ConfigError(f"modulation must be in (0, 1], got {modulation}")
        self.modulation = float(modulation)

    def encode(self, image: np.ndarray, rng: SeedLike = None) -> SpikeTrain:
        image = np.asarray(image).ravel().astype(np.float64)
        pixels = np.flatnonzero(image > 0)
        # Stable sort: descending luminance, pixel index breaks ties.
        order = pixels[np.argsort(-image[pixels], kind="stable")]
        ranks = np.arange(order.size, dtype=np.float64)
        if order.size:
            spacing = min(1.0, (self.duration - 1.0) / max(order.size, 1))
        else:
            spacing = 1.0
        times = ranks * spacing
        modulation = self.modulation**ranks
        return SpikeTrain(
            times, order, n_inputs=image.size, duration=self.duration,
            modulation=modulation,
        )


#: Registry of coder names to classes, used by configuration surfaces.
CODERS = {
    cls.name: cls
    for cls in (PoissonCoder, GaussianCoder, TimeToFirstSpikeCoder, RankOrderCoder)
}


def make_coder(
    name: str, duration: float = 500.0, max_rate_interval: float = 50.0
) -> SpikeCoder:
    """Instantiate a coder by registry name."""
    if name not in CODERS:
        raise ConfigError(f"unknown coding scheme {name!r}; choose from {sorted(CODERS)}")
    return CODERS[name](duration=duration, max_rate_interval=max_rate_interval)


def deterministic_counts(
    image: np.ndarray, duration: float = 500.0, max_rate_interval: float = 50.0
) -> np.ndarray:
    """Expected spike counts per pixel, without random sampling.

    This is the value the SNNwot *hardware* converter produces
    (Figure 7): a 4-bit count derived directly from the pixel value by
    comparing against nine luminance break-points, i.e. the expected
    number of spikes ``duration / mean_interval`` rounded down.

    A 1-D image gives a 1-D count vector; use
    :func:`deterministic_counts_batch` for whole test sets.
    """
    image = np.asarray(image).ravel()
    expected = duration / mean_interval(image, max_rate_interval)
    cap = int(duration // max_rate_interval)
    return np.clip(expected.astype(np.int64), 0, cap)


def deterministic_counts_batch(
    images: np.ndarray, duration: float = 500.0, max_rate_interval: float = 50.0
) -> np.ndarray:
    """Vectorized :func:`deterministic_counts` over a (B, n_pixels) batch.

    One elementwise pass over the whole batch instead of B Python-level
    converter calls; the arithmetic is elementwise, so each row is
    bit-identical to the per-image converter's output.
    """
    images = np.atleast_2d(np.asarray(images))
    expected = duration / mean_interval(images, max_rate_interval)
    cap = int(duration // max_rate_interval)
    return np.clip(expected.astype(np.int64), 0, cap)
