"""Self-labeling of STDP-trained neurons (paper Section 2.2, "Labeling").

STDP is unsupervised, so after training the 300 neurons must be tagged
with output labels.  The paper's procedure: present the training
images (whose labels are known); each neuron keeps one counter per
label, incremented when the neuron fires (wins) for an image of that
label.  After all images, a neuron's *score* for a label is its
counter divided by the number of training images carrying that label
(normalizing away class imbalance), and the neuron is tagged with its
highest-scoring label.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigError, TrainingError


class NeuronLabeler:
    """Accumulates win counts and produces the per-neuron label map."""

    def __init__(self, n_neurons: int, n_labels: int):
        if n_neurons < 1 or n_labels < 2:
            raise ConfigError(
                f"need >=1 neuron and >=2 labels, got {n_neurons}, {n_labels}"
            )
        self.n_neurons = n_neurons
        self.n_labels = n_labels
        self.win_counts = np.zeros((n_neurons, n_labels), dtype=np.int64)
        self.label_presentations = np.zeros(n_labels, dtype=np.int64)

    def record(self, winner: int, label: int) -> None:
        """Record that ``winner`` fired first for an image of ``label``.

        ``winner`` may be -1 ("no neuron fired"), which still counts
        the presentation for normalization.
        """
        if not 0 <= label < self.n_labels:
            raise ConfigError(f"label {label} outside [0, {self.n_labels})")
        self.label_presentations[label] += 1
        if winner >= 0:
            if winner >= self.n_neurons:
                raise ConfigError(f"winner {winner} outside [0, {self.n_neurons})")
            self.win_counts[winner, label] += 1

    def scores(self) -> np.ndarray:
        """(n_neurons, n_labels) normalized scores.

        Score = win count / number of presentations of that label,
        which "accounts for possible discrepancies in the number of
        times each label is used as input" (paper).
        """
        presentations = np.maximum(self.label_presentations, 1)
        return self.win_counts / presentations[None, :]

    def labels(self) -> np.ndarray:
        """Per-neuron label assignment (argmax score).

        Neurons that never won any image get label -1 (they abstain
        from prediction; they can still win at test time, in which
        case the prediction is counted as incorrect, matching the
        conservative reading of the paper's readout).
        """
        if self.label_presentations.sum() == 0:
            raise TrainingError("no presentations recorded; cannot label neurons")
        scores = self.scores()
        assigned = np.argmax(scores, axis=1)
        never_won = self.win_counts.sum(axis=1) == 0
        assigned[never_won] = -1
        return assigned

    def coverage(self) -> float:
        """Fraction of neurons that won at least one training image."""
        return float(np.mean(self.win_counts.sum(axis=1) > 0))
