"""Homeostatic threshold regulation (paper Section 2.2, "Homeostasis").

To balance information among neurons, each neuron's firing threshold
is periodically adjusted: neurons that fired more than a preset
activity threshold during a *homeostasis epoch* are punished (their
threshold is raised), neurons that fired less are promoted (threshold
lowered), per the paper's expression:

    firing_threshold += sign(activity - homeostasis_threshold)
                        * firing_threshold * r

The epoch is a fixed span of simulated time (Table 1:
``10 * T_period * n_neurons`` ms = 1,500,000 ms for the 300-neuron
MNIST network, i.e. every 3,000 images) counted by a single external
counter common to all neurons; everything else is local per neuron.
The paper credits homeostasis with ~5% accuracy on MNIST.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import ConfigError


class HomeostasisController:
    """Tracks per-neuron activity and applies epoch-boundary updates."""

    def __init__(
        self,
        n_neurons: int,
        epoch_ms: float,
        activity_threshold: float,
        rate: float,
        min_threshold: float = 1.0,
        down_rate: Optional[float] = None,
    ):
        if n_neurons < 1:
            raise ConfigError(f"need at least 1 neuron, got {n_neurons}")
        if epoch_ms <= 0:
            raise ConfigError(f"epoch_ms must be positive, got {epoch_ms}")
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if min_threshold <= 0:
            raise ConfigError(f"min_threshold must be positive, got {min_threshold}")
        if down_rate is not None and down_rate <= 0:
            raise ConfigError(f"down_rate must be positive, got {down_rate}")
        self.n_neurons = n_neurons
        self.epoch_ms = float(epoch_ms)
        self.activity_threshold = float(activity_threshold)
        self.rate = float(rate)
        #: Rate applied when *decreasing* a threshold.  The paper's
        #: expression is symmetric (down_rate == rate); a smaller
        #: down-rate turns the controller into a per-win "conscience"
        #: when the epoch is short: with down_rate = rate/(N-1) the
        #: stable operating point is every neuron winning 1/N of the
        #: images, which is the fast-converging equivalent of the
        #: paper's long-epoch balancing.
        self.down_rate = float(down_rate) if down_rate is not None else float(rate)
        self.min_threshold = float(min_threshold)
        self.activity = np.zeros(n_neurons, dtype=np.int64)
        self.elapsed_ms = 0.0
        self.epochs_completed = 0

    def record_firing(self, neuron: int) -> None:
        """Count one output spike of ``neuron`` toward this epoch."""
        self.activity[neuron] += 1

    def advance(self, dt_ms: float, thresholds: np.ndarray) -> bool:
        """Advance the global epoch counter by ``dt_ms``.

        If one or more epoch boundaries are crossed, apply the paper's
        threshold update (once per boundary) to ``thresholds`` in
        place and reset the activity counters.  Returns True if an
        update was applied.
        """
        if dt_ms < 0:
            raise ConfigError(f"dt_ms must be non-negative, got {dt_ms}")
        self.elapsed_ms += dt_ms
        updated = False
        while self.elapsed_ms >= self.epoch_ms:
            self.elapsed_ms -= self.epoch_ms
            self._apply(thresholds)
            updated = True
        return updated

    def _apply(self, thresholds: np.ndarray) -> None:
        """One epoch-boundary update: thr += sign(act - H) * thr * r.

        The up- and down-steps use ``rate`` and ``down_rate``
        respectively (identical by default, the paper's form).
        """
        direction = np.sign(self.activity - self.activity_threshold)
        step = np.where(direction > 0, self.rate, self.down_rate)
        thresholds += direction * thresholds * step
        np.maximum(thresholds, self.min_threshold, out=thresholds)
        self.activity.fill(0)
        self.epochs_completed += 1
