"""Spike-Timing Dependent Plasticity (paper Sections 2.2 and 4.4).

The simplified, hardware-friendly STDP rule the paper implements
(following Querlioz et al.): when a neuron fires at time t_post,
every input synapse whose most recent presynaptic spike arrived
within the LTP window [t_post - T_LTP, t_post] is *potentiated*
(Long-Term Potentiation) and every other synapse is *depressed*
(Long-Term Depression).  The hardware applies constant +-1
increments and clamps weights to the 8-bit range (Section 4.4:
"it applies constant increments/decrements of 1").

STDP applies only to the input excitatory connections, never to the
lateral inhibitory ones (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError


@dataclass(frozen=True)
class STDPRule:
    """The LTP/LTD rule, in soft-bound or constant-step form.

    Two variants, both used by the paper:

    * ``soft=True`` (default) — the multiplicative soft-bound rule of
      Querlioz et al., whose approach the paper states it "carefully
      reproduced" for its software accuracy studies:

          LTP: w += ltp_step * exp(-beta * (w - w_min) / range)
          LTD: w -= ltd_step * exp(-beta * (w_max - w) / range)

      Updates shrink as a weight approaches its bound, keeping weights
      graded instead of rail-to-rail.

    * ``soft=False`` — the constant +-1 increments the paper's *online
      learning hardware* applies (Section 4.4: "it applies constant
      increments/decrements of 1"), with hard clamping.

    Attributes:
        t_ltp: LTP window in ms (Table 1: 45 ms).
        ltp_step: weight increment scale for potentiated synapses.
        ltd_step: weight decrement scale for depressed synapses.
        w_min: lower weight clamp.
        w_max: upper weight clamp (8-bit: 255).
        soft: select the soft-bound (True) or constant-step (False) form.
        beta: soft-bound sharpness (ignored when soft=False).
    """

    t_ltp: float = 45.0
    ltp_step: float = 1.0
    ltd_step: float = 1.0
    w_min: float = 0.0
    w_max: float = 255.0
    soft: bool = False
    beta: float = 2.5

    def __post_init__(self) -> None:
        if self.t_ltp <= 0:
            raise ConfigError(f"t_ltp must be positive, got {self.t_ltp}")
        if self.ltp_step < 0 or self.ltd_step < 0:
            raise ConfigError("LTP/LTD steps must be non-negative")
        if self.w_min >= self.w_max:
            raise ConfigError(f"w_min ({self.w_min}) must be < w_max ({self.w_max})")
        if self.beta <= 0:
            raise ConfigError(f"beta must be positive, got {self.beta}")

    def ltp_mask(self, last_pre_times: np.ndarray, t_post: float) -> np.ndarray:
        """Synapses eligible for potentiation at a firing event.

        ``last_pre_times`` holds each input's most recent spike time
        (-inf if it has not spiked yet this presentation).
        """
        last_pre_times = np.asarray(last_pre_times)
        return (last_pre_times >= t_post - self.t_ltp) & (last_pre_times <= t_post)

    def apply(
        self, weights_row: np.ndarray, last_pre_times: np.ndarray, t_post: float
    ) -> np.ndarray:
        """Update one neuron's weight row in place; returns the LTP mask.

        Potentiates recently-active synapses by ``ltp_step``, depresses
        all others by ``ltd_step``, then clamps to [w_min, w_max].
        """
        ltp = self.ltp_mask(last_pre_times, t_post)
        if self.soft:
            span = self.w_max - self.w_min
            up = np.exp(-self.beta * (weights_row[ltp] - self.w_min) / span)
            down = np.exp(-self.beta * (self.w_max - weights_row[~ltp]) / span)
            weights_row[ltp] += self.ltp_step * up
            weights_row[~ltp] -= self.ltd_step * down
        else:
            weights_row[ltp] += self.ltp_step
            weights_row[~ltp] -= self.ltd_step
        np.clip(weights_row, self.w_min, self.w_max, out=weights_row)
        return ltp

    def expected_apply(
        self, weights_row: np.ndarray, ltp_probabilities: np.ndarray
    ) -> None:
        """Variance-reduced STDP: apply the *expected* LTP/LTD update.

        ``ltp_probabilities[i]`` is the probability that input i's most
        recent spike falls inside the LTP window at the firing time —
        for rate coding, q_i = 1 - exp(-t_ltp / mean_interval(p_i)).
        The update applied is exactly the expectation of :meth:`apply`
        over the spike-sampling randomness:

            E[dw_i] = q_i * LTP_step(w_i) - (1 - q_i) * LTD_step(w_i)

        The paper's full-scale runs (60k images x tens of epochs, i.e.
        ~10,000 wins per neuron) average this sampling noise out by
        brute force; scaled-down reproductions cannot, so the trainer
        uses this expected form by default and keeps the sampled form
        (:meth:`apply`) for fidelity experiments.
        """
        q = np.asarray(ltp_probabilities, dtype=np.float64)
        if q.shape != weights_row.shape:
            raise ConfigError(
                f"probabilities shape {q.shape} != weights shape {weights_row.shape}"
            )
        if self.soft:
            span = self.w_max - self.w_min
            up = np.exp(-self.beta * (weights_row - self.w_min) / span)
            down = np.exp(-self.beta * (self.w_max - weights_row) / span)
        else:
            up = 1.0
            down = 1.0
        weights_row += q * self.ltp_step * up - (1.0 - q) * self.ltd_step * down
        np.clip(weights_row, self.w_min, self.w_max, out=weights_row)

    def delta(self, dt: float) -> float:
        """The classic STDP curve value for dt = t_post - t_pre (Figure 4).

        Positive dt within the LTP window -> +ltp_step; anything else
        (dt negative, i.e. the input arrived after the output spike, or
        dt beyond the window) -> -ltd_step.  Exposed for tests and for
        plotting the Figure 4 LTP/LTD profile.
        """
        if 0.0 <= dt <= self.t_ltp:
            return self.ltp_step
        return -self.ltd_step
