"""Leaky Integrate-and-Fire population state (paper Section 2.2).

The membrane potential of neuron j obeys

    dv_j/dt + v_j/T_leak = sum_i w_ji * I_i(t)

Between input spikes the paper exploits the analytical solution
``v(T2) = v(T1) * exp(-(T2-T1)/T_leak)`` instead of fine-grained
numerical integration — the same trick its hardware uses.  This module
implements that population state: exponential decay between events,
weight accumulation on input spikes, threshold crossing, the
post-firing refractory period and the lateral-inhibition period during
which "incoming spikes have no impact" and the potential is not
modified (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError


@dataclass
class LIFParameters:
    """Population-level LIF constants (a subset of Table 1)."""

    t_leak: float = 500.0
    t_inhibit: float = 5.0
    t_refrac: float = 20.0

    def __post_init__(self) -> None:
        if self.t_leak <= 0:
            raise ConfigError(f"t_leak must be positive, got {self.t_leak}")
        if self.t_inhibit < 0 or self.t_refrac < 0:
            raise ConfigError("inhibition/refractory periods must be non-negative")

    def decay_factor(self, dt: float) -> float:
        """exp(-dt / t_leak): the analytical inter-spike leak."""
        if dt < 0:
            raise ConfigError(f"dt must be non-negative, got {dt}")
        return float(np.exp(-dt / self.t_leak))


class LIFPopulation:
    """State of N leaky integrate-and-fire neurons sharing parameters.

    The population tracks, per neuron: membrane potential, firing
    threshold (individual, because homeostasis adjusts them
    independently), refractory deadline and inhibition deadline.
    Time is tracked by the caller; all methods take the current time
    or time delta explicitly.
    """

    def __init__(
        self,
        n_neurons: int,
        parameters: LIFParameters,
        initial_threshold: float,
    ):
        if n_neurons < 1:
            raise ConfigError(f"need at least 1 neuron, got {n_neurons}")
        if initial_threshold <= 0:
            raise ConfigError(
                f"initial_threshold must be positive, got {initial_threshold}"
            )
        self.n_neurons = n_neurons
        self.parameters = parameters
        self.potentials = np.zeros(n_neurons)
        self.thresholds = np.full(n_neurons, float(initial_threshold))
        self.refractory_until = np.full(n_neurons, -np.inf)
        self.inhibited_until = np.full(n_neurons, -np.inf)

    def active_mask(self, now: float) -> np.ndarray:
        """Neurons currently integrating (not refractory, not inhibited)."""
        return (now >= self.refractory_until) & (now >= self.inhibited_until)

    def decay(self, dt: float, active: np.ndarray) -> None:
        """Leak active neurons' potentials by exp(-dt/t_leak)."""
        if dt == 0:
            return
        self.potentials[active] *= self.parameters.decay_factor(dt)

    def integrate(self, contributions: np.ndarray, active: np.ndarray) -> None:
        """Add per-neuron input contributions (masked to active neurons)."""
        self.potentials[active] += contributions[active]

    def fired(self, active: np.ndarray) -> np.ndarray:
        """Indices of active neurons at/above their firing threshold."""
        over = (self.potentials >= self.thresholds) & active
        return np.flatnonzero(over)

    def fire(self, neuron: int, now: float) -> None:
        """Neuron ``neuron`` emits a spike at time ``now``.

        Resets its potential, starts its refractory period, and
        inhibits every *other* neuron (winner-takes-all lateral
        inhibition) for t_inhibit.
        """
        self.potentials[neuron] = 0.0
        self.refractory_until[neuron] = now + self.parameters.t_refrac
        others = np.arange(self.n_neurons) != neuron
        self.inhibited_until[others] = np.maximum(
            self.inhibited_until[others], now + self.parameters.t_inhibit
        )

    def reset_for_presentation(self) -> None:
        """Clear dynamic state before a new image presentation.

        Thresholds persist (they are learned by homeostasis);
        potentials and the inhibition/refractory clocks do not carry
        across presentations.
        """
        self.potentials.fill(0.0)
        self.refractory_until.fill(-np.inf)
        self.inhibited_until.fill(-np.inf)
