"""MLP-to-SNN conversion (the research direction of Section 3.2).

The paper closes its accuracy analysis by noting that the residual
SNN/MLP gap comes from the threshold nonlinearity, and that morphing
the sigmoid toward a step "suggests a research direction for further
bridging the accuracy gap between SNNs and MLPs".  The direction the
community took is *conversion*: train the network as an MLP with BP,
then run it as a spiking network — keeping the MLP's accuracy while
paying spike-domain hardware costs.

This module implements the standard rate-based conversion
(Diehl et al. 2015 style) for the paper's 2-layer MLP:

* ReLU-less trick: the trained sigmoid MLP is first *re-expressed*
  with its hidden pre-activations normalized per layer (data-based
  weight normalization), so integrate-and-fire neurons with unit
  threshold and reset-by-subtraction approximate the activations as
  firing rates;
* inputs are presented as Bernoulli spike trains with rate
  proportional to luminance (the paper's rate coding);
* the readout accumulates output-layer potentials over the
  presentation and takes the argmax.

Accuracy approaches the MLP's as the presentation lengthens —
the experiment the paper's conclusion asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.errors import ConfigError, TrainingError
from ..core.metrics import EvaluationResult, evaluate
from ..core.rng import SeedLike, make_rng
from ..datasets.base import Dataset
from ..mlp.network import MLP


@dataclass
class ConversionResult:
    """Accuracy of the converted network vs its source MLP."""

    timesteps: int
    snn_accuracy: float
    mlp_accuracy: float

    @property
    def gap(self) -> float:
        """Accuracy the conversion loses (positive) or gains."""
        return self.mlp_accuracy - self.snn_accuracy


class ConvertedSNN:
    """A trained MLP executed as a rate-coded spiking network.

    The hidden layer runs integrate-and-fire dynamics with unit
    threshold and reset-by-subtraction (so its firing rate tracks the
    normalized pre-activation); the output layer only integrates, and
    the readout compares accumulated potentials — the same monotone
    readout the quantized MLP uses.
    """

    def __init__(self, network: MLP, calibration: Optional[np.ndarray] = None):
        self.config = network.config
        self.w_hidden = network.w_hidden.copy()
        self.b_hidden = network.b_hidden.copy()
        self.w_output = network.w_output.copy()
        self.b_output = network.b_output.copy()
        self._normalize(network, calibration)

    def _normalize(self, network: MLP, calibration: Optional[np.ndarray]) -> None:
        """Data-based weight normalization.

        Scales the hidden layer so its largest observed pre-activation
        is ~1 (one spike per timestep at saturation).  Uses the given
        calibration inputs or a neutral all-half input.
        """
        if calibration is None:
            calibration = np.full((1, self.config.n_inputs), 0.5)
        calibration = np.atleast_2d(np.asarray(calibration, dtype=np.float64))
        trace = network.forward(calibration)
        peak = float(np.percentile(np.abs(trace.hidden_pre), 99.5))
        peak = max(peak, 1e-6)
        self.w_hidden /= peak
        self.b_hidden /= peak
        # The output layer consumes firing *rates* in [0, 1], which
        # stand in for the original sigmoid activations; rescale its
        # effective input range accordingly using the calibration set.
        rates = np.clip(trace.hidden_pre / peak, 0.0, 1.0)
        self._rate_for_activation = float(
            np.mean(rates) / max(np.mean(trace.hidden_out), 1e-6)
        )

    def simulate(
        self,
        images: np.ndarray,
        timesteps: int = 100,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Run the spiking simulation; returns (B, n_output) potentials.

        ``images`` are normalized inputs in [0, 1]; each timestep every
        input emits a Bernoulli spike with probability equal to its
        intensity, hidden IF neurons integrate and fire, and the output
        layer accumulates.
        """
        if timesteps < 1:
            raise ConfigError(f"timesteps must be >= 1, got {timesteps}")
        images = np.atleast_2d(np.asarray(images, dtype=np.float64))
        if images.shape[1] != self.config.n_inputs:
            raise ConfigError(
                f"expected {self.config.n_inputs} inputs, got {images.shape[1]}"
            )
        rng = make_rng(rng)
        batch = images.shape[0]
        hidden_potential = np.zeros((batch, self.config.n_hidden))
        output_accumulator = np.zeros((batch, self.config.n_output))
        for _step in range(timesteps):
            input_spikes = (rng.random(images.shape) < images).astype(np.float64)
            hidden_potential += input_spikes @ self.w_hidden.T + self.b_hidden
            hidden_spikes = (hidden_potential >= 1.0).astype(np.float64)
            # Reset by subtraction preserves the residual charge, the
            # key to rate fidelity in converted networks.
            hidden_potential -= hidden_spikes
            output_accumulator += hidden_spikes @ self.w_output.T
        output_accumulator += timesteps * self._rate_for_activation * self.b_output
        return output_accumulator

    def predict(
        self, images: np.ndarray, timesteps: int = 100, rng: SeedLike = None
    ) -> np.ndarray:
        """Argmax over accumulated output potentials."""
        return np.argmax(self.simulate(images, timesteps, rng), axis=1)

    def evaluate(
        self, dataset: Dataset, timesteps: int = 100, rng: SeedLike = None
    ) -> EvaluationResult:
        predictions = self.predict(dataset.normalized(), timesteps, rng)
        return evaluate(predictions, dataset.labels, dataset.n_classes)


def convert_mlp(network: MLP, calibration: Optional[Dataset] = None) -> ConvertedSNN:
    """Convert a trained MLP into a rate-coded spiking network.

    ``calibration`` supplies inputs for the weight normalization
    (a slice of the training set is the usual choice).
    """
    inputs = None
    if calibration is not None:
        if len(calibration) == 0:
            raise TrainingError("calibration dataset is empty")
        inputs = calibration.normalized()[:256]
    return ConvertedSNN(network, calibration=inputs)


def conversion_sweep(
    network: MLP,
    test_set: Dataset,
    timesteps_list: List[int] = (10, 25, 50, 100, 200),
    calibration: Optional[Dataset] = None,
    rng: SeedLike = None,
) -> List[ConversionResult]:
    """Accuracy vs presentation length — the bridging experiment.

    Longer presentations integrate more spikes, so the converted
    network's accuracy climbs toward the MLP's.
    """
    converted = convert_mlp(network, calibration=calibration)
    mlp_predictions = network.predict_dataset(test_set)
    mlp_accuracy = float(np.mean(mlp_predictions == test_set.labels))
    results = []
    rng = make_rng(rng)
    for timesteps in timesteps_list:
        result = converted.evaluate(test_set, timesteps=timesteps, rng=rng)
        results.append(
            ConversionResult(
                timesteps=int(timesteps),
                snn_accuracy=result.accuracy,
                mlp_accuracy=mlp_accuracy,
            )
        )
    return results
