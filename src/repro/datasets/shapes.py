"""Synthetic object-silhouette workload (MPEG-7 CE Shape-1 substitute).

The paper's second validation benchmark is MPEG-7 CE Shape-1 Part-B,
a binary-silhouette object-recognition dataset, downscaled by the
authors to the same 28x28 front end as MNIST (their MPEG-7 networks
are MLP 28x28-15-10 and SNN 28x28-90).  We synthesize 10 silhouette
classes as filled polygons with rotation/scale/translation jitter and
light noise, rasterized to 28x28 uint8 images.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from ..core.errors import DatasetError
from ..core.rng import SeedLike, child_rng
from .base import Dataset
from .render import (
    add_noise,
    rasterize_polygon,
    to_uint8,
    transform_points,
    affine_matrix,
)

SIDE = 28

#: Class names in label order, for reporting.
SHAPE_CLASSES = (
    "circle",
    "square",
    "triangle",
    "star",
    "cross",
    "ellipse",
    "diamond",
    "pentagon",
    "arrow",
    "lshape",
)


def _regular_polygon(n: int, radius: float = 0.32, phase: float = 0.0) -> np.ndarray:
    angles = 2 * math.pi * np.arange(n) / n + phase
    return np.stack(
        [0.5 + radius * np.cos(angles), 0.5 + radius * np.sin(angles)], axis=1
    )


def _star(points: int = 5, outer: float = 0.36, inner: float = 0.15) -> np.ndarray:
    angles = math.pi * np.arange(2 * points) / points - math.pi / 2
    radii = np.where(np.arange(2 * points) % 2 == 0, outer, inner)
    return np.stack(
        [0.5 + radii * np.cos(angles), 0.5 + radii * np.sin(angles)], axis=1
    )


def _cross(arm: float = 0.34, width: float = 0.13) -> np.ndarray:
    a, w = arm, width
    return np.array(
        [
            (0.5 - w, 0.5 - a), (0.5 + w, 0.5 - a), (0.5 + w, 0.5 - w),
            (0.5 + a, 0.5 - w), (0.5 + a, 0.5 + w), (0.5 + w, 0.5 + w),
            (0.5 + w, 0.5 + a), (0.5 - w, 0.5 + a), (0.5 - w, 0.5 + w),
            (0.5 - a, 0.5 + w), (0.5 - a, 0.5 - w), (0.5 - w, 0.5 - w),
        ]
    )


def _ellipse(rx: float = 0.36, ry: float = 0.20, n: int = 24) -> np.ndarray:
    angles = 2 * math.pi * np.arange(n) / n
    return np.stack(
        [0.5 + rx * np.cos(angles), 0.5 + ry * np.sin(angles)], axis=1
    )


def _arrow() -> np.ndarray:
    return np.array(
        [
            (0.18, 0.42), (0.55, 0.42), (0.55, 0.28), (0.84, 0.50),
            (0.55, 0.72), (0.55, 0.58), (0.18, 0.58),
        ]
    )


def _lshape() -> np.ndarray:
    return np.array(
        [
            (0.28, 0.20), (0.48, 0.20), (0.48, 0.58), (0.76, 0.58),
            (0.76, 0.80), (0.28, 0.80),
        ]
    )


_SHAPE_BUILDERS: Dict[int, Callable[[], np.ndarray]] = {
    0: lambda: _regular_polygon(24, radius=0.33),            # circle
    1: lambda: _regular_polygon(4, radius=0.38, phase=math.pi / 4),  # square
    2: lambda: _regular_polygon(3, radius=0.36, phase=-math.pi / 2), # triangle
    3: _star,                                                # star
    4: _cross,                                               # cross
    5: _ellipse,                                             # ellipse
    6: lambda: _regular_polygon(4, radius=0.36),             # diamond
    7: lambda: _regular_polygon(5, radius=0.34, phase=-math.pi / 2), # pentagon
    8: _arrow,                                               # arrow
    9: _lshape,                                              # lshape
}


def render_shape(
    shape: int,
    rng: np.random.Generator,
    side: int = SIDE,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render one jittered silhouette as a (side, side) uint8 image."""
    if shape not in _SHAPE_BUILDERS:
        raise DatasetError(f"shape class must be 0-9, got {shape}")
    vertices = _SHAPE_BUILDERS[shape]()
    matrix = affine_matrix(
        rotation_deg=rng.uniform(-25, 25) * jitter,
        scale=rng.uniform(1.0 - 0.25 * jitter, 1.0 + 0.10 * jitter),
        shear=rng.uniform(-0.10, 0.10) * jitter,
        translate=(
            rng.uniform(-0.05, 0.05) * jitter,
            rng.uniform(-0.05, 0.05) * jitter,
        ),
    )
    vertices = transform_points(vertices, matrix)
    image = rasterize_polygon(vertices, side, antialias=0.03)
    image = add_noise(image, rng, amplitude=0.03 * jitter)
    return to_uint8(image, peak=rng.uniform(210, 255) if jitter > 0 else 255)


def load_shapes(
    n_train: int = 1500,
    n_test: int = 400,
    seed: SeedLike = None,
    side: int = SIDE,
) -> tuple:
    """Generate the (train, test) silhouette datasets."""
    train = _generate(n_train, child_rng(seed, "shapes-train"), side)
    test = _generate(n_test, child_rng(seed, "shapes-test"), side)
    return train, test


def _generate(n_samples: int, rng: np.random.Generator, side: int) -> Dataset:
    if n_samples < 10:
        raise DatasetError(f"need at least 10 samples (one per class), got {n_samples}")
    labels = np.arange(n_samples) % 10
    rng.shuffle(labels)
    images = np.empty((n_samples, side * side), dtype=np.uint8)
    for i, label in enumerate(labels):
        images[i] = render_shape(int(label), rng, side=side).ravel()
    return Dataset(images=images, labels=labels.astype(np.int64), n_classes=10, name="shapes")
