"""Dataset containers and split utilities.

All three workloads (digits / shapes / spoken) are delivered as a
:class:`Dataset`: an ``(N, n_inputs)`` array of 8-bit luminances in
[0, 255] plus integer labels.  8-bit luminance is exactly the input
format of the paper's hardware (Section 2.1: "the inputs are usually
n-bit values (8-bit values in our case for the pixel luminance)"), and
the spike-coding front-ends consume it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..core.errors import DatasetError
from ..core.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Dataset:
    """An immutable labelled dataset of 8-bit input vectors.

    Attributes:
        images: uint8 array of shape (n_samples, n_inputs), values 0-255.
        labels: int64 array of shape (n_samples,), values in [0, n_classes).
        n_classes: number of distinct label values.
        name: short identifier ("digits", "shapes", "spoken").
    """

    images: np.ndarray
    labels: np.ndarray
    n_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.images.ndim != 2:
            raise DatasetError(
                f"images must be 2-D (n_samples, n_inputs), got {self.images.shape}"
            )
        if self.labels.ndim != 1:
            raise DatasetError(f"labels must be 1-D, got {self.labels.shape}")
        if self.images.shape[0] != self.labels.shape[0]:
            raise DatasetError(
                f"{self.images.shape[0]} images but {self.labels.shape[0]} labels"
            )
        if self.images.dtype != np.uint8:
            raise DatasetError(f"images must be uint8, got {self.images.dtype}")
        if self.n_classes < 2:
            raise DatasetError(f"n_classes must be >= 2, got {self.n_classes}")
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.n_classes
        ):
            raise DatasetError(
                f"labels outside [0, {self.n_classes}): "
                f"min={self.labels.min()}, max={self.labels.max()}"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def n_inputs(self) -> int:
        return int(self.images.shape[1])

    @property
    def side(self) -> int:
        """Image side length if the input is a square image, else raises."""
        side = int(round(self.n_inputs**0.5))
        if side * side != self.n_inputs:
            raise DatasetError(f"{self.n_inputs} inputs is not a square image")
        return side

    def normalized(self) -> np.ndarray:
        """Images scaled to float64 in [0, 1] (the MLP input format)."""
        return self.images.astype(np.float64) / 255.0

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new Dataset restricted to ``indices`` (copying)."""
        indices = np.asarray(indices)
        return Dataset(
            images=self.images[indices].copy(),
            labels=self.labels[indices].copy(),
            n_classes=self.n_classes,
            name=self.name,
        )

    def take(self, n: int) -> "Dataset":
        """The first ``n`` samples (useful for quick tests)."""
        if n > len(self):
            raise DatasetError(f"requested {n} samples from a dataset of {len(self)}")
        return self.subset(np.arange(n))

    def shuffled(self, seed: SeedLike = None) -> "Dataset":
        """A shuffled copy of the dataset."""
        rng = make_rng(seed)
        order = rng.permutation(len(self))
        return self.subset(order)

    def split(self, train_fraction: float, seed: SeedLike = None) -> Tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test) datasets.

        The split is stratified per class so small test sets still
        contain every class.
        """
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = make_rng(seed)
        train_idx = []
        test_idx = []
        for cls in range(self.n_classes):
            cls_idx = np.flatnonzero(self.labels == cls)
            cls_idx = rng.permutation(cls_idx)
            cut = int(round(train_fraction * cls_idx.size))
            train_idx.append(cls_idx[:cut])
            test_idx.append(cls_idx[cut:])
        train = rng.permutation(np.concatenate(train_idx))
        test = rng.permutation(np.concatenate(test_idx))
        return self.subset(train), self.subset(test)

    def batches(self, batch_size: int, seed: SeedLike = None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield shuffled (images, labels) mini-batches of normalized inputs."""
        if batch_size < 1:
            raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
        rng = make_rng(seed)
        order = rng.permutation(len(self))
        normalized = self.normalized()
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield normalized[idx], self.labels[idx]

    def class_counts(self) -> np.ndarray:
        """Number of samples of each class."""
        return np.bincount(self.labels, minlength=self.n_classes)


def merge(first: Dataset, second: Dataset) -> Dataset:
    """Concatenate two datasets of identical geometry."""
    if first.n_inputs != second.n_inputs:
        raise DatasetError(
            f"input sizes differ: {first.n_inputs} vs {second.n_inputs}"
        )
    if first.n_classes != second.n_classes:
        raise DatasetError(
            f"class counts differ: {first.n_classes} vs {second.n_classes}"
        )
    return Dataset(
        images=np.concatenate([first.images, second.images]),
        labels=np.concatenate([first.labels, second.labels]),
        n_classes=first.n_classes,
        name=first.name,
    )
