"""IDX-format loader for the real MNIST files (when available).

The paper's driving benchmark is MNIST proper.  This repository ships
synthetic substitutes because the environment is offline, but anyone
with the original files (``train-images-idx3-ubyte`` etc., optionally
gzipped) can run every experiment on the real data: this module parses
the IDX format into the same :class:`~repro.datasets.base.Dataset`
container the rest of the library consumes.

IDX format (LeCun et al.): big-endian magic ``0x00 0x00 <dtype>
<ndim>`` followed by one 4-byte big-endian size per dimension, then
the raw data.  MNIST uses dtype 0x08 (unsigned byte) with ndim 3 for
images and ndim 1 for labels.
"""

from __future__ import annotations

import gzip
import pathlib
import struct
from typing import Tuple, Union

import numpy as np

from ..core.errors import DatasetError
from .base import Dataset

PathLike = Union[str, pathlib.Path]

#: IDX dtype byte -> numpy dtype (only the ones MNIST uses plus the
#: common extensions, for completeness).
_IDX_DTYPES = {
    0x08: np.dtype(">u1"),
    0x09: np.dtype(">i1"),
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}

#: Standard MNIST file names, with and without .gz.
MNIST_FILES = {
    "train_images": "train-images-idx3-ubyte",
    "train_labels": "train-labels-idx1-ubyte",
    "test_images": "t10k-images-idx3-ubyte",
    "test_labels": "t10k-labels-idx1-ubyte",
}


def _read_bytes(path: pathlib.Path) -> bytes:
    if path.suffix == ".gz":
        with gzip.open(path, "rb") as handle:
            return handle.read()
    return path.read_bytes()


def load_idx(path: PathLike) -> np.ndarray:
    """Parse one IDX file into a numpy array (native byte order)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise DatasetError(f"IDX file not found: {path}")
    raw = _read_bytes(path)
    if len(raw) < 4:
        raise DatasetError(f"{path}: too short to be an IDX file")
    zero0, zero1, dtype_byte, ndim = struct.unpack(">BBBB", raw[:4])
    if zero0 != 0 or zero1 != 0:
        raise DatasetError(f"{path}: bad IDX magic {raw[:4]!r}")
    if dtype_byte not in _IDX_DTYPES:
        raise DatasetError(f"{path}: unknown IDX dtype byte 0x{dtype_byte:02x}")
    if ndim < 1 or ndim > 4:
        raise DatasetError(f"{path}: unsupported IDX rank {ndim}")
    header_end = 4 + 4 * ndim
    if len(raw) < header_end:
        raise DatasetError(f"{path}: truncated IDX header")
    shape = struct.unpack(f">{ndim}I", raw[4:header_end])
    dtype = _IDX_DTYPES[dtype_byte]
    expected = int(np.prod(shape)) * dtype.itemsize
    body = raw[header_end:]
    if len(body) != expected:
        raise DatasetError(
            f"{path}: payload is {len(body)} bytes, header implies {expected}"
        )
    array = np.frombuffer(body, dtype=dtype).reshape(shape)
    return array.astype(dtype.newbyteorder("="))


def _find(directory: pathlib.Path, stem: str) -> pathlib.Path:
    for candidate in (directory / stem, directory / (stem + ".gz")):
        if candidate.exists():
            return candidate
    raise DatasetError(
        f"MNIST file {stem}(.gz) not found in {directory}; expected the "
        "standard names: " + ", ".join(MNIST_FILES.values())
    )


def _to_dataset(images: np.ndarray, labels: np.ndarray, name: str) -> Dataset:
    if images.ndim != 3:
        raise DatasetError(f"expected (N, H, W) images, got {images.shape}")
    if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
        raise DatasetError(
            f"{images.shape[0]} images but label shape {labels.shape}"
        )
    flat = images.reshape(images.shape[0], -1).astype(np.uint8)
    return Dataset(
        images=flat,
        labels=labels.astype(np.int64),
        n_classes=10,
        name=name,
    )


def load_mnist(directory: PathLike) -> Tuple[Dataset, Dataset]:
    """Load the real MNIST train/test pair from ``directory``.

    Returns datasets directly usable by every trainer and experiment
    in this repository — e.g. to run the paper's Table 3 on the real
    data::

        train, test = load_mnist("~/data/mnist")
        mlp = train_mlp(mnist_mlp_config(), train)
    """
    directory = pathlib.Path(directory).expanduser()
    if not directory.is_dir():
        raise DatasetError(f"MNIST directory not found: {directory}")
    train = _to_dataset(
        load_idx(_find(directory, MNIST_FILES["train_images"])),
        load_idx(_find(directory, MNIST_FILES["train_labels"])),
        name="mnist-train",
    )
    test = _to_dataset(
        load_idx(_find(directory, MNIST_FILES["test_images"])),
        load_idx(_find(directory, MNIST_FILES["test_labels"])),
        name="mnist-test",
    )
    return train, test


def write_idx(path: PathLike, array: np.ndarray) -> pathlib.Path:
    """Write an array as an IDX file (round-trip / test helper)."""
    path = pathlib.Path(path)
    dtype_byte = None
    for byte, dtype in _IDX_DTYPES.items():
        if np.dtype(array.dtype).newbyteorder(">") == dtype:
            dtype_byte = byte
            break
    if dtype_byte is None:
        raise DatasetError(f"dtype {array.dtype} has no IDX encoding")
    if array.ndim < 1 or array.ndim > 4:
        raise DatasetError(f"unsupported IDX rank {array.ndim}")
    header = struct.pack(">BBBB", 0, 0, dtype_byte, array.ndim)
    header += struct.pack(f">{array.ndim}I", *array.shape)
    body = array.astype(np.dtype(array.dtype).newbyteorder(">")).tobytes()
    path.write_bytes(header + body)
    return path
