"""Synthetic workloads standing in for the paper's three benchmarks.

* :mod:`~repro.datasets.digits` — MNIST substitute (28x28 digits).
* :mod:`~repro.datasets.shapes` — MPEG-7 substitute (28x28 silhouettes).
* :mod:`~repro.datasets.spoken` — Spoken Arabic Digits substitute
  (13x13 spectro-temporal patterns).

See DESIGN.md section 2 for why each substitution preserves the
behaviours the paper measures.
"""

from .base import Dataset, merge
from .digits import load_digits, render_digit
from .mnist_io import load_idx, load_mnist, write_idx
from .shapes import SHAPE_CLASSES, load_shapes, render_shape
from .spoken import load_spoken, render_utterance

__all__ = [
    "Dataset",
    "merge",
    "load_digits",
    "load_mnist",
    "load_idx",
    "write_idx",
    "render_digit",
    "load_shapes",
    "render_shape",
    "SHAPE_CLASSES",
    "load_spoken",
    "render_utterance",
]
