"""Synthetic spoken-digit workload (Spoken Arabic Digits substitute).

The paper's third benchmark is the UCI Spoken Arabic Digits (SAD)
dataset: 13 MFCC coefficients over time, which the authors present to
13x13-input networks (MLP 13x13-60-10, SNN 13x13-90).  We synthesize a
spectro-temporal pattern dataset with that exact geometry: for each of
the 10 classes, a characteristic pattern of frequency ridges (formant
trajectories) over 13 time frames x 13 coefficients, with per-sample
time warping, amplitude jitter and noise.

The paper reports notably lower accuracies on SAD than on the vision
workloads (MLP 91.35%, SNN 74.7%) — it is the "hard" workload.  The
generator mirrors that by using heavier intra-class variability
(stronger warps and noise) than the vision generators.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.errors import DatasetError
from ..core.rng import SeedLike, child_rng
from .base import Dataset

SIDE = 13

#: Each class is a list of formant ridges: (start_freq, end_freq,
#: start_time, end_time, amplitude), in normalized [0, 1] coordinates.
_Ridge = Tuple[float, float, float, float, float]


def _class_ridges() -> Dict[int, List[_Ridge]]:
    ridges: Dict[int, List[_Ridge]] = {
        0: [(0.2, 0.2, 0.0, 1.0, 1.0), (0.6, 0.6, 0.1, 0.9, 0.7)],
        1: [(0.1, 0.8, 0.0, 1.0, 1.0)],
        2: [(0.8, 0.1, 0.0, 1.0, 1.0)],
        3: [(0.2, 0.8, 0.0, 0.5, 0.9), (0.8, 0.2, 0.5, 1.0, 0.9)],
        4: [(0.5, 0.5, 0.0, 1.0, 1.0), (0.15, 0.85, 0.2, 0.8, 0.6)],
        5: [(0.3, 0.3, 0.0, 0.45, 1.0), (0.7, 0.7, 0.55, 1.0, 1.0)],
        6: [(0.75, 0.45, 0.0, 0.6, 0.9), (0.2, 0.2, 0.4, 1.0, 0.8)],
        7: [(0.4, 0.9, 0.0, 1.0, 0.8), (0.4, 0.1, 0.0, 1.0, 0.8)],
        8: [(0.55, 0.25, 0.0, 1.0, 1.0), (0.9, 0.9, 0.3, 0.7, 0.5)],
        9: [(0.3, 0.6, 0.0, 0.33, 0.9), (0.6, 0.3, 0.33, 0.66, 0.9),
            (0.3, 0.6, 0.66, 1.0, 0.9)],
    }
    return ridges


_RIDGES = _class_ridges()


def render_utterance(
    digit: int,
    rng: np.random.Generator,
    side: int = SIDE,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render one synthetic utterance as a (side, side) uint8 pattern.

    Rows are MFCC-like coefficients (frequency), columns are time
    frames.  Per sample we apply a random monotonic time warp, ridge
    frequency offsets, ridge width jitter, amplitude jitter and noise.
    """
    if digit not in _RIDGES:
        raise DatasetError(f"digit class must be 0-9, got {digit}")
    time = np.linspace(0.0, 1.0, side)
    freq = np.linspace(0.0, 1.0, side)
    # Monotonic time warp: t -> t + warp*sin(pi*t).
    warp = rng.uniform(-0.30, 0.30) * jitter
    warped_time = np.clip(time + warp * np.sin(np.pi * time), 0.0, 1.0)
    image = np.zeros((side, side))
    freq_offset = rng.uniform(-0.14, 0.14) * jitter
    for start_f, end_f, start_t, end_t, amplitude in _RIDGES[digit]:
        width = rng.uniform(0.06, 0.15) if jitter > 0 else 0.10
        amp = amplitude * (1.0 + rng.uniform(-0.25, 0.25) * jitter)
        span = max(end_t - start_t, 1e-9)
        # Ridge centre frequency at each (warped) time frame.
        progress = np.clip((warped_time - start_t) / span, 0.0, 1.0)
        centre = start_f + (end_f - start_f) * progress + freq_offset
        active = (warped_time >= start_t - 0.04) & (warped_time <= end_t + 0.04)
        # Gaussian profile across frequency for the active frames.
        profile = np.exp(-0.5 * ((freq[:, None] - centre[None, :]) / width) ** 2)
        image += amp * profile * active[None, :]
    image = np.clip(image, 0.0, 1.4) / 1.4
    noise = rng.normal(0.0, 0.22 * jitter, size=image.shape)
    image = np.clip(image + noise, 0.0, 1.0)
    peak = rng.uniform(180, 255) if jitter > 0 else 255
    return np.clip(np.round(image * peak), 0, 255).astype(np.uint8)


def load_spoken(
    n_train: int = 1500,
    n_test: int = 400,
    seed: SeedLike = None,
    side: int = SIDE,
) -> tuple:
    """Generate the (train, test) spoken-digit datasets."""
    train = _generate(n_train, child_rng(seed, "spoken-train"), side)
    test = _generate(n_test, child_rng(seed, "spoken-test"), side)
    return train, test


def _generate(n_samples: int, rng: np.random.Generator, side: int) -> Dataset:
    if n_samples < 10:
        raise DatasetError(f"need at least 10 samples (one per class), got {n_samples}")
    labels = np.arange(n_samples) % 10
    rng.shuffle(labels)
    images = np.empty((n_samples, side * side), dtype=np.uint8)
    for i, label in enumerate(labels):
        images[i] = render_utterance(int(label), rng, side=side).ravel()
    return Dataset(images=images, labels=labels.astype(np.int64), n_classes=10, name="spoken")
