"""Rasterization primitives shared by the synthetic dataset generators.

The digit and shape generators describe glyphs as strokes (polylines)
or filled polygons in a normalized [0, 1] x [0, 1] coordinate frame
(x right, y down), apply a random affine jitter, and rasterize onto a
small grayscale grid with anti-aliasing.  Everything is vectorized
numpy; no imaging libraries are used.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


def arc_points(
    center: Point,
    radius_x: float,
    radius_y: float,
    start_deg: float,
    end_deg: float,
    n_points: int = 16,
) -> np.ndarray:
    """Sample an elliptical arc as an (n_points, 2) polyline.

    Angles are in degrees, measured clockwise from the +x axis (the y
    axis points down, so this matches screen convention).
    """
    angles = np.radians(np.linspace(start_deg, end_deg, n_points))
    xs = center[0] + radius_x * np.cos(angles)
    ys = center[1] + radius_y * np.sin(angles)
    return np.stack([xs, ys], axis=1)


def line_points(start: Point, end: Point) -> np.ndarray:
    """A two-point polyline."""
    return np.array([start, end], dtype=np.float64)


def polyline_segments(points: np.ndarray) -> np.ndarray:
    """Convert an (n, 2) polyline to (n-1, 4) segment endpoints."""
    points = np.asarray(points, dtype=np.float64)
    return np.concatenate([points[:-1], points[1:]], axis=1)


def affine_matrix(
    rotation_deg: float = 0.0,
    scale: float = 1.0,
    shear: float = 0.0,
    translate: Point = (0.0, 0.0),
    center: Point = (0.5, 0.5),
) -> np.ndarray:
    """A 3x3 homogeneous affine transform about ``center``."""
    theta = math.radians(rotation_deg)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    rotate_scale = np.array(
        [
            [scale * cos_t, -scale * sin_t, 0.0],
            [scale * sin_t, scale * cos_t, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    shear_m = np.array([[1.0, shear, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    to_origin = np.array([[1, 0, -center[0]], [0, 1, -center[1]], [0, 0, 1.0]])
    back = np.array(
        [[1, 0, center[0] + translate[0]], [0, 1, center[1] + translate[1]], [0, 0, 1.0]]
    )
    return back @ shear_m @ rotate_scale @ to_origin


def transform_points(points: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a 3x3 homogeneous transform to an (n, 2) point array."""
    points = np.asarray(points, dtype=np.float64)
    homogeneous = np.concatenate([points, np.ones((points.shape[0], 1))], axis=1)
    mapped = homogeneous @ matrix.T
    return mapped[:, :2]


def _segment_distances(grid: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Min distance from each grid point to any segment.

    grid: (P, 2) pixel-center coordinates; segments: (S, 4) endpoint
    pairs.  Returns (P,) distances.
    """
    starts = segments[:, :2]  # (S, 2)
    ends = segments[:, 2:]  # (S, 2)
    direction = ends - starts  # (S, 2)
    length_sq = np.einsum("ij,ij->i", direction, direction)  # (S,)
    length_sq = np.maximum(length_sq, 1e-12)
    # (P, S, 2) displacement of each point from each segment start.
    delta = grid[:, None, :] - starts[None, :, :]
    t = np.einsum("psi,si->ps", delta, direction) / length_sq[None, :]
    t = np.clip(t, 0.0, 1.0)
    nearest = starts[None, :, :] + t[:, :, None] * direction[None, :, :]
    dist = np.linalg.norm(grid[:, None, :] - nearest, axis=2)
    return dist.min(axis=1)


def pixel_grid(side: int) -> np.ndarray:
    """(side*side, 2) pixel-center coordinates in the unit square."""
    coords = (np.arange(side) + 0.5) / side
    ys, xs = np.meshgrid(coords, coords, indexing="ij")
    return np.stack([xs.ravel(), ys.ravel()], axis=1)


def rasterize_strokes(
    strokes: Sequence[np.ndarray],
    side: int,
    thickness: float,
    antialias: float = 0.02,
) -> np.ndarray:
    """Rasterize polyline strokes to a (side, side) float image in [0, 1].

    ``thickness`` is the stroke width in unit-square coordinates
    (e.g. 0.08 is about 2.2 pixels on a 28-pixel grid); ``antialias``
    is the width of the soft edge.
    """
    segments = np.concatenate([polyline_segments(s) for s in strokes], axis=0)
    grid = pixel_grid(side)
    dist = _segment_distances(grid, segments)
    intensity = np.clip((thickness / 2 + antialias - dist) / antialias, 0.0, 1.0)
    return intensity.reshape(side, side)


def rasterize_polygon(
    vertices: np.ndarray, side: int, antialias: float = 0.02
) -> np.ndarray:
    """Rasterize a filled polygon to a (side, side) float image in [0, 1].

    Interior detection uses the even-odd crossing rule; edges are
    softened with a distance-based anti-aliasing band so the silhouette
    generator produces smooth 8-bit luminances rather than hard masks.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    grid = pixel_grid(side)
    x, y = grid[:, 0], grid[:, 1]
    inside = np.zeros(grid.shape[0], dtype=bool)
    n = vertices.shape[0]
    for i in range(n):
        x0, y0 = vertices[i]
        x1, y1 = vertices[(i + 1) % n]
        crosses = (y0 > y) != (y1 > y)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_at_y = x0 + (y - y0) * (x1 - x0) / (y1 - y0)
        inside ^= crosses & (x < np.where(crosses, x_at_y, np.inf))
    closed = np.concatenate([vertices, vertices[:1]], axis=0)
    dist = _segment_distances(grid, polyline_segments(closed))
    edge = np.clip(dist / antialias, 0.0, 1.0)
    value = np.where(inside, 1.0, 1.0 - edge)
    # Outside the AA band the value must be exactly zero.
    value = np.where(~inside & (dist > antialias), 0.0, value)
    return value.reshape(side, side)


def to_uint8(image: np.ndarray, peak: float = 255.0) -> np.ndarray:
    """Convert a [0, 1] float image to 8-bit luminance with given peak."""
    return np.clip(np.round(image * peak), 0, 255).astype(np.uint8)


def add_noise(
    image: np.ndarray, rng: np.random.Generator, amplitude: float
) -> np.ndarray:
    """Add clipped Gaussian pixel noise to a [0, 1] float image."""
    if amplitude <= 0:
        return image
    noisy = image + rng.normal(0.0, amplitude, size=image.shape)
    return np.clip(noisy, 0.0, 1.0)


def random_affine(
    rng: np.random.Generator,
    max_rotation_deg: float,
    scale_range: Tuple[float, float],
    max_shear: float,
    max_translate: float,
) -> np.ndarray:
    """Draw a random affine jitter matrix."""
    return affine_matrix(
        rotation_deg=rng.uniform(-max_rotation_deg, max_rotation_deg),
        scale=rng.uniform(*scale_range),
        shear=rng.uniform(-max_shear, max_shear),
        translate=(
            rng.uniform(-max_translate, max_translate),
            rng.uniform(-max_translate, max_translate),
        ),
    )


def transform_strokes(
    strokes: Sequence[np.ndarray], matrix: np.ndarray
) -> List[np.ndarray]:
    """Apply an affine matrix to every stroke."""
    return [transform_points(s, matrix) for s in strokes]
