"""Synthetic handwritten-digit workload (MNIST substitute).

The paper drives its whole study with MNIST (28x28 8-bit grayscale
digits).  MNIST itself is not available offline, so this module
synthesizes a digit dataset with the same geometry and the same
front-end contract: 28x28 uint8 luminance images, 10 classes.

Each digit class is described as a set of strokes (polylines and
elliptical arcs) in a normalized frame.  Per sample we draw a random
affine jitter (rotation, scale, shear, translation), a random stroke
thickness, a random peak luminance, and additive pixel noise — the
axes of variation that make MNIST non-trivial for a 28x28 classifier.
Relative model orderings (MLP+BP > SNN+BP > SNN+STDP; rate coding >
temporal coding; accuracy plateaus vs neuron count) are driven by the
learning rules, not by MNIST specifically, and are preserved on this
substitute; absolute accuracies differ from the paper's and are
recorded side-by-side in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.errors import DatasetError
from ..core.rng import SeedLike, child_rng
from .base import Dataset
from .render import (
    add_noise,
    arc_points,
    line_points,
    random_affine,
    rasterize_strokes,
    to_uint8,
    transform_strokes,
)

#: Default image side, matching MNIST.
SIDE = 28


def _digit_strokes() -> Dict[int, List[np.ndarray]]:
    """Stroke skeletons for digits 0-9 in the unit square (y down)."""
    strokes: Dict[int, List[np.ndarray]] = {}

    strokes[0] = [arc_points((0.5, 0.5), 0.22, 0.32, 0, 360, 24)]

    strokes[1] = [
        line_points((0.42, 0.30), (0.55, 0.18)),
        line_points((0.55, 0.18), (0.55, 0.82)),
    ]

    strokes[2] = [
        arc_points((0.5, 0.34), 0.20, 0.16, 150, 360, 12),
        line_points((0.70, 0.34), (0.32, 0.80)),
        line_points((0.32, 0.80), (0.72, 0.80)),
    ]

    strokes[3] = [
        arc_points((0.48, 0.34), 0.18, 0.16, 160, 410, 12),
        arc_points((0.48, 0.66), 0.20, 0.17, 310, 560, 12),
    ]

    strokes[4] = [
        line_points((0.62, 0.18), (0.30, 0.62)),
        line_points((0.30, 0.62), (0.74, 0.62)),
        line_points((0.62, 0.18), (0.62, 0.82)),
    ]

    strokes[5] = [
        line_points((0.68, 0.20), (0.36, 0.20)),
        line_points((0.36, 0.20), (0.34, 0.48)),
        arc_points((0.50, 0.63), 0.20, 0.17, 250, 480, 14),
    ]

    strokes[6] = [
        arc_points((0.52, 0.40), 0.20, 0.26, 220, 300, 8),
        arc_points((0.50, 0.64), 0.18, 0.17, 0, 360, 18),
    ]

    strokes[7] = [
        line_points((0.30, 0.20), (0.72, 0.20)),
        line_points((0.72, 0.20), (0.42, 0.82)),
    ]

    strokes[8] = [
        arc_points((0.50, 0.34), 0.16, 0.145, 0, 360, 16),
        arc_points((0.50, 0.665), 0.19, 0.17, 0, 360, 16),
    ]

    strokes[9] = [
        arc_points((0.50, 0.36), 0.18, 0.17, 0, 360, 18),
        arc_points((0.48, 0.60), 0.20, 0.26, 40, 120, 8),
    ]
    return strokes


_STROKES = _digit_strokes()


def render_digit(
    digit: int,
    rng: np.random.Generator,
    side: int = SIDE,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render one jittered digit as a (side, side) uint8 image.

    ``jitter`` scales the distortion magnitude; 0 renders the canonical
    glyph, 1 is the default training distribution.
    """
    if digit not in _STROKES:
        raise DatasetError(f"digit must be 0-9, got {digit}")
    matrix = random_affine(
        rng,
        max_rotation_deg=12.0 * jitter,
        scale_range=(1.0 - 0.18 * jitter, 1.0 + 0.12 * jitter),
        max_shear=0.18 * jitter,
        max_translate=0.06 * jitter,
    )
    strokes = transform_strokes(_STROKES[digit], matrix)
    thickness = rng.uniform(0.055, 0.095) if jitter > 0 else 0.075
    image = rasterize_strokes(strokes, side, thickness=thickness, antialias=0.025)
    image = add_noise(image, rng, amplitude=0.04 * jitter)
    peak = rng.uniform(200, 255) if jitter > 0 else 255
    return to_uint8(image, peak=peak)


def load_digits(
    n_train: int = 2000,
    n_test: int = 500,
    seed: SeedLike = None,
    side: int = SIDE,
) -> tuple:
    """Generate the (train, test) digit datasets.

    Classes are balanced; the train and test streams use independent
    random substreams so enlarging one does not perturb the other.
    """
    train = _generate(n_train, child_rng(seed, "digits-train"), side)
    test = _generate(n_test, child_rng(seed, "digits-test"), side)
    return train, test


def _generate(n_samples: int, rng: np.random.Generator, side: int) -> Dataset:
    if n_samples < 10:
        raise DatasetError(f"need at least 10 samples (one per class), got {n_samples}")
    labels = np.arange(n_samples) % 10
    rng.shuffle(labels)
    images = np.empty((n_samples, side * side), dtype=np.uint8)
    for i, label in enumerate(labels):
        images[i] = render_digit(int(label), rng, side=side).ravel()
    return Dataset(images=images, labels=labels.astype(np.int64), n_classes=10, name="digits")
