"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — list every registered experiment;
* ``report [ids...]``           — run experiments (default: all) and
                                  print paper-vs-measured tables;
* ``recommend [options]``       — the Section 7 designer guidance
                                  (``--json`` for machine-readable
                                  output with stable keys);
* ``explore [options]``         — vectorized design-space sweeps over
                                  (family x fold x hidden x bits x
                                  node) grids: best-point queries
                                  under constraints, Pareto
                                  frontiers, and the SNN-vs-ANN
                                  comparison axis (exit 2 on unknown
                                  metric / family / node);
* ``sample <dataset>``          — ASCII contact sheet of a workload;
* ``fields``                    — train a small SNN and show its
                                  receptive fields as ASCII art;
* ``loadtest [options]``        — drive the inference serving layer
                                  with generated load and report
                                  throughput / latency / batching;
                                  ``--chaos <scenario>`` runs the
                                  deterministic chaos harness instead
                                  (``--chaos list`` enumerates every
                                  registered scenario);
* ``learn-serve [options]``     — live continual learning under load:
                                  windowed STDP on a serving tenant
                                  with shadow-gated promotion, guarded
                                  hot-swaps and automatic rollback
                                  (exit 0 only when every learning
                                  invariant holds);
* ``ir-dump <kind>``            — compile a small model of one kind
                                  (mlp, mlp-q, snnwt, snnwot, snnbp)
                                  to the unified execution IR and
                                  print the instruction listing and
                                  buffer table (``--json`` for the
                                  machine-readable plan document with
                                  stable keys; ``--backend NAME``
                                  annotates availability and plan
                                  support for one execution backend;
                                  exit 2 on unknown kind or backend);
* ``backends [--json]``         — list the registered plan-execution
                                  backends with availability and the
                                  selection precedence (flag >
                                  ``REPRO_IR_BACKEND`` > default);
* ``cache verify [options]``    — audit every artifact-cache entry
                                  against its SHA-256 sidecar (exit 1
                                  when any entry is corrupt;
                                  ``--evict`` deletes corrupt entries,
                                  ``--json`` for stable keys);
* ``serve-stats <file>``        — pretty-print a stats JSON written by
                                  ``loadtest --output``;
* ``serve-health <file>``       — readiness / liveness view of a stats
                                  JSON (exit 0 only when ready;
                                  ``--json`` for machine-readable
                                  output with stable keys).

The CLI is a thin shell over :mod:`repro.analysis`; everything it does
is available programmatically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import analysis  # noqa: F401  (registers experiments)
from .analysis.report import render_result, run_and_render
from .analysis.visualize import ascii_image, dataset_contact_sheet
from .core import registry
from .core.config import mnist_mlp_config, mnist_snn_config
from .core.errors import ExperimentError
from .core.experiment import RunPolicy

#: Exit code for bad invocations (e.g. unknown experiment ids),
#: mirroring argparse's own usage-error convention.
EXIT_USAGE = 2


def _cmd_list(_args: argparse.Namespace) -> int:
    for spec in registry.iter_specs():
        location = f" ({spec.paper_location})" if spec.paper_location else ""
        print(f"{spec.experiment_id:<8} {spec.title}{location}")
    return 0


def _policy_from_args(args: argparse.Namespace):
    """Build a RunPolicy from report flags (None when none were given)."""
    degrade = tuple(
        float(s) for s in (args.degrade_scales or "").split(",") if s.strip()
    )
    if (
        args.retries == 0
        and args.timeout is None
        and args.checkpoint_dir is None
        and args.backoff == 0.0
        and not degrade
    ):
        return None
    return RunPolicy(
        retries=args.retries,
        timeout_seconds=args.timeout,
        backoff_seconds=args.backoff,
        degrade_scales=degrade,
        checkpoint_dir=args.checkpoint_dir,
    ).validate()


def _cmd_report(args: argparse.Namespace) -> int:
    ids = args.ids or registry.all_ids()
    # Validate every id up front so a typo fails fast with the known-ids
    # message and a clean usage exit code instead of a traceback.
    for experiment_id in ids:
        try:
            registry.get(experiment_id)
        except ExperimentError as error:
            print(error, file=sys.stderr)
            return EXIT_USAGE
    try:
        policy = _policy_from_args(args)
    except ExperimentError as error:
        print(error, file=sys.stderr)
        return EXIT_USAGE
    _apply_cache_flags(args)
    timings = getattr(args, "timings", False)
    if timings:
        import time

        from .core import timing

        timing.reset()
        wall_start = time.perf_counter()
    status = 0
    if args.jobs > 1:
        from .analysis.common import shared_dataset_export
        from .core.experiment import run_experiments

        # Publish the standard datasets once; workers attach read-only
        # shared-memory views instead of regenerating per-process
        # copies (falls back to regeneration when shm is unavailable).
        with shared_dataset_export() as (initializer, initargs):
            results = run_experiments(
                list(ids),
                policy=policy,
                jobs=args.jobs,
                initializer=initializer,
                initargs=initargs,
            )
        for result in results:
            print(render_result(result))
    else:
        for experiment_id in ids:
            print(run_and_render(experiment_id, policy=policy))
    if timings:
        from .core.artifacts import CacheStats, cache_stats

        wall = time.perf_counter() - wall_start
        print(timing.report(wall=wall))
        print(f"  model cache: {CacheStats(**cache_stats()).summary()}")
        if args.jobs > 1:
            print(
                "  note: --jobs > 1 runs experiments in worker processes; "
                "their per-phase timers and cache counters are not "
                "aggregated here."
            )
    return status


def _apply_cache_flags(args: argparse.Namespace) -> None:
    """Propagate --no-cache / --cache-dir to the artifact-cache env.

    Environment variables (rather than plumbed parameters) so worker
    processes of a ``--jobs N`` run inherit the same cache settings.
    """
    import os

    if getattr(args, "no_cache", False):
        os.environ["REPRO_NO_CACHE"] = "1"
    if getattr(args, "cache_dir", None):
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir


def _design_point_doc(point) -> dict:
    """Stable machine-readable rendering of an explorer DesignPoint."""
    return {
        "family": point.family,
        "variant": point.variant,
        "name": point.report.name,
        "topology": point.report.topology,
        "area_mm2": point.area_mm2,
        "energy_uj": point.energy_uj,
        "latency_us": point.latency_us,
        "power_w": point.report.power_w,
        "edp_uj_us": point.edp_uj_us,
        "supports_online_learning": point.supports_online_learning,
    }


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .hardware.explorer import Requirements, recommend

    requirements = Requirements(
        max_area_mm2=args.max_area,
        max_latency_us=args.max_latency,
        max_energy_uj=args.max_energy,
        needs_online_learning=args.online_learning,
        accuracy_critical=args.accuracy_critical,
    )
    result = recommend(
        requirements, mnist_mlp_config(), mnist_snn_config(), prefer=args.prefer
    )
    if getattr(args, "json", False):
        # Stable keys, matching the serve-health --json convention.
        doc = {
            "chosen": (
                _design_point_doc(result.chosen)
                if result.chosen is not None
                else None
            ),
            "feasible_count": len(result.feasible),
            "prefer": args.prefer,
            "reasons": list(result.reasons),
            "requirements": {
                "max_area_mm2": requirements.max_area_mm2,
                "max_latency_us": requirements.max_latency_us,
                "max_energy_uj": requirements.max_energy_uj,
                "needs_online_learning": requirements.needs_online_learning,
                "accuracy_critical": requirements.accuracy_critical,
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(result.summary())
    return 0 if result.chosen is not None else 1


def _parse_int_axis(spec: str) -> tuple:
    """Parse a grid axis: comma list and/or ``start:stop[:step]`` ranges."""
    values: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            pieces = part.split(":")
            if len(pieces) not in (2, 3):
                raise ValueError(f"bad range {part!r}; use start:stop[:step]")
            start, stop = int(pieces[0]), int(pieces[1])
            step = int(pieces[2]) if len(pieces) == 3 else 1
            if step < 1:
                raise ValueError(f"range step must be >= 1 in {part!r}")
            values.extend(range(start, stop + 1, step))
        else:
            values.append(int(part))
    return tuple(dict.fromkeys(values))


def _cmd_explore(args: argparse.Namespace) -> int:
    from .core.errors import HardwareModelError
    from .hardware import sweep as sweep_mod

    _apply_cache_flags(args)
    try:
        hidden = _parse_int_axis(args.hidden)
        fold = _parse_int_axis(args.fold)
        bits = _parse_int_axis(args.bits)
    except ValueError as error:
        print(error, file=sys.stderr)
        return EXIT_USAGE
    families = tuple(
        s.strip() for s in args.families.split(",") if s.strip()
    )
    nodes = tuple(s.strip() for s in args.nodes.split(",") if s.strip())
    try:
        grid = sweep_mod.SweepGrid(
            hidden_sizes=hidden,
            families=families,
            fold_factors=fold,
            weight_bits=bits,
            nodes=nodes,
            mlp_config=mnist_mlp_config(),
            snn_config=mnist_snn_config(),
        ).validate()
        constraints = sweep_mod.Constraints(
            max_area_mm2=args.max_area,
            max_energy_uj=args.max_energy,
            max_latency_us=args.max_latency,
            max_power_w=args.max_power,
            needs_online_learning=args.online_learning,
        )
        result = sweep_mod.run_sweep(grid, jobs=args.jobs)
        doc: dict = {
            "grid": {
                "points": result.n_points,
                "families": sorted(set(families), key=sweep_mod.FAMILIES.index),
                "fold_factors": sorted(set(fold)),
                "weight_bits": sorted(set(bits)),
                "nodes": list(nodes),
                "hidden_sizes": len(hidden),
            },
            "constraints": {
                "max_area_mm2": args.max_area,
                "max_energy_uj": args.max_energy,
                "max_latency_us": args.max_latency,
                "max_power_w": args.max_power,
                "needs_online_learning": args.online_learning,
            },
            "metric": args.metric,
        }
        best = sweep_mod.best_index(result, args.metric, constraints)
        doc["best"] = result.point(best) if best is not None else None
        if args.top > 1:
            top = sweep_mod.top_indices(result, args.metric, args.top, constraints)
            doc["top"] = [result.point(int(i)) for i in top]
        if args.pareto:
            objectives = tuple(
                s.strip() for s in args.pareto.split(",") if s.strip()
            )
            idx = sweep_mod.pareto_indices(result, objectives)
            doc["pareto"] = {
                "objectives": list(objectives),
                "count": int(idx.shape[0]),
                "points": [
                    result.point(int(i)) for i in idx[: args.pareto_limit]
                ],
            }
        if args.compare:
            doc["compare"] = sweep_mod.snn_vs_ann(
                result, args.metric, constraints
            )
    except HardwareModelError as error:
        print(error, file=sys.stderr)
        return EXIT_USAGE
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"exploration written to {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        _render_explore(doc)
    return 0 if doc["best"] is not None else 1


def _format_point(point: dict) -> str:
    return (
        f"{point['family']} {point['variant']} h={point['hidden']} "
        f"w{point['weight_bits']} @{point['node']}: "
        f"area {point['total_area_mm2']:.3g} mm^2, "
        f"energy {point['energy_per_image_uj']:.3g} uJ, "
        f"latency {point['latency_us']:.3g} us, "
        f"edp {point['edp_uj_us']:.3g} uJ.us"
    )


def _render_explore(doc: dict) -> None:
    grid = doc["grid"]
    print(
        f"explored {grid['points']:,} design points "
        f"({'/'.join(grid['families'])}; fold {grid['fold_factors']}; "
        f"bits {grid['weight_bits']}; nodes {', '.join(grid['nodes'])})"
    )
    active = {
        k: v for k, v in doc["constraints"].items() if v not in (None, False)
    }
    if active:
        print("constraints: " + ", ".join(f"{k}={v}" for k, v in sorted(active.items())))
    if doc["best"] is None:
        print(f"no feasible design point for metric {doc['metric']!r}")
    else:
        print(f"best {doc['metric']}: {_format_point(doc['best'])}")
    for point in doc.get("top", [])[1:]:
        print(f"  next: {_format_point(point)}")
    if "pareto" in doc:
        pareto = doc["pareto"]
        print(
            f"pareto frontier ({' x '.join(pareto['objectives'])}): "
            f"{pareto['count']} point(s)"
        )
        for point in pareto["points"]:
            print(f"  {_format_point(point)}")
        if pareto["count"] > len(pareto["points"]):
            print(f"  ... {pareto['count'] - len(pareto['points'])} more")
    if "compare" in doc:
        comparison = doc["compare"]
        print(f"SNN vs ANN on {comparison['metric']}:")
        for side in ("ann", "snn"):
            point = comparison[side]
            label = side.upper()
            if point is None:
                print(f"  {label}: no feasible point")
            else:
                print(f"  {label}: {_format_point(point)}")
        if comparison["snn_over_ann"] is not None:
            print(
                f"  winner: {comparison['winner']} "
                f"(snn/ann = {comparison['snn_over_ann']:.3g})"
            )


def _cmd_sample(args: argparse.Namespace) -> int:
    from .datasets import load_digits, load_shapes, load_spoken

    loaders = {"digits": load_digits, "shapes": load_shapes, "spoken": load_spoken}
    if args.dataset not in loaders:
        print(f"unknown dataset {args.dataset!r}; choose from {sorted(loaders)}")
        return 1
    train, _test = loaders[args.dataset](n_train=max(args.count, 10), n_test=10)
    side = train.side
    sheet = dataset_contact_sheet(
        train.images[: args.count].astype(float), side, columns=args.columns
    )
    print(ascii_image(sheet))
    return 0


def _cmd_fields(args: argparse.Namespace) -> int:
    from .analysis.visualize import receptive_field_sheet
    from .datasets import load_digits
    from .snn.network import SNNTrainer, SpikingNetwork

    train, _test = load_digits(n_train=args.images, n_test=10)
    config = mnist_snn_config(epochs=args.epochs).with_neurons(args.neurons)
    network = SpikingNetwork(config)
    SNNTrainer(network).fit(train)
    sheet = receptive_field_sheet(network.weights, side=28, columns=args.columns)
    print(ascii_image(sheet))
    return 0


def _finish_chaos(payload, args: argparse.Namespace, chaos_passed) -> int:
    """Shared tail of every chaos run: render, verdict, optional dump."""
    from .serve.metrics import dump_stats, render_stats

    print(render_stats(payload))
    invariants = payload.get("chaos", {}).get("invariants", {})
    print(
        "chaos invariants: "
        + ", ".join(
            f"{k}={'yes' if v else 'NO'}" for k, v in sorted(invariants.items())
        )
    )
    if args.output:
        dump_stats(payload, args.output)
        print(f"stats written to {args.output}")
    return 0 if chaos_passed(payload) else 1


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from .core.errors import BackendError, ServingError
    from .serve.loadgen import KNOWN_MODELS, run_loadtest
    from .serve.metrics import dump_stats, render_stats

    _apply_cache_flags(args)
    models = [s.strip() for s in args.model.split(",") if s.strip()]
    unknown = sorted(set(models) - set(KNOWN_MODELS))
    if not models or unknown:
        print(
            f"unknown model(s) {unknown or models}; "
            f"pick from {list(KNOWN_MODELS)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if not 0.0 <= args.audit_rate <= 1.0:
        print(
            f"--audit-rate must be in [0, 1], got {args.audit_rate}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.scrub_period is not None and args.scrub_period <= 0:
        print(
            f"--scrub-period must be positive, got {args.scrub_period}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.chaos is not None:
        from .serve.chaos import (
            LEARNING_SCENARIOS,
            SCENARIOS,
            chaos_passed,
            run_chaos,
            run_learning_chaos,
        )

        if args.chaos == "list":
            print("chaos scenarios (loadtest --chaos <id>):")
            for sid, scenario in sorted(SCENARIOS.items()):
                print(f"  {sid:<18} {scenario.description}")
            print("learning scenarios (learn-serve --chaos <id>):")
            for sid, scenario in sorted(LEARNING_SCENARIOS.items()):
                print(f"  {sid:<18} {scenario.description}")
            return 0
        if args.chaos in LEARNING_SCENARIOS:
            # Learning scenarios run the learn-serve driver; shape
            # knobs the scenario owns (jobs, windows) stay its own.
            try:
                payload = run_learning_chaos(
                    args.chaos,
                    dataset=args.dataset,
                    seed=args.seed,
                    concurrency=args.concurrency if args.concurrency else None,
                    max_batch=args.max_batch,
                    max_wait_us=args.max_wait_us,
                    max_queue=args.max_queue,
                )
            except ServingError as error:
                print(error, file=sys.stderr)
                return 1
            return _finish_chaos(payload, args, chaos_passed)
        if args.chaos not in SCENARIOS:
            print(
                f"unknown chaos scenario {args.chaos!r}; "
                f"pick one of {sorted(SCENARIOS) + sorted(LEARNING_SCENARIOS)} "
                "(or 'list')",
                file=sys.stderr,
            )
            return EXIT_USAGE
        try:
            payload = run_chaos(
                scenario=args.chaos,
                models=models,
                dataset=args.dataset,
                seed=args.seed,
                max_batch=args.max_batch,
                max_wait_us=args.max_wait_us,
                max_queue=args.max_queue,
                duration_seconds=args.duration if args.duration else None,
                concurrency=args.concurrency if args.concurrency else None,
                deadline_ms=args.deadline_ms,
                max_task_retries=args.max_retries,
            )
        except ServingError as error:
            print(error, file=sys.stderr)
            return 1
        return _finish_chaos(payload, args, chaos_passed)
    try:
        payload = run_loadtest(
            models=models,
            dataset=args.dataset,
            jobs=args.jobs,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            max_queue=args.max_queue,
            duration_seconds=args.duration if args.duration is not None else 5.0,
            concurrency=args.concurrency if args.concurrency is not None else 8,
            mode=args.mode,
            offered_rps=args.rps,
            seed=args.seed,
            verify=not args.no_verify,
            deadline_ms=args.deadline_ms,
            max_retries=args.max_retries,
            engine=args.engine,
            backend=args.backend,
            audit_rate=args.audit_rate,
            scrub_period=args.scrub_period,
        )
    except BackendError as error:
        print(error, file=sys.stderr)
        return EXIT_USAGE
    except ServingError as error:
        print(error, file=sys.stderr)
        return 1
    print(render_stats(payload))
    verified = payload.get("bit_identical")
    if verified is not None:
        ok = all(verified.values())
        print(
            "bit-identical to direct predictions: "
            + (", ".join(f"{k}={'yes' if v else 'NO'}" for k, v in sorted(verified.items())))
        )
        if not ok:
            return 1
    if args.output:
        dump_stats(payload, args.output)
        print(f"stats written to {args.output}")
    return 0


def _tiny_model_for_kind(kind: str):
    """A small untrained model of one kind (ir-dump needs shapes only)."""
    import numpy as np

    from .core.config import MLPConfig, SNNConfig

    if kind in ("mlp", "mlp-q"):
        from .mlp.network import MLP

        mlp = MLP(MLPConfig(n_hidden=8).validate())
        if kind == "mlp":
            return mlp
        from .mlp.quantized import QuantizedMLP

        return QuantizedMLP(mlp)
    snn_config = SNNConfig().with_neurons(10).validate()
    if kind == "snnbp":
        from .snn.snn_bp import BackPropSNN

        return BackPropSNN(snn_config)
    from .snn.network import SpikingNetwork

    network = SpikingNetwork(snn_config)
    # ir-dump shows structure, not accuracy: a fabricated labeling
    # pass is enough to satisfy the compiler's labeled-model guard.
    network.neuron_labels = np.arange(snn_config.n_neurons) % snn_config.n_labels
    if kind == "snnwt":
        return network
    from .snn.snn_wot import SNNWithoutTime

    return SNNWithoutTime(network)


def _cmd_ir_dump(args: argparse.Namespace) -> int:
    from .core.errors import BackendError
    from .ir import PLAN_KINDS, compile_model

    if args.kind not in PLAN_KINDS:
        print(
            f"unknown model kind {args.kind!r}; pick from {list(PLAN_KINDS)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    engine = None
    if args.backend is not None:
        from .ir.backends import get_backend

        try:
            engine = get_backend(args.backend, require_available=False)
        except BackendError as error:
            print(error, file=sys.stderr)
            return EXIT_USAGE
    plan = compile_model(_tiny_model_for_kind(args.kind), kind=args.kind)
    backend_doc = None
    if engine is not None:
        backend_doc = engine.describe()
        backend_doc["supports_plan"] = engine.supports(plan) is None
        backend_doc["refusal"] = engine.supports(plan)
    if args.json:
        doc = plan.to_doc()
        if backend_doc is not None:
            doc["backend"] = backend_doc
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(plan.listing())
        if backend_doc is not None:
            status = (
                "available"
                if backend_doc["available"]
                else f"unavailable ({backend_doc['unavailable_reason']})"
            )
            verdict = (
                "supports this plan"
                if backend_doc["supports_plan"]
                else f"refuses this plan: {backend_doc['refusal']}"
            )
            print(f"backend {backend_doc['name']}: {status}; {verdict}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from .ir.backends import DEFAULT_BACKEND, ENV_VAR, list_backends

    entries = list_backends()
    if args.json:
        doc = {
            "backends": entries,
            "default": DEFAULT_BACKEND,
            "env_var": ENV_VAR,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    for entry in entries:
        marker = "*" if entry["default"] else " "
        status = (
            "available"
            if entry["available"]
            else f"unavailable: {entry['unavailable_reason']}"
        )
        print(f"{marker} {entry['name']:<12} {status:<12} {entry['description']}")
    print(
        f"* = default; precedence: --backend flag > ${ENV_VAR} > "
        f"{DEFAULT_BACKEND}"
    )
    return 0


def _cmd_learn_serve(args: argparse.Namespace) -> int:
    """Live continual learning under load (``repro learn-serve``)."""
    from .core.errors import ServingError
    from .serve.chaos import LEARNING_SCENARIOS, chaos_passed
    from .serve.learner import run_learn_serve

    _apply_cache_flags(args)
    if args.chaos == "list":
        print("learning scenarios (learn-serve --chaos <id>):")
        for sid, scenario in sorted(LEARNING_SCENARIOS.items()):
            print(f"  {sid:<18} {scenario.description}")
        return 0
    if args.chaos not in LEARNING_SCENARIOS:
        print(
            f"unknown learning scenario {args.chaos!r}; "
            f"pick one of {sorted(LEARNING_SCENARIOS)} (or 'list')",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        payload = run_learn_serve(
            args.chaos,
            dataset=args.dataset,
            seed=args.seed,
            jobs=args.jobs,
            windows=args.windows,
            window_size=args.window_size,
            concurrency=args.concurrency,
            snapshot_dir=args.snapshot_dir,
        )
    except ServingError as error:
        print(error, file=sys.stderr)
        return 1
    return _finish_chaos(payload, args, chaos_passed)


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    """Offline cache audit: every entry against its SHA-256 sidecar.

    Exit 0 when every entry verifies, 1 when any is corrupt (the CI
    contract for the corruption-smoke job).  ``--evict`` deletes
    corrupt entries so the next run recomputes them from scratch.
    """
    from .core.artifacts import verify_cache

    _apply_cache_flags(args)
    report = verify_cache(evict=args.evict)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"cache directory: {report['directory']}")
        print(
            f"checked {report['checked']} entry(ies): "
            f"{report['verified']} verified, "
            f"{report['corrupt']} corrupt, "
            f"{report['missing_sidecar']} missing sidecar"
            + (f", {report['evicted']} evicted" if args.evict else "")
        )
        for entry in report["entries"]:
            if entry["status"] != "verified":
                suffix = "  [evicted]" if entry.get("evicted") else ""
                print(f"  {entry['status']:<16} {entry['path']}{suffix}")
    return 1 if report["corrupt"] else 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    from .serve.metrics import load_stats, render_stats

    try:
        payload = load_stats(args.file)
    except (OSError, ValueError) as error:
        print(f"cannot read {args.file!r}: {error}", file=sys.stderr)
        return 1
    print(render_stats(payload))
    return 0


def _cmd_serve_health(args: argparse.Namespace) -> int:
    """Readiness probe over a stats payload: exit 0 only when ready."""
    from .serve.metrics import load_stats, render_health

    try:
        payload = load_stats(args.file)
    except (OSError, ValueError) as error:
        print(f"cannot read {args.file!r}: {error}", file=sys.stderr)
        return 1
    health = payload.get("health", payload)
    ready = isinstance(health, dict) and bool(health.get("ready"))
    if getattr(args, "json", False):
        view = health if isinstance(health, dict) else {}
        doc = {
            "ready": ready,
            "live": bool(view.get("live", ready)),
            "models": view.get("models", {}),
            "pool": view.get("pool"),
            "learner": view.get("learner"),
            "integrity": view.get("integrity"),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_health(payload))
    return 0 if ready else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Neuromorphic Accelerators' (MICRO 2015)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments").set_defaults(
        fn=_cmd_list
    )

    report = subparsers.add_parser("report", help="run experiments and print tables")
    report.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    report.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per experiment (resilient runner)",
    )
    report.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per attempt",
    )
    report.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="initial retry backoff (doubles per retry)",
    )
    report.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for trained-model checkpoints (resume skips retraining)",
    )
    report.add_argument(
        "--degrade-scales",
        default="",
        metavar="S1,S2,...",
        help="comma-separated fallback scales tried after retries are exhausted",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent experiments across N worker processes "
        "(deterministic id-ordered output; 1 = serial)",
    )
    report.add_argument(
        "--timings",
        action="store_true",
        help="print a per-phase (train / eval / hardware-sim) wall-clock "
        "breakdown after the report",
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed trained-model cache",
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="override the trained-model cache directory "
        "(default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    report.set_defaults(fn=_cmd_report)

    recommend_parser = subparsers.add_parser(
        "recommend", help="designer guidance (paper question 3)"
    )
    recommend_parser.add_argument("--max-area", type=float, default=None)
    recommend_parser.add_argument("--max-latency", type=float, default=None)
    recommend_parser.add_argument("--max-energy", type=float, default=None)
    recommend_parser.add_argument("--online-learning", action="store_true")
    recommend_parser.add_argument("--accuracy-critical", action="store_true")
    recommend_parser.add_argument(
        "--prefer",
        choices=("area", "energy", "latency", "power", "edp"),
        default="energy",
    )
    recommend_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the recommendation as a stable-keys JSON document",
    )
    recommend_parser.set_defaults(fn=_cmd_recommend)

    explore = subparsers.add_parser(
        "explore",
        help="vectorized design-space sweep: best point, Pareto, SNN vs ANN",
    )
    explore.add_argument(
        "--hidden",
        default="10:300:10",
        metavar="SPEC",
        help="hidden-layer axis: comma list and/or start:stop[:step] ranges "
        "(default: 10:300:10)",
    )
    explore.add_argument(
        "--families",
        default="MLP,SNNwot,SNNwt,SNN-online",
        metavar="F1,F2,...",
        help="accelerator families to sweep (default: all four)",
    )
    explore.add_argument(
        "--fold",
        default="0,1,2,4,8,16",
        metavar="SPEC",
        help="fold factors ni; 0 = fully expanded (default: 0,1,2,4,8,16)",
    )
    explore.add_argument(
        "--bits",
        default="8",
        metavar="SPEC",
        help="weight bit widths (default: 8)",
    )
    explore.add_argument(
        "--nodes",
        default="65nm",
        metavar="N1,N2,...",
        help="technology nodes, e.g. 90nm,65nm,45nm,28nm (default: 65nm)",
    )
    explore.add_argument(
        "--metric",
        default="edp",
        help="ranking metric for --top/--compare: "
        "area | energy | latency | power | edp (default: edp)",
    )
    explore.add_argument("--max-area", type=float, default=None, metavar="MM2")
    explore.add_argument("--max-energy", type=float, default=None, metavar="UJ")
    explore.add_argument("--max-latency", type=float, default=None, metavar="US")
    explore.add_argument("--max-power", type=float, default=None, metavar="W")
    explore.add_argument(
        "--online-learning",
        action="store_true",
        help="restrict to designs with on-chip learning (SNN-online)",
    )
    explore.add_argument(
        "--top",
        type=int,
        default=1,
        metavar="K",
        help="also list the K best feasible points (default: 1)",
    )
    explore.add_argument(
        "--pareto",
        default=None,
        metavar="OBJ1,OBJ2[,...]",
        help="extract the Pareto frontier over these objectives",
    )
    explore.add_argument(
        "--pareto-limit",
        type=int,
        default=10,
        metavar="N",
        help="max frontier points to print / embed in JSON (default: 10)",
    )
    explore.add_argument(
        "--compare",
        action="store_true",
        help="report the best SNN vs best ANN design on --metric",
    )
    explore.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate sweep shards across N threads (1 = serial)",
    )
    explore.add_argument(
        "--json",
        action="store_true",
        help="emit the full result document as stable-keys JSON on stdout",
    )
    explore.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON document to FILE",
    )
    explore.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed sweep-shard cache",
    )
    explore.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="override the cache directory "
        "(default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    explore.set_defaults(fn=_cmd_explore)

    sample = subparsers.add_parser("sample", help="ASCII contact sheet of a dataset")
    sample.add_argument("dataset", help="digits | shapes | spoken")
    sample.add_argument("--count", type=int, default=10)
    sample.add_argument("--columns", type=int, default=5)
    sample.set_defaults(fn=_cmd_sample)

    fields = subparsers.add_parser("fields", help="show trained SNN receptive fields")
    fields.add_argument("--neurons", type=int, default=20)
    fields.add_argument("--images", type=int, default=300)
    fields.add_argument("--epochs", type=int, default=1)
    fields.add_argument("--columns", type=int, default=5)
    fields.set_defaults(fn=_cmd_fields)

    loadtest = subparsers.add_parser(
        "loadtest", help="drive the serving layer with generated load"
    )
    loadtest.add_argument(
        "--model",
        default="snnwot",
        help="comma-separated served models: mlp, mlp-q, snnwt, snnwot, snnbp",
    )
    loadtest.add_argument(
        "--dataset", default="digits", help="digits | shapes | spoken"
    )
    loadtest.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker shard processes (0 = serve in-process)",
    )
    loadtest.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="largest coalesced batch per engine call",
    )
    loadtest.add_argument(
        "--max-wait-us",
        type=float,
        default=2000.0,
        help="batching window opened by the first queued request",
    )
    loadtest.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="admission-control queue bound (beyond it requests shed)",
    )
    loadtest.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds of load per model (default 5; chaos scenarios "
        "bring their own)",
    )
    loadtest.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="closed-loop client threads (default 8; chaos scenarios "
        "bring their own)",
    )
    loadtest.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed = fixed concurrency; open = fixed arrival rate",
    )
    loadtest.add_argument(
        "--rps",
        type=float,
        default=200.0,
        help="offered requests/second (open mode)",
    )
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--chaos",
        default=None,
        metavar="SCENARIO",
        help="run a deterministic chaos scenario instead of a plain "
        "load run (see repro.serve.chaos.SCENARIOS; exit 2 on unknown)",
    )
    loadtest.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request latency budget; doomed work sheds with a "
        "typed DeadlineExceeded instead of queueing",
    )
    loadtest.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="shard deaths one task may survive before it is "
        "quarantined as poisonous",
    )
    loadtest.add_argument(
        "--engine",
        choices=("plan", "legacy"),
        default="plan",
        help="execution backend: compiled IR plans (default) or the "
        "historical per-model runners",
    )
    loadtest.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="plan-execution backend (see 'repro backends'; default: "
        "$REPRO_IR_BACKEND, then numpy-tiled; exit 2 on unknown)",
    )
    loadtest.add_argument(
        "--audit-rate",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="fraction of served batches re-executed on the serial "
        "oracle and bit-compared (SDC audit lane; 0 disables and "
        "keeps the request path bit-identical to an audit-free run)",
    )
    loadtest.add_argument(
        "--scrub-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="background shared-memory integrity-scrub period "
        "(pool backends; default off)",
    )
    loadtest.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the served-vs-direct bit-identity check",
    )
    loadtest.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the full stats payload as JSON",
    )
    loadtest.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed trained-model cache",
    )
    loadtest.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="override the trained-model cache directory",
    )
    loadtest.set_defaults(fn=_cmd_loadtest)

    learn_serve = subparsers.add_parser(
        "learn-serve",
        help="live continual learning under load (exit 0 only when every "
        "learning invariant holds)",
    )
    learn_serve.add_argument(
        "--chaos",
        default="steady",
        metavar="SCENARIO",
        help="learning scenario id, or 'list' to enumerate (default: steady)",
    )
    learn_serve.add_argument(
        "--dataset",
        default="digits",
        choices=("digits", "shapes", "spoken"),
        help="labeled stream + probe dataset (default: digits)",
    )
    learn_serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker shards per model (0 = in-process; default: scenario)",
    )
    learn_serve.add_argument(
        "--windows",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's learning-window count",
    )
    learn_serve.add_argument(
        "--window-size",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's images per window",
    )
    learn_serve.add_argument(
        "--concurrency",
        type=int,
        default=None,
        metavar="N",
        help="closed-loop clients per tenant (default: scenario)",
    )
    learn_serve.add_argument("--seed", type=int, default=0)
    learn_serve.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="directory for versioned learner snapshots "
        "(default: <cache>/live-snapshots)",
    )
    learn_serve.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the stats payload as JSON",
    )
    learn_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trained-model cache for this run",
    )
    learn_serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="override the trained-model cache directory",
    )
    learn_serve.set_defaults(fn=_cmd_learn_serve)

    ir_dump = subparsers.add_parser(
        "ir-dump",
        help="print a model kind's compiled execution-IR plan "
        "(exit 2 on unknown kind)",
    )
    ir_dump.add_argument(
        "kind", help="model kind: mlp | mlp-q | snnwt | snnwot | snnbp"
    )
    ir_dump.add_argument(
        "--json",
        action="store_true",
        help="emit the plan document as stable-keys JSON",
    )
    ir_dump.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="annotate one execution backend's availability and whether "
        "it supports the compiled plan (exit 2 on unknown backend)",
    )
    ir_dump.set_defaults(fn=_cmd_ir_dump)

    backends = subparsers.add_parser(
        "backends",
        help="list the registered plan-execution backends and their "
        "availability",
    )
    backends.add_argument(
        "--json",
        action="store_true",
        help="emit the backend listing as stable-keys JSON",
    )
    backends.set_defaults(fn=_cmd_backends)

    cache = subparsers.add_parser(
        "cache", help="artifact-cache maintenance (verify integrity)"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_verify = cache_sub.add_parser(
        "verify",
        help="audit every cache entry against its SHA-256 sidecar "
        "(exit 1 when any entry is corrupt)",
    )
    cache_verify.add_argument(
        "--evict",
        action="store_true",
        help="delete corrupt entries so the next run recomputes them",
    )
    cache_verify.add_argument(
        "--json",
        action="store_true",
        help="emit the audit report as a stable-keys JSON document",
    )
    cache_verify.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="override the cache directory "
        "(default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    cache_verify.set_defaults(fn=_cmd_cache_verify)

    serve_stats = subparsers.add_parser(
        "serve-stats", help="pretty-print a serving stats JSON file"
    )
    serve_stats.add_argument("file", help="stats JSON written by loadtest --output")
    serve_stats.set_defaults(fn=_cmd_serve_stats)

    serve_health = subparsers.add_parser(
        "serve-health",
        help="readiness/liveness view of a stats JSON (exit 0 only "
        "when ready)",
    )
    serve_health.add_argument(
        "file", help="stats JSON written by loadtest --output"
    )
    serve_health.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable health JSON with stable keys",
    )
    serve_health.set_defaults(fn=_cmd_serve_health)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
