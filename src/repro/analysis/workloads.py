"""Validation workloads and the TrueNorth comparison (Sections 4.5, 5).

Section 4.5 re-runs the whole accuracy + folded-hardware comparison on
the object-recognition (MPEG-7) and speech (Spoken Arabic Digits)
substitutes; Section 5 compares the folded SNNwot (ni=1) against the
reimplemented TrueNorth core.
"""

from __future__ import annotations

from ..core.config import (
    mnist_snn_config,
    mpeg7_mlp_config,
    mpeg7_snn_config,
    sad_mlp_config,
    sad_snn_config,
)
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..hardware.folded import FOLD_FACTORS, folded_mlp, folded_snn_wot
from ..hardware.truenorth import TrueNorthClassifier, truenorth_report
from ..mlp.trainer import evaluate_mlp
from ..snn.network import SNNTrainer
from ..snn.snn_wot import relabel_for_counts
from . import common

PAPER_SEC45 = [
    {"workload": "MPEG-7", "model": "MLP (28x28-15-10)", "accuracy": 99.7},
    {"workload": "MPEG-7", "model": "SNN (28x28-90)", "accuracy": 92.0},
    {"workload": "MPEG-7", "model": "SNNwot/MLP area ratio ni=1..16", "low": 3.81, "high": 5.57},
    {"workload": "MPEG-7", "model": "SNNwot/MLP energy ratio ni=1..16", "low": 3.20, "high": 5.08},
    {"workload": "SAD", "model": "MLP (13x13-60-10)", "accuracy": 91.35},
    {"workload": "SAD", "model": "SNN (13x13-90)", "accuracy": 74.7},
    {"workload": "SAD", "model": "SNNwot/MLP area ratio ni=1..16", "low": 1.27, "high": 1.31},
    {"workload": "SAD", "model": "SNNwot/MLP energy ratio ni=1..16", "low": 1.24, "high": 1.26},
]


def _hardware_ratios(mlp_config, snn_config) -> dict:
    """SNNwot-over-MLP folded area and energy ratio ranges over ni."""
    area_ratios = []
    energy_ratios = []
    for ni in FOLD_FACTORS:
        snn_report = folded_snn_wot(snn_config, ni)
        mlp_report = folded_mlp(mlp_config, ni)
        area_ratios.append(snn_report.total_area_mm2 / mlp_report.total_area_mm2)
        energy_ratios.append(
            snn_report.energy_per_image_uj / mlp_report.energy_per_image_uj
        )
    return {
        "area_low": round(min(area_ratios), 2),
        "area_high": round(max(area_ratios), 2),
        "energy_low": round(min(energy_ratios), 2),
        "energy_high": round(max(energy_ratios), 2),
    }


@register("sec45", "Validation on MPEG-7 and SAD workloads", "Section 4.5")
def sec45_workloads(
    mlp_epochs: int = 80, snn_epochs: int = 3, **_ignored
) -> ExperimentResult:
    """Accuracy and folded-hardware ratios on the two extra workloads.

    The paper's conclusion to reproduce: on both workloads the SNN is
    less accurate than the MLP *and* the folded SNNwot costs more area
    and energy than the folded MLP (by a large factor on MPEG-7, a
    small one on SAD whose MLP is relatively bigger).
    """
    rows = []
    for workload, loader, mlp_cfg, snn_cfg in (
        ("MPEG-7", common.shapes, mpeg7_mlp_config(), mpeg7_snn_config()),
        ("SAD", common.spoken, sad_mlp_config(), sad_snn_config()),
    ):
        train_set, test_set = loader()
        mlp = common.train_mlp_model(mlp_cfg, train_set, epochs=mlp_epochs)
        rows.append(
            {
                "workload": workload,
                "model": f"MLP ({mlp_cfg.topology})",
                "accuracy": common.accuracy_percent(evaluate_mlp(mlp, test_set)),
            }
        )
        snn = common.train_snn_model(snn_cfg, train_set, epochs=snn_epochs)
        result = SNNTrainer(snn).evaluate(test_set)
        rows.append(
            {
                "workload": workload,
                "model": f"SNN ({snn_cfg.topology})",
                "accuracy": common.accuracy_percent(result),
            }
        )
        ratios = _hardware_ratios(mlp_cfg, snn_cfg)
        rows.append(
            {
                "workload": workload,
                "model": "SNNwot/MLP area ratio ni=1..16",
                "low": ratios["area_low"],
                "high": ratios["area_high"],
            }
        )
        rows.append(
            {
                "workload": workload,
                "model": "SNNwot/MLP energy ratio ni=1..16",
                "low": ratios["energy_low"],
                "high": ratios["energy_high"],
            }
        )
    return ExperimentResult(
        experiment_id="sec45",
        title="Validation on object-recognition and speech workloads",
        rows=rows,
        paper_rows=list(PAPER_SEC45),
        notes="Synthetic substitutes; compare orderings and ratio directions.",
    )


PAPER_SEC5 = [
    {"design": "SNNwot folded ni=1", "area_mm2": 3.17, "time_us": 0.98, "energy_uj": 1.03, "accuracy": 90.85},
    {"design": "TrueNorth core", "area_mm2": 3.30, "time_us": 1024.0, "energy_uj": 2.48, "accuracy": 89.0},
]


@register("sec5", "SNNwot vs reimplemented TrueNorth core", "Section 5")
def sec5_truenorth(snn_epochs: int = 3, **_ignored) -> ExperimentResult:
    """The TrueNorth comparison.

    A 256-neuron SNN (the core's neuron capacity) is trained with
    STDP; its SNNwot readout gives the accelerator side, and the same
    weights mapped onto the TrueNorth crossbar format (binary
    connectivity x 4 axon-type weights) give the TrueNorth side, which
    loses accuracy to the quantization — the paper's 90.85% vs 89%.
    """
    train_set, test_set = common.digits()
    config = mnist_snn_config().with_neurons(256)
    network = common.train_snn_model(config, train_set, epochs=snn_epochs)
    wot = relabel_for_counts(network, train_set)
    wot_accuracy = common.accuracy_percent(wot.evaluate(test_set))
    truenorth = TrueNorthClassifier(network)
    tn_accuracy = common.accuracy_percent(truenorth.evaluate(test_set))

    snn_report = folded_snn_wot(mnist_snn_config(), 1)
    tn_report = truenorth_report()
    rows = [
        {
            "design": "SNNwot folded ni=1",
            "area_mm2": round(snn_report.total_area_mm2, 2),
            "time_us": round(snn_report.time_per_image_us, 2),
            "energy_uj": round(snn_report.energy_per_image_uj, 2),
            "accuracy": wot_accuracy,
        },
        {
            "design": "TrueNorth core",
            "area_mm2": round(tn_report.total_area_mm2, 2),
            "time_us": round(tn_report.time_per_image_us, 2),
            "energy_uj": round(tn_report.energy_per_image_uj, 2),
            "accuracy": tn_accuracy,
        },
    ]
    return ExperimentResult(
        experiment_id="sec5",
        title="SNNwot (ni=1) vs reimplemented TrueNorth core",
        rows=rows,
        paper_rows=list(PAPER_SEC5),
        notes=(
            "Accuracies from a 256-neuron network (core capacity); cost side "
            "of TrueNorth anchored to the paper's 65nm reimplementation."
        ),
    )
