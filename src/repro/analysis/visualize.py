"""Text/PGM visualization helpers (no plotting dependencies).

The paper's Figures 3 (spike raster + potential traces) and 9 (layout
thumbnails) are illustrations; this module provides equivalents that
work in a terminal or as portable graymap files:

* :func:`ascii_image` — an 8-bit image as ASCII art (receptive fields,
  dataset samples);
* :func:`spike_raster` — a Figure 3-style raster of one presentation;
* :func:`potential_trace` — per-neuron potential-vs-time sparkline;
* :func:`write_pgm` / :func:`receptive_field_sheet` — lossless P2 PGM
  export of weights/images for external viewers.
"""

from __future__ import annotations

import math
import pathlib
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ReproError
from ..snn.coding import SpikeTrain

#: Luminance ramp for ASCII rendering (dark to bright).
ASCII_RAMP = " .:-=+*#%@"


def ascii_image(image: np.ndarray, width: Optional[int] = None) -> str:
    """Render a 2-D array as ASCII art, normalizing to its own range."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 1:
        side = int(round(math.sqrt(image.size)))
        if side * side != image.size:
            raise ReproError(f"cannot square-reshape {image.size} pixels")
        image = image.reshape(side, side)
    if image.ndim != 2:
        raise ReproError(f"expected a 2-D image, got shape {image.shape}")
    lo, hi = float(image.min()), float(image.max())
    span = hi - lo if hi > lo else 1.0
    normalized = (image - lo) / span
    indices = np.minimum(
        (normalized * len(ASCII_RAMP)).astype(int), len(ASCII_RAMP) - 1
    )
    lines = ["".join(ASCII_RAMP[i] for i in row) for row in indices]
    return "\n".join(lines)


def spike_raster(
    train: SpikeTrain,
    n_rows: int = 24,
    n_bins: int = 60,
) -> str:
    """A Figure 3-style input-spike raster (one sampled input per row)."""
    if n_rows < 1 or n_bins < 1:
        raise ReproError("raster needs at least one row and one bin")
    sampled = np.linspace(0, train.n_inputs - 1, min(n_rows, train.n_inputs))
    lines = []
    for raw in sampled:
        pixel = int(round(raw))
        mask = train.inputs == pixel
        bins = np.minimum(
            (train.times[mask] / max(train.duration, 1e-9) * n_bins).astype(int),
            n_bins - 1,
        )
        row = ["."] * n_bins
        for b in bins:
            row[b] = "|"
        lines.append(f"{pixel:>4} {''.join(row)}")
    header = f"time 0 .. {train.duration:g} ms ({train.n_spikes} spikes total)"
    return header + "\n" + "\n".join(lines)


def potential_trace(
    potentials_over_time: np.ndarray,
    thresholds: Optional[np.ndarray] = None,
    width: int = 60,
) -> str:
    """Sparkline of each neuron's potential over time (Figure 3 right).

    ``potentials_over_time`` is (T, n_neurons); an ``x`` marks the
    first threshold crossing when thresholds are given.
    """
    potentials_over_time = np.asarray(potentials_over_time, dtype=np.float64)
    if potentials_over_time.ndim != 2:
        raise ReproError("potentials_over_time must be (T, n_neurons)")
    steps, n_neurons = potentials_over_time.shape
    sample = np.linspace(0, steps - 1, min(width, steps)).astype(int)
    ramp = " _.-=*#"
    peak = max(float(potentials_over_time.max()), 1e-9)
    lines = []
    for neuron in range(n_neurons):
        trace = potentials_over_time[sample, neuron] / peak
        chars = [ramp[min(int(v * (len(ramp) - 1) + 0.5), len(ramp) - 1)] for v in np.clip(trace, 0, 1)]
        if thresholds is not None:
            crossed = np.flatnonzero(
                potentials_over_time[sample, neuron] >= thresholds[neuron]
            )
            if crossed.size:
                chars[crossed[0]] = "x"
        lines.append(f"n{neuron:<3} {''.join(chars)}")
    return "\n".join(lines)


def write_pgm(path, image: np.ndarray, max_value: int = 255) -> pathlib.Path:
    """Write a 2-D array as an ASCII (P2) PGM file, self-normalized."""
    path = pathlib.Path(path)
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ReproError(f"expected a 2-D image, got shape {image.shape}")
    lo, hi = float(image.min()), float(image.max())
    span = hi - lo if hi > lo else 1.0
    pixels = np.round((image - lo) / span * max_value).astype(int)
    lines = [f"P2", f"{image.shape[1]} {image.shape[0]}", str(max_value)]
    for row in pixels:
        lines.append(" ".join(str(v) for v in row))
    path.write_text("\n".join(lines) + "\n")
    return path


def receptive_field_sheet(
    weights: np.ndarray,
    side: int,
    columns: int = 10,
    pad: int = 1,
) -> np.ndarray:
    """Tile per-neuron receptive fields into one sheet image.

    ``weights`` is (n_neurons, side*side); returns a 2-D array ready
    for :func:`write_pgm` or :func:`ascii_image`.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[1] != side * side:
        raise ReproError(
            f"weights must be (n, {side * side}), got {weights.shape}"
        )
    n = weights.shape[0]
    columns = max(1, min(columns, n))
    rows = math.ceil(n / columns)
    sheet = np.zeros((rows * (side + pad) - pad, columns * (side + pad) - pad))
    for index in range(n):
        r, c = divmod(index, columns)
        top, left = r * (side + pad), c * (side + pad)
        sheet[top : top + side, left : left + side] = weights[index].reshape(side, side)
    return sheet


def dataset_contact_sheet(images: np.ndarray, side: int, columns: int = 10) -> np.ndarray:
    """Tile dataset samples the same way (for eyeballing generators)."""
    return receptive_field_sheet(np.asarray(images, dtype=np.float64), side, columns)
