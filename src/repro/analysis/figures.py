"""Figure data: the paper's Figures 5, 6, 8 and 14.

Figures 1-4, 7 and 9-13 are block diagrams / layouts / illustrative
rasters with no quantitative series; everything with data behind it is
regenerated here.  Each experiment returns the plotted series as rows
(one row per point), which the report renders as a table.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.config import mnist_mlp_config, mnist_snn_config
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..mlp.activations import make_sigmoid, make_step, sigmoid, step
from ..mlp.network import MLP
from ..mlp.trainer import BackPropTrainer, evaluate_mlp
from ..snn.coding import GaussianCoder, RankOrderCoder, TimeToFirstSpikeCoder
from ..snn.network import SNNTrainer
from . import common

#: Sigmoid slopes the paper sweeps (Figures 5 and 6).
SLOPES = (1, 2, 4, 8, 16)


@register("fig5", "Activation function profiles", "Figure 5")
def fig5_activation_profiles(n_points: int = 11, **_ignored) -> ExperimentResult:
    """Sample sigmoid(a) for a in {1,...,16} and the step function.

    The check behind the figure: as a grows, the sigmoid converges
    pointwise to the step (except at 0); rows carry the max deviation.
    """
    xs = np.linspace(-5.0, 5.0, n_points)
    rows = []
    for slope in SLOPES:
        values = sigmoid(xs, slope)
        deviation = float(np.max(np.abs(values - step(xs))[np.abs(xs) > 0.5]))
        rows.append(
            {
                "activation": f"sigmoid(a={slope})",
                "f(-2)": round(float(sigmoid(np.array([-2.0]), slope)[0]), 4),
                "f(0)": 0.5,
                "f(2)": round(float(sigmoid(np.array([2.0]), slope)[0]), 4),
                "max_dev_from_step": round(deviation, 4),
            }
        )
    rows.append(
        {
            "activation": "step [0/1]",
            "f(-2)": 0.0,
            "f(0)": 0.0,
            "f(2)": 1.0,
            "max_dev_from_step": 0.0,
        }
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Parameterized sigmoid vs step profiles",
        rows=rows,
        paper_rows=[],
        notes="Deviation from step (|x|>0.5) decreases monotonically in a.",
    )


#: The paper's Figure 6 series (error rates, %), read off the plot.
PAPER_FIG6 = [
    {"activation": "sigmoid(a=1)", "error_percent": 2.35},
    {"activation": "sigmoid(a=2)", "error_percent": 2.45},
    {"activation": "sigmoid(a=4)", "error_percent": 2.60},
    {"activation": "sigmoid(a=8)", "error_percent": 2.75},
    {"activation": "sigmoid(a=16)", "error_percent": 2.85},
    {"activation": "step [0/1]", "error_percent": 2.90},
]


@register("fig6", "Bridging error rates between sigmoid and step", "Figure 6")
def fig6_bridging(epochs: int = 25, **_ignored) -> ExperimentResult:
    """Train the MLP at each sigmoid slope and with the hard step.

    The paper's claim: error increases with a and approaches the
    step-function error — i.e. the spike-style threshold nonlinearity
    costs only a fraction of a percent, so spike coding is a minor
    part of the SNN/MLP accuracy gap.
    """
    train_set, test_set = common.digits()
    rows = []
    for slope in SLOPES:
        config = replace(mnist_mlp_config(), sigmoid_slope=float(slope))
        network = MLP(config, activation=make_sigmoid(float(slope)))
        BackPropTrainer(network).train(train_set, epochs=epochs)
        error = 100.0 - evaluate_mlp(network, test_set).accuracy_percent
        rows.append(
            {"activation": f"sigmoid(a={slope})", "error_percent": round(error, 2)}
        )
    config = replace(mnist_mlp_config(), step_activation=True)
    network = MLP(config, activation=make_step())
    BackPropTrainer(network).train(train_set, epochs=epochs)
    error = 100.0 - evaluate_mlp(network, test_set).accuracy_percent
    rows.append({"activation": "step [0/1]", "error_percent": round(error, 2)})
    return ExperimentResult(
        experiment_id="fig6",
        title="MLP error vs sigmoid slope (and hard step)",
        rows=rows,
        paper_rows=list(PAPER_FIG6),
        notes="Expect error(step) close to error(a=16) >= error(a=1).",
    )


#: Figure 8 series (accuracy %, read off the plot).
PAPER_FIG8 = [
    {"model": "MLP", "neurons": 10, "accuracy": 91.0},
    {"model": "MLP", "neurons": 15, "accuracy": 92.1},
    {"model": "MLP", "neurons": 50, "accuracy": 96.5},
    {"model": "MLP", "neurons": 100, "accuracy": 97.65},
    {"model": "MLP", "neurons": 300, "accuracy": 97.9},
    {"model": "SNN", "neurons": 10, "accuracy": 60.0},
    {"model": "SNN", "neurons": 50, "accuracy": 82.0},
    {"model": "SNN", "neurons": 100, "accuracy": 88.0},
    {"model": "SNN", "neurons": 300, "accuracy": 91.82},
]

#: Sweep points used in the regeneration (kept small for runtime).
#: The MLP sweep reaches down to 3 hidden neurons because the
#: synthetic digits are easier than MNIST: capacity stops binding
#: around 8-10 hidden units here rather than ~50, so the knee of the
#: paper's curve sits lower on the axis (the shape is the claim).
MLP_SWEEP = (3, 5, 10, 15, 100, 300)
SNN_SWEEP = (10, 50, 100, 300)


@register("fig8", "Impact of neuron count on MLP and SNN accuracy", "Figure 8")
def fig8_neuron_sweep(
    mlp_epochs: int = 25, snn_epochs: int = 2, **_ignored
) -> ExperimentResult:
    """Accuracy vs neuron count for both models.

    The paper's shapes: the MLP plateaus around 100 hidden neurons and
    the SNN around 300, with the SNN strictly below the MLP.
    """
    train_set, test_set = common.digits()
    rows = []
    for hidden in MLP_SWEEP:
        config = mnist_mlp_config().with_hidden(hidden)
        network = common.train_mlp_model(config, train_set, epochs=mlp_epochs)
        rows.append(
            {
                "model": "MLP",
                "neurons": hidden,
                "accuracy": common.accuracy_percent(evaluate_mlp(network, test_set)),
            }
        )
    for neurons in SNN_SWEEP:
        config = mnist_snn_config().with_neurons(neurons)
        network = common.train_snn_model(config, train_set, epochs=snn_epochs)
        result = SNNTrainer(network).evaluate(test_set)
        rows.append(
            {
                "model": "SNN",
                "neurons": neurons,
                "accuracy": common.accuracy_percent(result),
            }
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Accuracy vs number of neurons",
        rows=rows,
        paper_rows=list(PAPER_FIG8),
        notes="Expect MLP plateau ~100 hidden, SNN plateau ~300, MLP > SNN.",
    )


#: Figure 14 series (accuracy %, read off the plot).
PAPER_FIG14 = [
    {"coding": "rate (Gaussian)", "neurons": 10, "accuracy": 55.0},
    {"coding": "rate (Gaussian)", "neurons": 50, "accuracy": 80.0},
    {"coding": "rate (Gaussian)", "neurons": 100, "accuracy": 87.0},
    {"coding": "rate (Gaussian)", "neurons": 300, "accuracy": 91.82},
    {"coding": "rank order", "neurons": 10, "accuracy": 50.0},
    {"coding": "rank order", "neurons": 50, "accuracy": 70.0},
    {"coding": "rank order", "neurons": 100, "accuracy": 76.0},
    {"coding": "rank order", "neurons": 300, "accuracy": 82.14},
    {"coding": "time-to-first-spike", "neurons": 10, "accuracy": 48.0},
    {"coding": "time-to-first-spike", "neurons": 50, "accuracy": 68.0},
    {"coding": "time-to-first-spike", "neurons": 100, "accuracy": 74.0},
    {"coding": "time-to-first-spike", "neurons": 300, "accuracy": 80.0},
]

FIG14_SWEEP = (10, 50, 100, 300)


@register("fig14", "SNN coding schemes comparison", "Figure 14")
def fig14_coding_schemes(
    snn_epochs: int = 2, sweep=FIG14_SWEEP, **_ignored
) -> ExperimentResult:
    """Rate coding (Gaussian) vs the two temporal codings.

    The paper's claim: temporal coding is significantly less accurate
    than rate coding on this task at every network size (82.14% vs
    91.82% at 300 neurons).  This run also doubles as the Section
    4.2.2 check that Gaussian rate coding matches Poisson (compare
    with table3's SNNwt row, which uses Poisson).
    """
    train_set, test_set = common.digits()
    rows = []
    coders = [
        ("rate (Gaussian)", GaussianCoder),
        ("rank order", RankOrderCoder),
        ("time-to-first-spike", TimeToFirstSpikeCoder),
    ]
    for name, coder_cls in coders:
        for neurons in sweep:
            config = mnist_snn_config().with_neurons(neurons)
            coder = coder_cls(
                duration=config.t_period,
                max_rate_interval=config.min_spike_interval,
            )
            network = common.train_snn_model(
                config, train_set, epochs=snn_epochs, coder=coder
            )
            result = SNNTrainer(network).evaluate(test_set)
            rows.append(
                {
                    "coding": name,
                    "neurons": neurons,
                    "accuracy": common.accuracy_percent(result),
                }
            )
    return ExperimentResult(
        experiment_id="fig14",
        title="SNN accuracy under different coding schemes",
        rows=rows,
        paper_rows=list(PAPER_FIG14),
        notes="Expect rate coding above both temporal codings at every size.",
    )
