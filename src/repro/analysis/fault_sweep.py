"""Accuracy-vs-fault-rate degradation curves (robustness study).

The paper compares MLP+BP and SNNwt/SNNwot on *clean* hardware; the
surrounding literature (e.g. Bouvier et al.'s SNN-hardware survey,
and the SNN-vs-CNN FPGA comparison of Plagwitz et al. — see
PAPERS.md) claims spiking substrates degrade *gracefully* under
hardware faults while dense MLP datapaths do not.  This experiment
tests that claim on the shared physical substrate of both designs:
the 8-bit SRAM weight banks (Table 6).  For each swept bit-error
rate, every stored weight code is corrupted through
:class:`repro.faults.FaultInjector` — the MLP's signed Q2.5 banks and
the SNN's unsigned [0, 255] bank alike — and the three inference
paths are re-evaluated on the same test set.

Faults are fully deterministic given the experiment seed: trial ``t``
of rate ``r`` reseeds the injector with a value derived from
``(seed, t)`` only, so the same seed always yields bit-identical
corruption and therefore identical accuracies.  Rate 0.0 runs the
*uninjected* code path (the hooks return their inputs unchanged), so
the first row of the sweep equals the clean accuracy exactly.

Run it via ``python -m repro report fault-sweep`` (optionally under
``--retries/--timeout/--checkpoint-dir``; the trained models are
checkpointed through :class:`repro.core.serialization.CheckpointStore`
when one is provided, so retries and re-runs skip retraining).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..core.config import MLPConfig, SNNConfig
from ..core.errors import ExperimentError
from ..core.experiment import ExperimentResult
from ..core.metrics import accuracy
from ..core.registry import register
from ..datasets.digits import load_digits
from ..faults import FaultConfig, FaultInjector, corrupt_spiking_network
from ..mlp.network import MLP
from ..mlp.quantized import QuantizedMLP
from ..mlp.trainer import BackPropTrainer
from ..snn.network import SNNTrainer, SpikingNetwork
from ..snn.snn_wot import SNNWithoutTime, relabel_for_counts

#: Default swept SRAM bit-error rates (per stored weight bit).
DEFAULT_RATES = (0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05)

#: Independent corruption draws averaged per rate (the curve stays
#: deterministic: trial seeds derive from the experiment seed).
DEFAULT_TRIALS = 3

#: Survey expectations the sweep is checked against (qualitative).
PAPER_CLAIMS = [
    {
        "model": "SNN (SNNwt / SNNwot)",
        "expectation": "graceful, near-linear accuracy roll-off under "
        "synaptic faults (Bouvier et al. 2019 survey)",
    },
    {
        "model": "MLP (8-bit datapath)",
        "expectation": "steeper degradation once bit flips reach signed "
        "weight MSBs (fault-tolerance literature on dense ANN datapaths)",
    },
]


def _scaled(value: int, scale: float, floor: int) -> int:
    return max(int(round(value * scale)), floor)


def _trial_seed(seed: int, trial: int) -> int:
    """Deterministic per-trial fault seed (independent of the rate)."""
    return int(seed) * 100_003 + 7919 * int(trial) + 1


@register(
    "fault-sweep",
    "Accuracy under SRAM weight faults (MLP vs SNNwt vs SNNwot)",
    "Robustness study (beyond the paper)",
)
def fault_sweep(
    scale: float = 1.0,
    rates: Optional[Iterable[float]] = None,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    checkpoint=None,
    mlp_epochs: int = 120,
    snn_epochs: int = 2,
) -> ExperimentResult:
    """Sweep SRAM weight BER and measure accuracy of all three models.

    Args:
        scale: fidelity knob in (0, 1] — scales dataset sizes and
            model widths (the ResilientRunner's degradation target).
        rates: swept bit-error rates (default :data:`DEFAULT_RATES`).
        trials: independent corruption draws averaged per rate.
        seed: experiment seed (datasets, training, fault streams).
        checkpoint: optional
            :class:`~repro.core.serialization.CheckpointStore`; when
            given, the trained MLP/SNN are checkpointed and re-runs
            (or retries after a crash) skip retraining.
        mlp_epochs / snn_epochs: training lengths of the two models.
    """
    if not 0.0 < scale <= 1.0:
        raise ExperimentError(f"scale must be in (0, 1], got {scale}")
    rate_list = [float(r) for r in (DEFAULT_RATES if rates is None else rates)]
    if not rate_list or any(not 0.0 <= r <= 1.0 for r in rate_list):
        raise ExperimentError(f"rates must be probabilities, got {rate_list}")
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")

    n_train = _scaled(240, scale, 60)
    n_test = _scaled(80, scale, 30)
    train_set, test_set = load_digits(n_train=n_train, n_test=n_test, seed=seed)

    mlp_config = MLPConfig(
        n_hidden=_scaled(24, scale, 8), learning_rate=0.5, epochs=120, seed=seed
    ).validate()
    snn_config = (
        SNNConfig(epochs=2, seed=seed)
        .with_neurons(_scaled(40, scale, 12))
        .validate()
    )

    def train_mlp() -> MLP:
        network = MLP(mlp_config)
        BackPropTrainer(network, batch_size=16).train(train_set, epochs=mlp_epochs)
        return network

    def train_snn() -> SpikingNetwork:
        network = SpikingNetwork(snn_config)
        SNNTrainer(network).fit(train_set, epochs=snn_epochs)
        return network

    tag = f"s{scale:g}-seed{seed}"
    if checkpoint is not None:
        mlp = checkpoint.load_or_train(f"fault-sweep-mlp-{tag}", train_mlp)
        snn = checkpoint.load_or_train(f"fault-sweep-snn-{tag}", train_snn)
    else:
        mlp = train_mlp()
        snn = train_snn()

    labels = np.asarray(test_set.labels)

    def injector_for(rate: float, trial: int) -> FaultInjector:
        config = FaultConfig(
            weight_bit_flip_ber=rate, seed=_trial_seed(seed, trial)
        )
        return FaultInjector(config)

    def mean_accuracy(
        predict_at: Callable[[FaultInjector], np.ndarray], rate: float
    ) -> float:
        values = [
            accuracy(predict_at(injector_for(rate, trial)), labels)
            for trial in range(trials)
        ]
        return 100.0 * float(np.mean(values))

    # --- MLP (8-bit fixed-point datapath) ------------------------------
    def mlp_predictions(injector: FaultInjector) -> np.ndarray:
        return QuantizedMLP(mlp, injector=injector).predict_dataset(test_set)

    mlp_curve = {rate: mean_accuracy(mlp_predictions, rate) for rate in rate_list}

    # --- SNNwt (timed LIF path; labels from the timed readout) ---------
    def snnwt_predictions(injector: FaultInjector) -> np.ndarray:
        corrupted = corrupt_spiking_network(snn, injector)
        return SNNTrainer(corrupted).predict(test_set)

    snnwt_curve = {
        rate: mean_accuracy(snnwt_predictions, rate) for rate in rate_list
    }

    # --- SNNwot (count readout; relabeled with its own readout) --------
    relabel_for_counts(snn, train_set)

    def snnwot_predictions(injector: FaultInjector) -> np.ndarray:
        return SNNWithoutTime(snn, injector=injector).predict_dataset(test_set)

    snnwot_curve = {
        rate: mean_accuracy(snnwot_predictions, rate) for rate in rate_list
    }

    def retention(curve, rate: float) -> float:
        clean = curve[rate_list[0]]
        return round(100.0 * curve[rate] / clean, 1) if clean > 0 else 0.0

    rows = [
        {
            "weight_ber": rate,
            "mlp8_acc": round(mlp_curve[rate], 2),
            "snnwt_acc": round(snnwt_curve[rate], 2),
            "snnwot_acc": round(snnwot_curve[rate], 2),
            "mlp8_ret%": retention(mlp_curve, rate),
            "snnwt_ret%": retention(snnwt_curve, rate),
            "snnwot_ret%": retention(snnwot_curve, rate),
        }
        for rate in rate_list
    ]
    return ExperimentResult(
        experiment_id="fault-sweep",
        title="Accuracy vs SRAM weight bit-error rate",
        rows=rows,
        paper_rows=list(PAPER_CLAIMS),
        notes=(
            f"{trials} corruption trial(s)/rate, deterministic in seed={seed}; "
            "ret% columns are accuracy retained relative to the first swept "
            "rate.  Synthetic digits at reduced scale — compare shapes, not "
            "absolute accuracies."
        ),
    )
