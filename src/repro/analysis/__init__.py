"""Regeneration of every quantitative table and figure of the paper.

Importing this package registers all experiments (one per paper
artifact) in :mod:`repro.core.registry`; use
:func:`repro.analysis.report.full_report` or the benchmark suite to
run them.
"""

from ..core import registry
from . import (  # noqa: F401
    fault_sweep,
    figures,
    scale_study,
    sensitivity,
    sweeps,
    tables_accuracy,
    tables_hardware,
    workloads,
)
from .report import full_report, render_result, render_table, run_and_render
from .visualize import (
    ascii_image,
    dataset_contact_sheet,
    potential_trace,
    receptive_field_sheet,
    spike_raster,
    write_pgm,
)

__all__ = [
    "registry",
    "full_report",
    "run_and_render",
    "render_result",
    "render_table",
    "ascii_image",
    "spike_raster",
    "potential_trace",
    "write_pgm",
    "receptive_field_sheet",
    "dataset_contact_sheet",
]
