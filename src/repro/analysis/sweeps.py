"""Design-space sweep experiment: Pareto frontier and SNN-vs-ANN axis.

The paper explores a handful of named design points (Tables 4-7); the
vectorized sweep engine (:mod:`repro.hardware.sweep`) lowers the same
calibrated cost model into columnar NumPy form so the *whole*
(family x fold factor x hidden width x bit width x node) space can be
evaluated at once.  This experiment runs a mid-size sweep, extracts
the area x latency Pareto frontier, and reports the SNN-vs-ANN
comparison at a few area budgets — the operating-point framing of the
SNN-vs-ANN efficiency debate (arXiv 2306.12742 / 2306.15749): which
camp wins depends on where in the design space you are allowed to sit.
"""

from __future__ import annotations

from ..core.config import MLPConfig, SNNConfig
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..hardware.sweep import (
    Constraints,
    SweepGrid,
    pareto_indices,
    run_sweep,
    snn_vs_ann,
)

#: Area budgets (mm^2) at which the SNN-vs-ANN winner is evaluated —
#: sub-embedded (0.15, where only the cheapest folded designs fit and
#: the MLP wins), embedded (1), and unconstrained (expanded SNN wins).
AREA_BUDGETS = (0.15, 1.0, None)


def _sweep_grid(scale: float) -> SweepGrid:
    """A mid-size grid; ``scale`` thins the hidden axis for smoke runs."""
    step = max(int(round(10 / max(scale, 1e-6))), 1)
    return SweepGrid(
        hidden_sizes=tuple(range(10, 301, step)),
        fold_factors=(0, 1, 2, 4, 8, 16),
        weight_bits=(4, 8, 16),
        mlp_config=MLPConfig().validate(),
        snn_config=SNNConfig().validate(),
    ).validate()


@register(
    "design-sweep",
    "Vectorized sweep: Pareto frontier and SNN-vs-ANN budgets",
    "Extension (Sections 4-7)",
)
def design_sweep(scale: float = 1.0, jobs: int = 1, **_ignored) -> ExperimentResult:
    """Pareto frontier + per-budget SNN-vs-ANN winners over a sweep."""
    grid = _sweep_grid(scale)
    result = run_sweep(grid, jobs=jobs)
    frontier = pareto_indices(result, ("area", "latency"))
    rows = []
    for i in frontier[:12]:
        point = result.point(int(i))
        rows.append(
            {
                "row": "pareto",
                "design": f"{point['family']} {point['variant']}",
                "hidden": point["hidden"],
                "weight_bits": point["weight_bits"],
                "area_mm2": round(point["total_area_mm2"], 3),
                "latency_us": round(point["latency_us"], 3),
                "edp_uj_us": round(point["edp_uj_us"], 4),
            }
        )
    for budget in AREA_BUDGETS:
        comparison = snn_vs_ann(
            result, "edp", Constraints(max_area_mm2=budget)
        )
        ratio = comparison["snn_over_ann"]
        rows.append(
            {
                "row": "snn-vs-ann",
                "design": f"area <= {budget} mm^2" if budget else "unconstrained",
                "winner": comparison["winner"],
                "snn_over_ann_edp": round(ratio, 4) if ratio is not None else None,
                "ann_best": (
                    f"{comparison['ann']['family']} {comparison['ann']['variant']}"
                    if comparison["ann"]
                    else None
                ),
                "snn_best": (
                    f"{comparison['snn']['family']} {comparison['snn']['variant']}"
                    if comparison["snn"]
                    else None
                ),
            }
        )
    return ExperimentResult(
        experiment_id="design-sweep",
        title=f"Design-space sweep ({result.n_points:,} points)",
        rows=rows,
        paper_rows=[],
        notes=(
            "Extension: vectorized cost-model sweep over the full "
            "(family x fold x hidden x bits) grid, bit-identical to the "
            "scalar constructors.  The area x latency frontier is folded "
            "designs at small area and expanded SNNs at large; the "
            "SNN-vs-ANN EDP winner flips with the area budget, the "
            "operating-point framing of arXiv 2306.12742 / 2306.15749."
        ),
    )
