"""Shared helpers for the experiment implementations.

Caches the synthetic datasets (several experiments share them) and
provides the standard scaled-down model-training recipes used across
tables and figures, so every experiment trains models the same way.

Scale note: the paper trains on 60,000 MNIST images; the experiment
defaults here use a few thousand synthetic images so the whole
benchmark suite regenerates in minutes on a laptop.  Absolute
accuracies therefore differ from the paper's; EXPERIMENTS.md records
both sides for every artifact.  Set the ``REPRO_SCALE`` environment
variable (e.g. ``REPRO_SCALE=2.0``) to scale all dataset sizes.
"""

from __future__ import annotations

import contextlib
import os
from functools import lru_cache
from typing import Any, Dict, List, Tuple

from ..core.artifacts import cached_train, coder_signature
from ..core.config import MLPConfig, SNNConfig
from ..core.timing import phase
from ..datasets.base import Dataset
from ..datasets.digits import load_digits
from ..datasets.shapes import load_shapes
from ..datasets.spoken import load_spoken
from ..mlp.network import MLP
from ..mlp.trainer import BackPropTrainer
from ..snn.network import SNNTrainer, SpikingNetwork
from ..snn.snn_bp import BackPropSNN


def scale_factor() -> float:
    """Global dataset scale multiplier from the REPRO_SCALE env var."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(value, 0.05)


def _scaled(n: int) -> int:
    return max(int(round(n * scale_factor())), 50)


#: Worker-side table of datasets attached from shared memory, primed
#: by :func:`_attach_shared_datasets` (the ``report --jobs`` pool
#: initializer).  Keyed by (loader name, n_train, n_test) *call*
#: arguments, so only the exact default invocations the parent
#: published resolve against the segment; any other size regenerates
#: locally.  Dataset generation is deterministic, so the shared path
#: is byte-identical to regeneration — sharing only saves the work and
#: the per-process memory.
_SHARED_DATASETS: Dict[Tuple[str, int, int], Tuple[Dataset, Dataset]] = {}

#: The attached bundle (kept referenced so the mapping stays alive for
#: the worker's lifetime).
_SHARED_BUNDLE = None

#: Published (n_train, n_test) defaults per loader — must match the
#: function signatures below.
_DATASET_DEFAULTS = {
    "digits": (2000, 500),
    "shapes": (1200, 300),
    "spoken": (1200, 300),
}


@lru_cache(maxsize=4)
def digits(n_train: int = 2000, n_test: int = 500) -> Tuple[Dataset, Dataset]:
    """The MNIST-substitute train/test pair (cached)."""
    shared = _SHARED_DATASETS.get(("digits", n_train, n_test))
    if shared is not None:
        return shared
    return load_digits(n_train=_scaled(n_train), n_test=_scaled(n_test))


@lru_cache(maxsize=2)
def shapes(n_train: int = 1200, n_test: int = 300) -> Tuple[Dataset, Dataset]:
    """The MPEG-7-substitute train/test pair (cached)."""
    shared = _SHARED_DATASETS.get(("shapes", n_train, n_test))
    if shared is not None:
        return shared
    return load_shapes(n_train=_scaled(n_train), n_test=_scaled(n_test))


@lru_cache(maxsize=2)
def spoken(n_train: int = 1200, n_test: int = 300) -> Tuple[Dataset, Dataset]:
    """The Spoken-Arabic-Digits-substitute train/test pair (cached)."""
    shared = _SHARED_DATASETS.get(("spoken", n_train, n_test))
    if shared is not None:
        return shared
    return load_spoken(n_train=_scaled(n_train), n_test=_scaled(n_test))


@contextlib.contextmanager
def shared_dataset_export(which: Tuple[str, ...] = ("digits", "shapes", "spoken")):
    """Publish the standard dataset pairs into shared memory.

    Yields ``(initializer, initargs)`` for a process pool: every worker
    runs ``initializer(*initargs)`` once at startup and thereafter
    resolves the default :func:`digits` / :func:`shapes` /
    :func:`spoken` calls against read-only views of the parent's one
    shared segment instead of regenerating its own copies.  When shared
    memory is unavailable (sandboxes without ``/dev/shm``), yields
    ``(None, ())`` — the pool then runs exactly as before; sharing is
    an optimization, never a requirement.

    The parent's own ``lru_cache`` is warmed as a side effect (the
    datasets must exist to be published), so serial portions of the
    run also skip regeneration.
    """
    from ..core.errors import ServingError
    from ..serve.shm import SharedArrayBundle

    loaders = {"digits": digits, "shapes": shapes, "spoken": spoken}
    arrays: Dict[str, Any] = {}
    meta: List[Dict[str, Any]] = []
    for name in which:
        train_set, test_set = loaders[name]()
        for split, dataset in (("train", train_set), ("test", test_set)):
            arrays[f"{name}/{split}/images"] = dataset.images
            arrays[f"{name}/{split}/labels"] = dataset.labels
        meta.append(
            {
                "loader": name,
                "key": _DATASET_DEFAULTS[name],
                "n_classes": train_set.n_classes,
                "dataset_name": train_set.name,
            }
        )
    try:
        bundle = SharedArrayBundle.create(arrays)
    except ServingError:
        yield None, ()
        return
    try:
        yield _attach_shared_datasets, (bundle.spec(), meta)
    finally:
        bundle.close(unlink=True)


def _attach_shared_datasets(bundle_spec, meta) -> None:
    """Pool initializer: attach the segment and prime the dataset table.

    Any failure falls back silently to local regeneration — the worker
    still produces byte-identical results, just without the sharing.
    """
    global _SHARED_BUNDLE
    import multiprocessing

    from ..core.errors import ServingError
    from ..serve.shm import SharedArrayBundle

    try:
        start_method = multiprocessing.get_start_method(allow_none=False)
    except Exception:  # pragma: no cover - platform quirk
        start_method = "spawn"
    try:
        bundle = SharedArrayBundle.attach(
            *bundle_spec, untrack=(start_method != "fork")
        )
    except ServingError:
        return
    _SHARED_BUNDLE = bundle
    for entry in meta:
        name = entry["loader"]
        pair = tuple(
            Dataset(
                images=bundle[f"{name}/{split}/images"],
                labels=bundle[f"{name}/{split}/labels"],
                n_classes=entry["n_classes"],
                name=entry["dataset_name"],
            )
            for split in ("train", "test")
        )
        _SHARED_DATASETS[(name, *entry["key"])] = pair


def train_mlp_model(
    config: MLPConfig, train_set: Dataset, epochs: int = 40
) -> MLP:
    """The standard MLP training recipe used by all experiments.

    Small batches matter at these dataset sizes: the paper's 60k-image
    epochs give BP ~1,900 updates per epoch, while a 1-2k-image
    synthetic set at batch 32 gives ~50 — so we train with batch 16
    and more epochs to land in the same update-count regime.

    Memoized through the content-addressed model cache
    (:mod:`repro.core.artifacts`): the ~10 experiments sharing this
    exact (config, dataset, epochs) train it once — per process pool,
    per repeated ``report`` invocation.  ``REPRO_NO_CACHE=1`` bypasses.
    """

    def _train() -> MLP:
        with phase("train"):
            network = MLP(config)
            BackPropTrainer(network, batch_size=16).train(train_set, epochs=epochs)
            return network

    return cached_train(
        "mlp",
        config,
        train_set,
        _train,
        train_params={"epochs": epochs, "batch_size": 16, "recipe": "bp-v1"},
    )


def train_snn_model(
    config: SNNConfig,
    train_set: Dataset,
    epochs: int = 3,
    coder=None,
) -> SpikingNetwork:
    """The standard SNN+STDP training recipe used by all experiments.

    Cached like :func:`train_mlp_model`; the coder participates in the
    cache key (it changes the training spike streams) and is re-attached
    after a cache hit, since the NPZ format stores only weights /
    thresholds / labels.
    """

    def _train() -> SpikingNetwork:
        with phase("train"):
            network = SpikingNetwork(config, coder=coder)
            SNNTrainer(network).fit(train_set, epochs=epochs)
            return network

    network = cached_train(
        "snn",
        config,
        train_set,
        _train,
        train_params={
            "epochs": epochs,
            "coder": coder_signature(coder),
            "recipe": "stdp-v1",
        },
    )
    if coder is not None:
        network.coder = coder
    return network


def train_snn_bp_model(
    config: SNNConfig, train_set: Dataset, epochs: int = 15
) -> BackPropSNN:
    """The standard SNN+BP training recipe used by all experiments.

    Cached like :func:`train_mlp_model` (kind ``snnbp``)."""

    def _train() -> BackPropSNN:
        with phase("train"):
            model = BackPropSNN(config)
            model.train(train_set, epochs=epochs)
            return model

    return cached_train(
        "snnbp",
        config,
        train_set,
        _train,
        train_params={"epochs": epochs, "recipe": "snnbp-v1"},
    )


def accuracy_percent(model_eval) -> float:
    """Round an EvaluationResult accuracy to the paper's 2 decimals."""
    return round(model_eval.accuracy_percent, 2)
