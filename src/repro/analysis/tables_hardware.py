"""Hardware tables: the paper's Tables 4, 5, 6, 7, 8 and 9.

All of these regenerate from the calibrated cost model; no training is
involved except the iso-accuracy point of Section 4.2.3 (which the
figures module provides through the neuron sweep).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import MLPConfig, SNNConfig, mnist_mlp_config, mnist_snn_config
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..hardware import technology as tech
from ..hardware.expanded import expanded_mlp, expanded_snn_wot, expanded_snn_wt
from ..hardware.folded import (
    FOLD_FACTORS,
    folded_mlp,
    folded_snn_wot,
    folded_snn_wt,
    mlp_sram_plans,
    snn_sram_plans,
)
from ..hardware.gpu import MLP_GPU, SNN_GPU
from ..hardware.online import online_snn

PAPER_TABLE4 = [
    {"design": "SNNwot expanded", "logic_mm2": 26.79, "sram_mm2": 19.27, "total_mm2": 46.06},
    {"design": "SNNwt expanded", "logic_mm2": 19.62, "sram_mm2": 19.27, "total_mm2": 38.89},
    {"design": "MLP expanded (28x28-100-10)", "logic_mm2": 73.14, "sram_mm2": 6.49, "total_mm2": 79.63},
    {"design": "MLP expanded (28x28-15-10)", "logic_mm2": 10.98, "sram_mm2": 1.35, "total_mm2": 12.33},
]


@register("table4", "Spatially expanded SNN vs MLP areas", "Table 4")
def table4_expanded(**_ignored) -> ExperimentResult:
    """Expanded-design area comparison, including the iso-accuracy MLP.

    The paper's headline: the expanded MLP is ~2.7x *larger* than the
    expanded SNN (multipliers dominate), but the 15-hidden-neuron MLP
    that matches the SNN's accuracy is ~3-4x smaller than the SNN.
    """
    mlp_cfg = mnist_mlp_config()
    small_mlp_cfg = mnist_mlp_config().with_hidden(15)
    snn_cfg = mnist_snn_config()
    reports = [
        ("SNNwot expanded", expanded_snn_wot(snn_cfg)),
        ("SNNwt expanded", expanded_snn_wt(snn_cfg)),
        ("MLP expanded (28x28-100-10)", expanded_mlp(mlp_cfg)),
        ("MLP expanded (28x28-15-10)", expanded_mlp(small_mlp_cfg)),
    ]
    rows = [
        {
            "design": name,
            "logic_mm2": round(r.logic_area_mm2, 2),
            "sram_mm2": round(r.sram_area_mm2, 2),
            "total_mm2": round(r.total_area_mm2, 2),
        }
        for name, r in reports
    ]
    mlp_total = rows[2]["total_mm2"]
    snn_total = rows[0]["total_mm2"]
    return ExperimentResult(
        experiment_id="table4",
        title="Spatially expanded area comparison",
        rows=rows,
        paper_rows=list(PAPER_TABLE4),
        notes=(
            f"MLP/SNNwot expanded area ratio: {mlp_total / snn_total:.2f}x "
            "(paper: 79.63/46.06 = 1.73x; 2.72x vs the average SNN)."
        ),
    )


PAPER_TABLE5 = [
    {"design": "SNN 4x4-20", "area_mm2": 0.08, "delay_ns": 1.18, "power_w": 0.52, "energy_nj": 0.63},
    {"design": "MLP 4x4-10-10", "area_mm2": 0.21, "delay_ns": 1.96, "power_w": 0.64, "energy_nj": 1.28},
]


@register("table5", "Small-scale expanded layouts", "Table 5")
def table5_small_layouts(**_ignored) -> ExperimentResult:
    """The two small fully-laid-out designs (4x4 inputs).

    Energy here is per pipeline pass (the laid-out design's single
    traversal), hence the per-weight expanded energy constants.
    """
    snn_cfg = replace(
        SNNConfig(n_inputs=16).with_neurons(20), t_period=500.0
    ).validate()
    mlp_cfg = MLPConfig(n_inputs=16, n_hidden=10, n_output=10).validate()
    snn_report = expanded_snn_wt(snn_cfg)
    mlp_report = expanded_mlp(mlp_cfg)
    snn_energy_nj = (
        snn_cfg.n_weights * tech.EXPANDED_SNNWT_ENERGY_PER_WEIGHT_CYCLE / 1e3
    )
    mlp_energy_nj = mlp_cfg.n_weights * tech.SMALL_MLP_ENERGY_PER_WEIGHT / 1e3
    rows = [
        {
            "design": "SNN 4x4-20",
            "area_mm2": round(snn_report.logic_area_mm2, 2),
            "delay_ns": round(snn_report.delay_ns, 2),
            "power_w": round(snn_energy_nj * 1e-9 / (snn_report.delay_ns * 1e-9), 2),
            "energy_nj": round(snn_energy_nj, 2),
        },
        {
            "design": "MLP 4x4-10-10",
            "area_mm2": round(mlp_report.logic_area_mm2, 2),
            "delay_ns": round(mlp_report.delay_ns, 2),
            "power_w": round(mlp_energy_nj * 1e-9 / (mlp_report.delay_ns * 1e-9), 2),
            "energy_nj": round(mlp_energy_nj, 2),
        },
    ]
    return ExperimentResult(
        experiment_id="table5",
        title="Small-scale expanded layouts (4x4 inputs)",
        rows=rows,
        paper_rows=list(PAPER_TABLE5),
        notes=(
            "Logic area only (weights in registers at this scale); "
            "energies use the laid-out small-design calibration "
            "(clock/register power dominates at 4x4 scale)."
        ),
    )


PAPER_TABLE6 = [
    {"network": "SNN", "ni": 1, "n_banks": 19, "area_mm2": 2.06, "energy_nj": 0.84},
    {"network": "MLP", "ni": 1, "n_banks": 8, "area_mm2": 0.76, "energy_nj": 0.31},
    {"network": "SNN", "ni": 4, "n_banks": 75, "area_mm2": 3.45, "energy_nj": 2.48},
    {"network": "MLP", "ni": 4, "n_banks": 28, "area_mm2": 1.29, "energy_nj": 0.93},
    {"network": "SNN", "ni": 8, "n_banks": 150, "area_mm2": 6.12, "energy_nj": 4.87},
    {"network": "MLP", "ni": 8, "n_banks": 55, "area_mm2": 2.24, "energy_nj": 1.79},
    {"network": "SNN", "ni": 16, "n_banks": 300, "area_mm2": 12.23, "energy_nj": 9.74},
    {"network": "MLP", "ni": 16, "n_banks": 110, "area_mm2": 4.48, "energy_nj": 3.56},
]


@register("table6", "SRAM characteristics for synaptic storage", "Table 6")
def table6_sram(**_ignored) -> ExperimentResult:
    """The Table 6 bank plans from the recovered packing rule."""
    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()
    rows = []
    for ni in FOLD_FACTORS:
        snn_plans = snn_sram_plans(snn_cfg, ni)
        mlp_plans = mlp_sram_plans(mlp_cfg, ni)
        rows.append(
            {
                "network": "SNN",
                "ni": ni,
                "n_banks": sum(p.n_banks for p in snn_plans),
                "area_mm2": round(sum(p.area_mm2 for p in snn_plans), 2),
                "energy_nj": round(
                    sum(p.read_energy_per_cycle_pj for p in snn_plans) / 1e3, 2
                ),
            }
        )
        rows.append(
            {
                "network": "MLP",
                "ni": ni,
                "n_banks": sum(p.n_banks for p in mlp_plans),
                "area_mm2": round(sum(p.area_mm2 for p in mlp_plans), 2),
                "energy_nj": round(
                    sum(p.read_energy_per_cycle_pj for p in mlp_plans) / 1e3, 2
                ),
            }
        )
    return ExperimentResult(
        experiment_id="table6",
        title="SRAM bank plans for synaptic storage",
        rows=rows,
        paper_rows=list(PAPER_TABLE6),
        notes="Bank counts reproduce the paper exactly at every ni.",
    )


PAPER_TABLE7 = [
    {"design": "SNNwot", "ni": "1", "logic_mm2": 1.11, "total_mm2": 3.17, "delay_ns": 1.24, "energy_uj": 1.03, "cycles": 791},
    {"design": "SNNwot", "ni": "4", "logic_mm2": 1.89, "total_mm2": 5.34, "delay_ns": 1.48, "energy_uj": 0.68, "cycles": 203},
    {"design": "SNNwot", "ni": "8", "logic_mm2": 2.79, "total_mm2": 8.91, "delay_ns": 1.76, "energy_uj": 0.67, "cycles": 105},
    {"design": "SNNwot", "ni": "16", "logic_mm2": 4.10, "total_mm2": 16.33, "delay_ns": 1.84, "energy_uj": 0.70, "cycles": 56},
    {"design": "SNNwot", "ni": "expanded", "logic_mm2": 26.79, "total_mm2": 46.06, "delay_ns": 3.17, "energy_uj": 0.03, "cycles": 3},
    {"design": "SNNwt", "ni": "1", "logic_mm2": 0.48, "total_mm2": 2.56, "delay_ns": 1.15, "energy_uj": 471.58, "cycles": 395500},
    {"design": "SNNwt", "ni": "4", "logic_mm2": 0.84, "total_mm2": 4.36, "delay_ns": 1.11, "energy_uj": 315.33, "cycles": 101500},
    {"design": "SNNwt", "ni": "8", "logic_mm2": 1.19, "total_mm2": 7.45, "delay_ns": 1.18, "energy_uj": 307.09, "cycles": 52500},
    {"design": "SNNwt", "ni": "16", "logic_mm2": 1.74, "total_mm2": 14.25, "delay_ns": 1.84, "energy_uj": 325.69, "cycles": 28000},
    {"design": "SNNwt", "ni": "expanded", "logic_mm2": 19.62, "total_mm2": 38.89, "delay_ns": 2.61, "energy_uj": 214.70, "cycles": 500},
    {"design": "MLP", "ni": "1", "logic_mm2": 0.29, "total_mm2": 1.05, "delay_ns": 2.24, "energy_uj": 0.38, "cycles": 882},
    {"design": "MLP", "ni": "4", "logic_mm2": 0.62, "total_mm2": 1.91, "delay_ns": 2.24, "energy_uj": 0.29, "cycles": 223},
    {"design": "MLP", "ni": "8", "logic_mm2": 1.02, "total_mm2": 3.26, "delay_ns": 2.25, "energy_uj": 0.30, "cycles": 113},
    {"design": "MLP", "ni": "16", "logic_mm2": 1.88, "total_mm2": 6.36, "delay_ns": 2.25, "energy_uj": 0.29, "cycles": 57},
    {"design": "MLP", "ni": "expanded", "logic_mm2": 73.14, "total_mm2": 79.63, "delay_ns": 3.79, "energy_uj": 0.06, "cycles": 4},
]


@register("table7", "Spatially folded SNN and MLP design points", "Table 7")
def table7_folded(**_ignored) -> ExperimentResult:
    """The central hardware table: every folded/expanded design point."""
    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()
    rows = []
    for design, folded_fn, expanded_fn, cfg in (
        ("SNNwot", folded_snn_wot, expanded_snn_wot, snn_cfg),
        ("SNNwt", folded_snn_wt, expanded_snn_wt, snn_cfg),
        ("MLP", folded_mlp, expanded_mlp, mlp_cfg),
    ):
        for ni in FOLD_FACTORS:
            report = folded_fn(cfg, ni)
            rows.append(_table7_row(design, str(ni), report))
        rows.append(_table7_row(design, "expanded", expanded_fn(cfg)))
    model = {r["design"]: r for r in rows if r["ni"] == "16"}
    ratio = model["SNNwot"]["total_mm2"] / model["MLP"]["total_mm2"]
    return ExperimentResult(
        experiment_id="table7",
        title="Spatially folded design points",
        rows=rows,
        paper_rows=list(PAPER_TABLE7),
        notes=(
            f"Folded MLP is {ratio:.2f}x smaller than folded SNNwot at ni=16 "
            "(paper: 2.57x)."
        ),
    )


def _table7_row(design: str, ni: str, report) -> dict:
    return {
        "design": design,
        "ni": ni,
        "logic_mm2": round(report.logic_area_mm2, 2),
        "total_mm2": round(report.total_area_mm2, 2),
        "delay_ns": round(report.delay_ns, 2),
        "energy_uj": round(report.energy_per_image_uj, 4),
        "cycles": report.cycles_per_image,
    }


PAPER_TABLE8 = [
    {"design": "SNNwot", "ni": "1", "speedup": 59.10, "energy_benefit": 2799.72},
    {"design": "SNNwot", "ni": "16", "speedup": 543.43, "energy_benefit": 4132.53},
    {"design": "SNNwot", "ni": "expanded", "speedup": 6086.46, "energy_benefit": 31542.31},
    {"design": "SNNwt", "ni": "1", "speedup": 0.12, "energy_benefit": 6.15},
    {"design": "SNNwt", "ni": "16", "speedup": 1.14, "energy_benefit": 8.90},
    {"design": "SNNwt", "ni": "expanded", "speedup": 44.60, "energy_benefit": 13.51},
    {"design": "MLP", "ni": "1", "speedup": 40.44, "energy_benefit": 12743.14},
    {"design": "MLP", "ni": "16", "speedup": 626.03, "energy_benefit": 16365.61},
    {"design": "MLP", "ni": "expanded", "speedup": 5409.63, "energy_benefit": 79151.75},
]


@register("table8", "Speedups and energy benefits over GPU", "Table 8")
def table8_gpu(**_ignored) -> ExperimentResult:
    """Accelerator-vs-K20M ratios at ni = 1, 16 and expanded."""
    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()
    cases = []
    for design, gpu, points in (
        (
            "SNNwot",
            SNN_GPU,
            [
                ("1", folded_snn_wot(snn_cfg, 1)),
                ("16", folded_snn_wot(snn_cfg, 16)),
                ("expanded", expanded_snn_wot(snn_cfg)),
            ],
        ),
        (
            "SNNwt",
            SNN_GPU,
            [
                ("1", folded_snn_wt(snn_cfg, 1)),
                ("16", folded_snn_wt(snn_cfg, 16)),
                ("expanded", expanded_snn_wt(snn_cfg)),
            ],
        ),
        (
            "MLP",
            MLP_GPU,
            [
                ("1", folded_mlp(mlp_cfg, 1)),
                ("16", folded_mlp(mlp_cfg, 16)),
                ("expanded", expanded_mlp(mlp_cfg)),
            ],
        ),
    ):
        for ni, report in points:
            cases.append(
                {
                    "design": design,
                    "ni": ni,
                    "speedup": round(gpu.speedup_of(report), 2),
                    "energy_benefit": round(gpu.energy_benefit_of(report), 2),
                }
            )
    return ExperimentResult(
        experiment_id="table8",
        title="Speedups and energy benefits over a K20M GPU",
        rows=cases,
        paper_rows=list(PAPER_TABLE8),
        notes="GPU per-image costs recovered from the paper's Tables 7+8.",
    )


PAPER_TABLE9 = [
    {"ni": 1, "logic_mm2": 2.55, "total_mm2": 4.92, "delay_ns": 1.23, "energy_mj": 0.71},
    {"ni": 4, "logic_mm2": 3.33, "total_mm2": 7.10, "delay_ns": 1.48, "energy_mj": 0.37},
    {"ni": 8, "logic_mm2": 4.26, "total_mm2": 10.70, "delay_ns": 1.81, "energy_mj": 0.32},
    {"ni": 16, "logic_mm2": 6.44, "total_mm2": 19.06, "delay_ns": 1.88, "energy_mj": 0.33},
]


@register("table9", "SNN with online STDP learning", "Table 9")
def table9_online(**_ignored) -> ExperimentResult:
    """Hardware features of the folded SNNwt with the STDP circuit."""
    snn_cfg = mnist_snn_config()
    rows = []
    for ni in FOLD_FACTORS:
        report = online_snn(snn_cfg, ni)
        rows.append(
            {
                "ni": ni,
                "logic_mm2": round(report.logic_area_mm2, 2),
                "total_mm2": round(report.total_area_mm2, 2),
                "delay_ns": round(report.delay_ns, 2),
                "energy_mj": round(report.energy_per_image_uj / 1e3, 2),
            }
        )
    return ExperimentResult(
        experiment_id="table9",
        title="SNN with online learning (STDP circuit attached)",
        rows=rows,
        paper_rows=list(PAPER_TABLE9),
        notes="Overhead vs Table 7 SNNwt: ~1.3-1.9x area, <=7% delay.",
    )
