"""Accuracy tables: the paper's Tables 1, 2 and 3.

Table 1 is the hyper-parameter table (regenerated from the config
dataclasses so documentation and code cannot drift apart); Table 2 is
the literature context (static reference data quoted by the paper);
Table 3 is the central accuracy comparison, retrained here on the
synthetic digits workload.
"""

from __future__ import annotations

from ..core.config import mnist_mlp_config, mnist_snn_config
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..mlp.quantized import QuantizedMLP
from ..mlp.trainer import evaluate_mlp
from ..snn.network import SNNTrainer
from ..snn.snn_wot import relabel_for_counts
from . import common


@register("table1", "Model hyper-parameters (MLP and SNN)", "Table 1")
def table1_config(**_ignored) -> ExperimentResult:
    """Emit the Table 1 parameter set from the live config objects."""
    mlp = mnist_mlp_config()
    snn = mnist_snn_config()
    rows = [
        {"model": "MLP", "parameter": "n_hidden", "value": mlp.n_hidden},
        {"model": "MLP", "parameter": "n_output", "value": mlp.n_output},
        {"model": "MLP", "parameter": "learning_rate", "value": mlp.learning_rate},
        {"model": "MLP", "parameter": "epochs", "value": mlp.epochs},
        {"model": "SNN", "parameter": "n_neurons", "value": snn.n_neurons},
        {"model": "SNN", "parameter": "t_period_ms", "value": snn.t_period},
        {"model": "SNN", "parameter": "t_leak_ms", "value": snn.t_leak},
        {"model": "SNN", "parameter": "t_inhibit_ms", "value": snn.t_inhibit},
        {"model": "SNN", "parameter": "t_refrac_ms", "value": snn.t_refrac},
        {"model": "SNN", "parameter": "t_ltp_ms", "value": snn.t_ltp},
        {"model": "SNN", "parameter": "initial_threshold", "value": snn.initial_threshold},
        {"model": "SNN", "parameter": "homeo_epoch_ms", "value": snn.homeo_epoch},
        {"model": "SNN", "parameter": "homeo_threshold", "value": snn.homeo_threshold},
    ]
    paper = [
        {"model": "MLP", "parameter": "n_hidden", "value": 100},
        {"model": "MLP", "parameter": "n_output", "value": 10},
        {"model": "MLP", "parameter": "learning_rate", "value": 0.3},
        {"model": "MLP", "parameter": "epochs", "value": 50},
        {"model": "SNN", "parameter": "n_neurons", "value": 300},
        {"model": "SNN", "parameter": "t_period_ms", "value": 500.0},
        {"model": "SNN", "parameter": "t_leak_ms", "value": 500.0},
        {"model": "SNN", "parameter": "t_inhibit_ms", "value": 5.0},
        {"model": "SNN", "parameter": "t_refrac_ms", "value": 20.0},
        {"model": "SNN", "parameter": "t_ltp_ms", "value": 45.0},
        {"model": "SNN", "parameter": "initial_threshold", "value": 17850.0},
        {"model": "SNN", "parameter": "homeo_epoch_ms", "value": 1_500_000.0},
        {"model": "SNN", "parameter": "homeo_threshold", "value": 30.0},
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Model hyper-parameters",
        rows=rows,
        paper_rows=paper,
        notes="Defaults of MLPConfig/SNNConfig equal the paper's chosen values.",
    )


#: The literature accuracies the paper quotes for context (Table 2).
PAPER_TABLE2 = [
    {"model": "MLP+BP (Simard et al.)", "accuracy": 98.40},
    {"model": "SNN+STDP (Querlioz et al.)", "accuracy": 93.50},
    {"model": "SNN+STDP (Diehl & Cook)", "accuracy": 95.00},
    {"model": "ImageNet CNN (Krizhevsky et al.)", "accuracy": 99.21},
    {"model": "MCDNN (Ciresan et al.)", "accuracy": 99.77},
]


@register("table2", "Best accuracy reported on MNIST (literature)", "Table 2")
def table2_reference(**_ignored) -> ExperimentResult:
    """Static reference data — the paper's survey of published results."""
    return ExperimentResult(
        experiment_id="table2",
        title="Best accuracy reported on MNIST (no distortion)",
        rows=list(PAPER_TABLE2),
        paper_rows=list(PAPER_TABLE2),
        notes="Reference values quoted from the literature; nothing to re-measure.",
    )


#: The paper's Table 3 plus the Section 4.2.1 fixed-point result.
PAPER_TABLE3 = [
    {"model": "SNN+STDP - LIF (SNNwt)", "accuracy": 91.82},
    {"model": "SNN+STDP - Simplified (SNNwot)", "accuracy": 90.85},
    {"model": "SNN+BP", "accuracy": 95.40},
    {"model": "MLP+BP", "accuracy": 97.65},
    {"model": "MLP+BP (8-bit fixed point)", "accuracy": 96.65},
]


@register("table3", "Accuracy of MLP and SNN on the digits workload", "Table 3")
def table3_accuracy(
    mlp_epochs: int = 30, snn_epochs: int = 3, snn_bp_epochs: int = 15
) -> ExperimentResult:
    """Retrain all four models (plus the quantized MLP) and compare.

    The paper's ordering to reproduce: MLP+BP > SNN+BP > SNNwt >
    SNNwot (within ~1% of SNNwt), with the 8-bit MLP within ~1% of the
    float MLP.
    """
    train_set, test_set = common.digits()
    rows = []

    snn = common.train_snn_model(mnist_snn_config(), train_set, epochs=snn_epochs)
    trainer = SNNTrainer(snn)
    rows.append(
        {
            "model": "SNN+STDP - LIF (SNNwt)",
            "accuracy": common.accuracy_percent(trainer.evaluate(test_set)),
        }
    )
    wot = relabel_for_counts(snn, train_set)
    rows.append(
        {
            "model": "SNN+STDP - Simplified (SNNwot)",
            "accuracy": common.accuracy_percent(wot.evaluate(test_set)),
        }
    )

    snn_bp = common.train_snn_bp_model(
        mnist_snn_config(), train_set, epochs=snn_bp_epochs
    )
    rows.append(
        {
            "model": "SNN+BP",
            "accuracy": common.accuracy_percent(snn_bp.evaluate(test_set)),
        }
    )

    mlp = common.train_mlp_model(mnist_mlp_config(), train_set, epochs=mlp_epochs)
    rows.append(
        {
            "model": "MLP+BP",
            "accuracy": common.accuracy_percent(evaluate_mlp(mlp, test_set)),
        }
    )
    quantized = QuantizedMLP(mlp)
    from ..core.metrics import evaluate as evaluate_metrics

    q_eval = evaluate_metrics(
        quantized.predict_dataset(test_set), test_set.labels, test_set.n_classes
    )
    rows.append(
        {
            "model": "MLP+BP (8-bit fixed point)",
            "accuracy": common.accuracy_percent(q_eval),
        }
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Accuracy of MLP and SNN variants (synthetic digits)",
        rows=rows,
        paper_rows=list(PAPER_TABLE3),
        notes=(
            "Synthetic digits substitute for MNIST; compare orderings and "
            "gaps, not absolute accuracies."
        ),
    )
