"""ASCII rendering of experiment results (paper-vs-measured).

``render_result`` prints one experiment as aligned text tables;
``run_and_render`` executes an experiment from the registry and
renders it; ``full_report`` iterates every registered experiment —
this is what regenerates the whole evaluation section in one call.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..core import registry
from ..core.experiment import (
    ExperimentResult,
    ResilientRunner,
    RunPolicy,
    run_experiments,
)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(rows: List[Dict[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n  (no rows)\n" if title else "  (no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(c) for c in columns}
    rendered_rows = []
    for row in rows:
        rendered = {c: _format_value(row.get(c, "")) for c in columns}
        rendered_rows.append(rendered)
        for c in columns:
            widths[c] = max(widths[c], len(rendered[c]))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append("  " + header)
    lines.append("  " + "-+-".join("-" * widths[c] for c in columns))
    for rendered in rendered_rows:
        lines.append("  " + " | ".join(rendered[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def render_result(result: ExperimentResult) -> str:
    """Render one experiment: measured rows, paper rows, notes.

    Resilient runs additionally render their structured failure
    record: total attempts, degradation status, and one line per
    failed attempt (kind, error, per-attempt wall clock).
    """
    parts = [f"== {result.experiment_id}: {result.title} =="]
    parts.append(render_table(result.rows, title="measured:"))
    if result.paper_rows:
        parts.append(render_table(result.paper_rows, title="paper:"))
    if result.notes:
        parts.append(f"notes: {result.notes}")
    if result.attempts > 1 or result.failures or result.degraded:
        status = "degraded" if result.degraded else "recovered"
        parts.append(
            f"resilience: {result.attempts} attempt(s), "
            f"{len(result.failures)} failure(s), {status}"
        )
        if result.failures:
            parts.append(render_table(result.failures, title="failed attempts:"))
    if result.elapsed_seconds:
        parts.append(f"elapsed: {result.elapsed_seconds:.1f}s")
    return "\n".join(parts) + "\n"


def run_and_render(
    experiment_id: str, policy: Optional[RunPolicy] = None, **kwargs: Any
) -> str:
    """Run one registered experiment and render it.

    With a :class:`RunPolicy`, the experiment runs under the
    :class:`ResilientRunner` (timeouts, retries, checkpointing,
    graceful degradation) instead of a bare call.
    """
    spec = registry.get(experiment_id)
    if policy is None:
        return render_result(spec.run(**kwargs))
    runner = ResilientRunner(policy)
    return render_result(runner.run_spec(spec, **kwargs))


def full_report(
    experiment_ids: Optional[Iterable[str]] = None,
    policy: Optional[RunPolicy] = None,
    jobs: int = 1,
    **kwargs: Any,
) -> str:
    """Run every (or the selected) registered experiment and render all.

    ``jobs > 1`` executes independent experiments across a process
    pool (:func:`repro.core.experiment.run_experiments`); rendering
    always happens here, in id order, so the report text is the same
    as a serial run's (modulo the wall-clock ``elapsed:`` lines).
    Pool workers resolve the standard datasets against one
    shared-memory segment published by this process
    (:func:`repro.analysis.common.shared_dataset_export`) instead of
    regenerating per-process copies; generation is deterministic, so
    the report text is byte-identical either way.
    """
    ids = list(experiment_ids) if experiment_ids is not None else registry.all_ids()
    if jobs > 1 and len(ids) > 1:
        from .common import shared_dataset_export

        with shared_dataset_export() as (initializer, initargs):
            results = run_experiments(
                ids,
                policy=policy,
                jobs=jobs,
                initializer=initializer,
                initargs=initargs,
                **kwargs,
            )
    else:
        results = run_experiments(ids, policy=policy, jobs=jobs, **kwargs)
    return "\n".join(render_result(result) for result in results)
