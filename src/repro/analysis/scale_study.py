"""Large-scale crossover study (the paper's conclusion, quantified).

The paper concludes: *"Only for very large-scale implementations,
SNNs could become more attractive (area, delay, energy and power, but
still not accuracy) than machine-learning models"* and that
*"SNN+STDP should also be the design of choice for fast and
large-scale implementations (spatially expanded)"*.

This experiment quantifies that claim with the calibrated cost model:
sweeping the input size from 14x14 to 56x56 with proportionally grown
layers (the largest topology inside Table 1's explored ranges), it
tracks

* the expanded-design area and time ratios MLP/SNN — the SNN's
  advantage, which is *scale-stable* (~1.7x area, ~1.9x time at every
  size: both designs grow with inputs x neurons, so proportional
  scaling preserves the multiplier-vs-adder gap); and
* the folded-design area ratio SNNwot/MLP — the MLP's advantage,
  which *grows* with scale as the SNN's ~3x synaptic storage comes to
  dominate the folded footprint.

So the crossover is a *design style*, not a network size: folding
(realistic footprints) favours the MLP — more so at scale; full
spatial expansion (maximum speed, large silicon) favours the SNN at
every scale.  That is the quantified form of the paper's "only for
very large-scale [i.e. spatially expanded] implementations, SNNs
could become more attractive".
"""

from __future__ import annotations

from ..core.config import MLPConfig, SNNConfig
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..hardware.expanded import expanded_mlp, expanded_snn_wot
from ..hardware.folded import folded_mlp, folded_snn_wot

#: Input sides swept; the paper's MNIST point is side=28.  The top of
#: the sweep (56x56 -> a 1200-neuron SNN) is the largest topology
#: inside the paper's explored parameter ranges (Table 1).
SCALE_SWEEP = (14, 28, 42, 56)

#: Layer sizes grow proportionally with the input area, anchored at
#: the paper's MNIST topology (784 inputs -> 100 hidden / 300 SNN).
HIDDEN_PER_INPUT = 100 / 784
NEURONS_PER_INPUT = 300 / 784


def scaled_configs(side: int) -> tuple:
    """The paper-proportioned topologies for a side x side input."""
    n_inputs = side * side
    n_hidden = max(int(round(HIDDEN_PER_INPUT * n_inputs)), 10)
    n_neurons = max(int(round(NEURONS_PER_INPUT * n_inputs)), 10)
    mlp = MLPConfig(n_inputs=n_inputs, n_hidden=n_hidden, n_output=10).validate()
    snn = SNNConfig(n_inputs=n_inputs).with_neurons(n_neurons).validate()
    return mlp, snn


@register(
    "scale-study",
    "Large-scale crossover: expanded vs folded cost ratios",
    "Conclusions (Section 7)",
)
def scale_study(sweep=SCALE_SWEEP, ni: int = 16, **_ignored) -> ExperimentResult:
    """Cost ratios vs input scale for both design styles."""
    rows = []
    for side in sweep:
        mlp_cfg, snn_cfg = scaled_configs(side)
        expanded_ratio = (
            expanded_mlp(mlp_cfg).total_area_mm2
            / expanded_snn_wot(snn_cfg).total_area_mm2
        )
        folded_ratio = (
            folded_snn_wot(snn_cfg, ni).total_area_mm2
            / folded_mlp(mlp_cfg, ni).total_area_mm2
        )
        expanded_time_ratio = (
            expanded_mlp(mlp_cfg).time_per_image_ns
            / expanded_snn_wot(snn_cfg).time_per_image_ns
        )
        rows.append(
            {
                "input": f"{side}x{side}",
                "n_inputs": side * side,
                "mlp_topology": mlp_cfg.topology,
                "snn_topology": snn_cfg.topology,
                "expanded_mlp_over_snn_area": round(expanded_ratio, 2),
                "expanded_mlp_over_snn_time": round(expanded_time_ratio, 2),
                "folded_snn_over_mlp_area": round(folded_ratio, 2),
            }
        )
    return ExperimentResult(
        experiment_id="scale-study",
        title="Design-style crossover vs input scale",
        rows=rows,
        paper_rows=[],
        notes=(
            "Extension quantifying the paper's conclusion: the expanded "
            "MLP/SNN advantage is scale-stable (~1.7x area at every size) "
            "while the folded SNN/MLP ratio grows with scale as the SNN's "
            "3x synaptic storage dominates — folding favours the MLP "
            "increasingly, expansion favours the SNN at every scale."
        ),
    )
