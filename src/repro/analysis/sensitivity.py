"""SNN hyper-parameter sensitivity study (paper Section 3.1).

The paper selected its SNN parameters by "a fine-grained exploration
... out of 1000 evaluated settings", and highlights one counter-
intuitive outcome: the best leakage time constant was 500 ms, an order
of magnitude above the ~50 ms the neuroscience literature reports —
i.e. when the goal is computing accuracy rather than bio-realism, the
model wants far less leak.

This experiment re-runs a slice of that exploration on the synthetic
digits workload: accuracy versus the leakage constant T_leak, the LTP
window T_LTP, and the presentation duration T_period, each swept
around the paper's chosen value with everything else fixed.  The
asserted shape is the paper's: long leaks beat the "bio-plausible"
50 ms setting, and the chosen setting of every parameter is within
noise of the best in its sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core.config import mnist_snn_config
from ..core.experiment import ExperimentResult
from ..core.registry import register
from ..snn.network import SNNTrainer, SpikingNetwork
from . import common

#: Sweep values; the paper's chosen value is marked in the rows.
LEAK_SWEEP = (50.0, 150.0, 500.0, 1000.0)
LTP_SWEEP = (5.0, 20.0, 45.0)
PERIOD_SWEEP = (200.0, 500.0)

#: Scaled-down training budget per point (the paper used 1000 settings
#: at full scale; a sweep point here takes ~15 s).
N_NEURONS = 100
EPOCHS = 2


def _accuracy_for(config, train_set, test_set) -> float:
    network = SpikingNetwork(config)
    trainer = SNNTrainer(network)
    trainer.fit(train_set, epochs=EPOCHS)
    return round(trainer.evaluate(test_set).accuracy_percent, 2)


@register(
    "sensitivity",
    "SNN hyper-parameter sensitivity (leak, LTP window, period)",
    "Section 3.1",
)
def sensitivity_study(
    leak_sweep: Sequence[float] = LEAK_SWEEP,
    ltp_sweep: Sequence[float] = LTP_SWEEP,
    period_sweep: Sequence[float] = PERIOD_SWEEP,
    **_ignored,
) -> ExperimentResult:
    """Accuracy vs each swept hyper-parameter, others at Table 1 values."""
    train_set, test_set = common.digits()
    base = mnist_snn_config(epochs=EPOCHS).with_neurons(N_NEURONS)
    rows = []
    for t_leak in leak_sweep:
        config = replace(base, t_leak=float(t_leak)).validate()
        rows.append(
            {
                "parameter": "t_leak_ms",
                "value": t_leak,
                "chosen": t_leak == base.t_leak,
                "accuracy": _accuracy_for(config, train_set, test_set),
            }
        )
    for t_ltp in ltp_sweep:
        config = replace(base, t_ltp=float(t_ltp)).validate()
        rows.append(
            {
                "parameter": "t_ltp_ms",
                "value": t_ltp,
                "chosen": t_ltp == base.t_ltp,
                "accuracy": _accuracy_for(config, train_set, test_set),
            }
        )
    for t_period in period_sweep:
        config = replace(base, t_period=float(t_period)).validate()
        rows.append(
            {
                "parameter": "t_period_ms",
                "value": t_period,
                "chosen": t_period == base.t_period,
                "accuracy": _accuracy_for(config, train_set, test_set),
            }
        )
    return ExperimentResult(
        experiment_id="sensitivity",
        title="SNN hyper-parameter sensitivity",
        rows=rows,
        paper_rows=[
            {
                "parameter": "t_leak_ms",
                "value": 500.0,
                "note": "paper's empirical best; neuroscience expects ~50 ms",
            },
            {"parameter": "t_ltp_ms", "value": 45.0, "note": "Table 1 chosen"},
            {"parameter": "t_period_ms", "value": 500.0, "note": "Table 1 chosen"},
        ],
        notes=(
            "Scaled-down slice of the paper's 1000-setting exploration; "
            "the headline check is long leak (>=500 ms) beating the "
            "bio-plausible 50 ms."
        ),
    )
