"""Fixed-point arithmetic used by the quantized inference paths."""

from .qformat import (
    ACTIVATION_Q8,
    SNN_PRODUCT_Q12,
    SNN_WEIGHT_Q8,
    WEIGHT_Q8,
    QFormat,
    quantization_snr_db,
)

__all__ = [
    "QFormat",
    "WEIGHT_Q8",
    "ACTIVATION_Q8",
    "SNN_WEIGHT_Q8",
    "SNN_PRODUCT_Q12",
    "quantization_snr_db",
]
