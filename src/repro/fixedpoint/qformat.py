"""Fixed-point (Q-format) arithmetic helpers.

The paper's hardware uses narrow fixed-point datapaths: 8-bit weights
and activations for the MLP (Section 4.2.1 reports 96.65% with 8-bit
operators vs 97.65% floating point), 8-bit weights for SNNwt, and
12-bit weighted spike counts for SNNwot (8-bit weight x 4-bit count).

A :class:`QFormat` describes a two's-complement (or unsigned)
fixed-point representation with ``integer_bits`` integer bits and
``fraction_bits`` fractional bits.  Quantization helpers convert numpy
arrays between float and integer-code representations, saturating on
overflow exactly as a hardware register would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError


@dataclass(frozen=True)
class QFormat:
    """A fixed-point number format.

    Attributes:
        integer_bits: bits left of the binary point (excluding sign).
        fraction_bits: bits right of the binary point.
        signed: whether a sign bit is present (two's complement).
    """

    integer_bits: int
    fraction_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ConfigError(
                f"bit counts must be non-negative, got Q{self.integer_bits}.{self.fraction_bits}"
            )
        if self.total_bits == 0 or self.total_bits > 64:
            raise ConfigError(f"total width must be in [1, 64], got {self.total_bits}")

    @property
    def total_bits(self) -> int:
        """Total register width, including the sign bit if signed."""
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0**-self.fraction_bits

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        if self.signed:
            return 2 ** (self.total_bits - 1) - 1
        return 2**self.total_bits - 1

    @property
    def min_code(self) -> int:
        """Smallest representable integer code."""
        if self.signed:
            return -(2 ** (self.total_bits - 1))
        return 0

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_code * self.scale

    def quantize_code(self, values: np.ndarray) -> np.ndarray:
        """Round real values to saturated integer codes (int64)."""
        codes = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(codes, self.min_code, self.max_code).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to real values (float64)."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round real values onto the representable grid (float64)."""
        return self.dequantize(self.quantize_code(values))

    def saturate_code(self, codes: np.ndarray) -> np.ndarray:
        """Clamp integer codes into the representable range."""
        return np.clip(np.asarray(codes), self.min_code, self.max_code).astype(np.int64)

    def representable(self, values: np.ndarray, tolerance: float = 1e-12) -> np.ndarray:
        """Boolean mask of values already exactly on the grid."""
        values = np.asarray(values, dtype=np.float64)
        return np.abs(self.quantize(values) - values) <= tolerance

    def __str__(self) -> str:
        sign = "s" if self.signed else "u"
        return f"{sign}Q{self.integer_bits}.{self.fraction_bits}"


#: The MLP's 8-bit signed weight format: 1 sign + 2 integer + 5 fraction
#: bits, covering weights in about [-4, 4) with ~0.031 resolution.
WEIGHT_Q8 = QFormat(integer_bits=2, fraction_bits=5, signed=True)

#: The MLP's 8-bit unsigned activation format (activations live in [0, 1]).
ACTIVATION_Q8 = QFormat(integer_bits=0, fraction_bits=8, signed=False)

#: The SNN's 8-bit unsigned weight format (STDP weights in [0, 255]).
SNN_WEIGHT_Q8 = QFormat(integer_bits=8, fraction_bits=0, signed=False)

#: SNNwot's 12-bit weighted-spike-count format (8-bit weight x 4-bit count).
SNN_PRODUCT_Q12 = QFormat(integer_bits=12, fraction_bits=0, signed=False)


def quantization_snr_db(values: np.ndarray, fmt: QFormat) -> float:
    """Signal-to-quantization-noise ratio in dB for ``values`` under ``fmt``.

    Used by tests to verify that the 8-bit formats chosen above retain
    enough precision for trained weights (the paper's claim that neural
    network learning tolerates low precision).
    """
    values = np.asarray(values, dtype=np.float64)
    noise = values - fmt.quantize(values)
    signal_power = float(np.mean(values**2))
    noise_power = float(np.mean(noise**2))
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)
