"""The machine-learning model: Multi-Layer Perceptron + Back-Propagation."""

from .activations import (
    Activation,
    activation_profile,
    make_sigmoid,
    make_step,
    sigmoid,
    step,
)
from .network import MLP, ForwardTrace
from .quantized import QuantizedMLP, SigmoidLUT
from .trainer import BackPropTrainer, TrainingHistory, evaluate_mlp, one_hot, train_mlp

__all__ = [
    "MLP",
    "ForwardTrace",
    "Activation",
    "make_sigmoid",
    "make_step",
    "sigmoid",
    "step",
    "activation_profile",
    "BackPropTrainer",
    "TrainingHistory",
    "train_mlp",
    "evaluate_mlp",
    "one_hot",
    "QuantizedMLP",
    "SigmoidLUT",
]
