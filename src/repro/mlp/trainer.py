"""Back-Propagation training (paper Section 2.1, "Learning").

Implements the paper's update rule:

    w_ji(t+1) = w_ji(t) + eta * delta_j(t) * y_i(t)

with output-layer gradient delta_j = f'(s_j) * e_j (e_j the difference
between expected and produced output) and hidden-layer gradient
delta_j = f'(s_j) * sum_k delta_k * w_kj.  Training is iterative over
epochs; targets are one-hot vectors.

Mini-batching is a pure vectorization detail (batch gradients are the
sum of the paper's per-sample updates); ``batch_size=1`` gives exact
per-sample ("online") BP as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.config import MLPConfig
from ..core.errors import TrainingError
from ..core.metrics import EvaluationResult, evaluate
from ..core.rng import child_rng
from ..core.timing import phase
from ..datasets.base import Dataset
from .network import MLP


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise TrainingError("no epochs recorded")
        return self.epoch_losses[-1]


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels as (B, n_classes) float targets."""
    labels = np.asarray(labels)
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise TrainingError(
            f"labels outside [0, {n_classes}): min={labels.min()} max={labels.max()}"
        )
    targets = np.zeros((labels.size, n_classes))
    targets[np.arange(labels.size), labels] = 1.0
    return targets


class BackPropTrainer:
    """Trains an :class:`MLP` with the paper's BP rule.

    Args:
        network: the MLP to train in place.
        batch_size: samples per gradient step (1 = the paper's exact
            per-sample update; 32 default for speed).
    """

    def __init__(self, network: MLP, batch_size: int = 32):
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        self.network = network
        self.batch_size = batch_size

    def train_batch(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """One gradient step on a batch; returns the mean squared error."""
        net = self.network
        config = net.config
        trace = net.forward(inputs)
        targets = one_hot(labels, config.n_output)
        batch = trace.inputs.shape[0]

        # Output layer: e_j = target - output; delta_j = f'(s_j) * e_j.
        error = targets - trace.output_out
        delta_out = net.output_activation.derivative(trace.output_pre, trace.output_out) * error
        # Hidden layer: delta_j = f'(s_j) * sum_k delta_k w_kj.
        back = delta_out @ net.w_output
        delta_hidden = net.activation.derivative(trace.hidden_pre, trace.hidden_out) * back

        eta = config.learning_rate / batch
        net.w_output += eta * delta_out.T @ trace.hidden_out
        net.b_output += eta * delta_out.sum(axis=0)
        net.w_hidden += eta * delta_hidden.T @ trace.inputs
        net.b_hidden += eta * delta_hidden.sum(axis=0)
        return float(np.mean(error**2))

    def train_epoch(self, dataset: Dataset, rng) -> float:
        """One pass over the dataset; returns the mean batch loss."""
        losses = []
        for inputs, labels in dataset.batches(self.batch_size, seed=rng):
            losses.append(self.train_batch(inputs, labels))
        if not losses:
            raise TrainingError("dataset produced no batches")
        return float(np.mean(losses))

    def train(
        self,
        dataset: Dataset,
        epochs: Optional[int] = None,
        validation: Optional[Dataset] = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes (default: config.epochs).

        If ``validation`` is given, per-epoch accuracy on it is
        recorded in the returned history.
        """
        if epochs is None:
            epochs = self.network.config.epochs
        rng = child_rng(self.network.config.seed, "mlp-shuffle")
        history = TrainingHistory()
        for _epoch in range(epochs):
            loss = self.train_epoch(dataset, rng)
            history.epoch_losses.append(loss)
            if validation is not None:
                predictions = self.network.predict_dataset(validation)
                history.epoch_accuracies.append(
                    float(np.mean(predictions == validation.labels))
                )
        return history


def train_mlp(
    config: MLPConfig,
    train_set: Dataset,
    epochs: Optional[int] = None,
    batch_size: int = 32,
) -> MLP:
    """Convenience: build an MLP from ``config`` and train it."""
    network = MLP(config)
    BackPropTrainer(network, batch_size=batch_size).train(train_set, epochs=epochs)
    return network


def evaluate_mlp(network: MLP, test_set: Dataset) -> EvaluationResult:
    """Evaluate a trained MLP on a test set."""
    with phase("eval"):
        predictions = network.predict_dataset(test_set)
        return evaluate(predictions, test_set.labels, test_set.n_classes)
