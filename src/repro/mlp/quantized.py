"""8-bit fixed-point MLP inference (paper Section 4.2.1).

The paper evaluates operator/storage width by repeated train/test
experiments and settles on 8-bit fixed-point multipliers, adders and
SRAM words, reporting 96.65% vs 97.65% for floating point — i.e. the
trained network tolerates 8-bit inference with ~1% accuracy loss.

:class:`QuantizedMLP` freezes a trained float MLP into integer codes
(8-bit weights, 8-bit activations) and runs inference entirely in
integer arithmetic, mirroring what the laid-out datapath computes.
The sigmoid is realized as the paper's 16-point piecewise-linear
interpolation (f(x) = a_i*x + b_i per segment) stored as a small LUT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.errors import ConfigError
from ..fixedpoint.qformat import ACTIVATION_Q8, WEIGHT_Q8, QFormat
from .activations import sigmoid
from .network import MLP

#: Number of piecewise-linear segments in the hardware sigmoid
#: (Section 4.2.1: "16-point piecewise linear interpolation").
SIGMOID_SEGMENTS = 16

#: Input range covered by the interpolation table; outside it the
#: sigmoid saturates to 0/1 within 8-bit resolution.
SIGMOID_RANGE = (-8.0, 8.0)


@dataclass(frozen=True)
class SigmoidLUT:
    """The hardware sigmoid: per-segment (a_i, b_i) coefficients.

    ``evaluate`` computes f(x) = a_i*x + b_i with the segment index
    derived from the top bits of x, exactly as the small SRAM table +
    multiplier + adder of the paper's datapath would.
    """

    slopes: np.ndarray       # (SEGMENTS,)
    intercepts: np.ndarray   # (SEGMENTS,)
    x_min: float
    x_max: float

    @classmethod
    def build(
        cls,
        slope: float = 1.0,
        segments: int = SIGMOID_SEGMENTS,
        x_range: Tuple[float, float] = None,
    ) -> "SigmoidLUT":
        """Fit the interpolation to the (possibly slope-scaled) sigmoid.

        The covered range shrinks with the slope (f_a saturates within
        |x| < 8/a), keeping the per-segment interpolation error
        independent of a.
        """
        if segments < 2:
            raise ConfigError(f"need at least 2 segments, got {segments}")
        if x_range is None:
            x_range = (SIGMOID_RANGE[0] / slope, SIGMOID_RANGE[1] / slope)
        x_min, x_max = x_range
        edges = np.linspace(x_min, x_max, segments + 1)
        y = sigmoid(edges, slope)
        slopes = (y[1:] - y[:-1]) / (edges[1:] - edges[:-1])
        intercepts = y[:-1] - slopes * edges[:-1]
        return cls(slopes=slopes, intercepts=intercepts, x_min=x_min, x_max=x_max)

    @property
    def segments(self) -> int:
        return int(self.slopes.size)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Piecewise-linear sigmoid; saturates outside [x_min, x_max]."""
        x = np.asarray(x, dtype=np.float64)
        width = (self.x_max - self.x_min) / self.segments
        index = np.clip(
            ((x - self.x_min) / width).astype(np.int64), 0, self.segments - 1
        )
        y = self.slopes[index] * x + self.intercepts[index]
        y = np.where(x < self.x_min, 0.0, y)
        y = np.where(x > self.x_max, 1.0, y)
        return np.clip(y, 0.0, 1.0)

    def max_error(self, n_probe: int = 4001) -> float:
        """Worst-case |LUT - exact| over the covered range (for tests)."""
        xs = np.linspace(self.x_min, self.x_max, n_probe)
        return float(np.max(np.abs(self.evaluate(xs) - sigmoid(xs))))


class QuantizedMLP:
    """Integer-arithmetic inference over a trained float MLP.

    Weights are quantized to ``weight_format`` codes, activations to
    ``activation_format`` codes.  The matrix products are computed in
    int64 (the hardware adder tree is wide enough that accumulation
    never overflows for 8-bit operands and <=1024 inputs), rescaled,
    passed through the piecewise-linear sigmoid, and re-quantized —
    mirroring the register boundaries of the laid-out pipeline.
    """

    def __init__(
        self,
        network: MLP,
        weight_format: QFormat = WEIGHT_Q8,
        activation_format: QFormat = ACTIVATION_Q8,
        injector=None,
    ):
        self.config = network.config
        self.weight_format = weight_format
        self.activation_format = activation_format
        self.lut = SigmoidLUT.build(slope=network.config.sigmoid_slope)
        self.output_lut = SigmoidLUT.build(slope=1.0)
        # Freeze parameters as integer codes.
        self.w_hidden_codes = weight_format.quantize_code(network.w_hidden)
        self.b_hidden_codes = weight_format.quantize_code(network.b_hidden)
        self.w_output_codes = weight_format.quantize_code(network.w_output)
        self.b_output_codes = weight_format.quantize_code(network.b_output)
        self._inject_faults(injector)

    def _inject_faults(self, injector) -> None:
        """Apply SRAM weight corruption and dead hidden units.

        ``injector`` is a :class:`repro.faults.FaultInjector` (duck-
        typed to keep this module free of a faults dependency).  A
        ``None`` or null injector leaves every code array untouched —
        the injected path is bit-identical to the clean one.  Weight
        bit-flips / stuck-at defects corrupt the stored signed Q2.5
        codes of both SRAM banks; a dead hidden unit contributes
        nothing downstream, so its output-bank column is zeroed (the
        hidden layer holds ~91% of the MLP's neuron circuits).
        """
        if injector is None or injector.null:
            return
        self.w_hidden_codes = injector.corrupt_weight_codes(
            self.w_hidden_codes, "mlp-hidden", signed=True
        )
        self.w_output_codes = injector.corrupt_weight_codes(
            self.w_output_codes, "mlp-output", signed=True
        )
        dead = injector.dead_neuron_mask(self.config.n_hidden, "mlp-hidden")
        if dead.any():
            self.w_output_codes = np.array(self.w_output_codes, copy=True)
            self.w_output_codes[:, dead] = 0

    def _pre_activation(
        self,
        activation_codes: np.ndarray,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray,
    ) -> np.ndarray:
        """Integer MAC then rescale to the real-valued pre-activation.

        Rescale: activation LSB * weight LSB; bias enters at weight
        scale times one (an implicit activation of 1.0).
        """
        accum = activation_codes @ weight_codes.T.astype(np.int64)
        return (
            accum.astype(np.float64)
            * self.activation_format.scale
            * self.weight_format.scale
            + bias_codes.astype(np.float64) * self.weight_format.scale
        )

    def _layer(
        self,
        activation_codes: np.ndarray,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray,
        lut: SigmoidLUT,
    ) -> np.ndarray:
        """One folded-datapath layer: int MAC -> rescale -> LUT -> requantize."""
        pre = self._pre_activation(activation_codes, weight_codes, bias_codes)
        return self.activation_format.quantize_code(lut.evaluate(pre))

    def forward_codes(self, inputs: np.ndarray) -> np.ndarray:
        """Run inference; returns output activation codes (B, n_output)."""
        input_codes, hidden_codes = self._front_half(inputs)
        return self._layer(
            hidden_codes, self.w_output_codes, self.b_output_codes, self.output_lut
        )

    def _front_half(self, inputs: np.ndarray) -> tuple:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[1] != self.config.n_inputs:
            raise ConfigError(
                f"expected {self.config.n_inputs} inputs, got {inputs.shape[1]}"
            )
        input_codes = self.activation_format.quantize_code(inputs)
        hidden_codes = self._layer(
            input_codes, self.w_hidden_codes, self.b_hidden_codes, self.lut
        )
        return input_codes, hidden_codes

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class predictions from the integer pipeline.

        The readout compares the output layer's integer accumulators
        (pre-activations): the sigmoid is monotone, so the argmax is
        the same as over the activations in exact arithmetic, and the
        comparison avoids the 8-bit sigmoid's saturation ties (several
        near-1.0 outputs quantizing to the same code).
        """
        _input_codes, hidden_codes = self._front_half(inputs)
        pre = self._pre_activation(
            hidden_codes, self.w_output_codes, self.b_output_codes
        )
        return np.argmax(pre, axis=1)

    def predict_dataset(self, dataset) -> np.ndarray:
        return self.predict(dataset.normalized())

    def predict_images(self, images: np.ndarray) -> np.ndarray:
        """Predictions for raw 8-bit luminance rows (the serving format).

        Mirrors :meth:`repro.mlp.network.MLP.predict_images`: the same
        [0, 1] normalization as dataset evaluation, so a served request
        is bit-identical to the corresponding ``predict_dataset`` row.
        """
        images = np.atleast_2d(np.asarray(images))
        return self.predict(images.astype(np.float64) / 255.0)
