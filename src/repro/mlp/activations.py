"""Activation functions for the MLP (paper Section 2.1 and Figure 5).

The paper uses the sigmoid f(x) = 1/(1+exp(-x)) and, in Section 3.2,
a *parameterized* sigmoid f_a(x) = 1/(1+exp(-a*x)) whose slope ``a``
morphs it toward the [0/1] step function used (implicitly) by spiking
neurons.  Figure 5 plots these profiles; Figure 6 trains the MLP at
a = 1, 2, 4, 8, 16 and with the hard step, showing the error rate
converging to the step-function error as ``a`` grows.

The step function has zero gradient almost everywhere, so the trainer
uses a *surrogate derivative* (the derivative of a steep sigmoid) —
the straight-through realization of the paper's step-function point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.errors import ConfigError

#: Slope of the surrogate sigmoid used for the step function's gradient.
STEP_SURROGATE_SLOPE = 8.0


def sigmoid(x: np.ndarray, slope: float = 1.0) -> np.ndarray:
    """The parameterized sigmoid f_a(x) = 1/(1+exp(-a*x)).

    Numerically stable for large |a*x| (no overflow warnings).
    """
    z = slope * np.asarray(x, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def sigmoid_derivative_from_output(y: np.ndarray, slope: float = 1.0) -> np.ndarray:
    """f_a'(x) expressed via the output y = f_a(x): a * y * (1 - y)."""
    y = np.asarray(y, dtype=np.float64)
    return slope * y * (1.0 - y)


def step(x: np.ndarray) -> np.ndarray:
    """The hard [0/1] step function (spike / no-spike)."""
    return (np.asarray(x, dtype=np.float64) > 0.0).astype(np.float64)


@dataclass(frozen=True)
class Activation:
    """An activation function with forward and surrogate-gradient passes.

    ``forward(x)`` maps pre-activations to activations; ``derivative``
    maps (pre-activation, activation) to df/dx.  For the step function
    the derivative is the steep-sigmoid surrogate evaluated at x.
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __str__(self) -> str:
        return self.name


def make_sigmoid(slope: float = 1.0) -> Activation:
    """Build the parameterized-sigmoid activation (Figure 5 curves)."""
    if slope <= 0:
        raise ConfigError(f"sigmoid slope must be positive, got {slope}")
    return Activation(
        name=f"sigmoid(a={slope:g})",
        forward=lambda x: sigmoid(x, slope),
        derivative=lambda x, y: sigmoid_derivative_from_output(y, slope),
    )


def make_step(surrogate_slope: float = STEP_SURROGATE_SLOPE) -> Activation:
    """Build the hard-step activation with a surrogate gradient.

    The forward pass is the exact [0/1] step (what the SNN hardware
    implements: spike or no spike); the backward pass uses the
    derivative of a slope-``surrogate_slope`` sigmoid evaluated at the
    pre-activation, which is the standard straight-through estimator.
    """
    if surrogate_slope <= 0:
        raise ConfigError(f"surrogate slope must be positive, got {surrogate_slope}")

    def surrogate(x: np.ndarray, _y: np.ndarray) -> np.ndarray:
        y_soft = sigmoid(x, surrogate_slope)
        return sigmoid_derivative_from_output(y_soft, surrogate_slope)

    return Activation(name="step[0/1]", forward=step, derivative=surrogate)


def activation_profile(
    activation: Activation, x_min: float = -5.0, x_max: float = 5.0, n_points: int = 201
) -> tuple:
    """Sample (x, f(x)) over a range — the data behind Figure 5."""
    xs = np.linspace(x_min, x_max, n_points)
    return xs, activation.forward(xs)
