"""The Multi-Layer Perceptron (paper Section 2.1).

Topology: an input layer (no neurons; 8-bit luminances normalized to
[0, 1]), one hidden layer, and an output layer, fully connected.  A
neuron computes y = f(sum_i w_ji * y_i + b_j) with f the (slope-
parameterized) sigmoid, or the hard step for the Figure 6 experiment.

The class holds weights as float64 matrices; the quantized inference
path of Section 4.2.1 lives in :mod:`repro.mlp.quantized`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import MLPConfig
from ..core.errors import ConfigError, TrainingError
from ..core.rng import child_rng
from .activations import Activation, make_sigmoid, make_step


@dataclass
class ForwardTrace:
    """Intermediate values of one forward pass, kept for back-propagation."""

    inputs: np.ndarray          # (B, n_inputs)
    hidden_pre: np.ndarray      # (B, n_hidden) pre-activations s^1
    hidden_out: np.ndarray      # (B, n_hidden) activations y^1
    output_pre: np.ndarray      # (B, n_output) pre-activations s^2
    output_out: np.ndarray      # (B, n_output) activations y^2


class MLP:
    """A 2-layer perceptron with pluggable hidden/output activations.

    Weight layout follows the paper's notation: ``w_hidden[j, i]`` is
    the weight from input i to hidden neuron j; ``w_output[k, j]`` from
    hidden neuron j to output neuron k.  Biases are separate vectors.
    """

    def __init__(self, config: MLPConfig, activation: Optional[Activation] = None):
        config.validate()
        self.config = config
        if activation is not None:
            self.activation = activation
        elif config.step_activation:
            self.activation = make_step()
        else:
            self.activation = make_sigmoid(config.sigmoid_slope)
        # The output layer always uses the standard sigmoid: the paper's
        # step/slope experiment targets the hidden-layer nonlinearity
        # (the analogue of spike generation).
        self.output_activation = make_sigmoid(1.0)
        rng = child_rng(config.seed, "mlp-init")
        scale = config.init_scale
        self.w_hidden = rng.uniform(-scale, scale, size=(config.n_hidden, config.n_inputs))
        self.b_hidden = rng.uniform(-scale, scale, size=config.n_hidden)
        self.w_output = rng.uniform(-scale, scale, size=(config.n_output, config.n_hidden))
        self.b_output = rng.uniform(-scale, scale, size=config.n_output)

    @property
    def n_weights(self) -> int:
        """Synaptic weight count, excluding biases (matches Table 7's text)."""
        return self.w_hidden.size + self.w_output.size

    def forward(self, inputs: np.ndarray) -> ForwardTrace:
        """Run the feed-forward path on a (B, n_inputs) batch in [0, 1]."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[1] != self.config.n_inputs:
            raise ConfigError(
                f"expected {self.config.n_inputs} inputs, got {inputs.shape[1]}"
            )
        hidden_pre = inputs @ self.w_hidden.T + self.b_hidden
        hidden_out = self.activation.forward(hidden_pre)
        output_pre = hidden_out @ self.w_output.T + self.b_output
        output_out = self.output_activation.forward(output_pre)
        return ForwardTrace(inputs, hidden_pre, hidden_out, output_pre, output_out)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over output neurons) for a batch."""
        return np.argmax(self.forward(inputs).output_out, axis=1)

    def predict_dataset(self, dataset) -> np.ndarray:
        """Predictions for every sample of a :class:`Dataset`."""
        return self.predict(dataset.normalized())

    def predict_images(self, images: np.ndarray) -> np.ndarray:
        """Predictions for raw 8-bit luminance rows (the serving format).

        Applies the same [0, 1] normalization as
        :meth:`~repro.datasets.base.Dataset.normalized`, so serving a
        request row by row is bit-identical to dataset evaluation.
        """
        images = np.atleast_2d(np.asarray(images))
        return self.predict(images.astype(np.float64) / 255.0)

    def copy_weights_from(self, other: "MLP") -> None:
        """Copy all parameters from another MLP of identical topology."""
        if other.w_hidden.shape != self.w_hidden.shape or other.w_output.shape != self.w_output.shape:
            raise TrainingError("cannot copy weights between different topologies")
        self.w_hidden = other.w_hidden.copy()
        self.b_hidden = other.b_hidden.copy()
        self.w_output = other.w_output.copy()
        self.b_output = other.b_output.copy()
