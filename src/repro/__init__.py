"""repro — reproduction of Du et al., "Neuromorphic Accelerators: A
Comparison Between Neuroscience and Machine-Learning Approaches"
(MICRO 2015).

The package compares the two accelerator families the paper studies:

* ``repro.mlp`` — the machine-learning model (MLP + Back-Propagation);
* ``repro.snn`` — the neuroscience model (single-layer LIF SNN with
  STDP, homeostasis and winner-takes-all dynamics, plus the SNNwot and
  SNN+BP variants);
* ``repro.hardware`` — the 65nm hardware cost models (spatially
  expanded and folded designs, SRAM storage, STDP online-learning
  circuit, GPU and TrueNorth references) and a cycle-accurate folded
  datapath simulator;
* ``repro.datasets`` — synthetic stand-ins for MNIST, MPEG-7 and
  Spoken Arabic Digits;
* ``repro.faults`` — seeded hardware fault models (SRAM bit flips,
  stuck-at synapses, dead neurons, spike-fabric noise, transient
  datapath upsets) injectable into every inference path;
* ``repro.analysis`` — regeneration of every quantitative table and
  figure of the paper, plus the fault-sweep robustness study.

Quickstart::

    from repro import load_digits, mnist_mlp_config, train_mlp, evaluate_mlp
    train, test = load_digits(n_train=1000, n_test=200)
    mlp = train_mlp(mnist_mlp_config(epochs=10), train)
    print(evaluate_mlp(mlp, test).summary())
"""

from .core import (
    MLPConfig,
    SNNConfig,
    ReproError,
    mnist_mlp_config,
    mnist_snn_config,
    mpeg7_mlp_config,
    mpeg7_snn_config,
    sad_mlp_config,
    sad_snn_config,
)
from .datasets import Dataset, load_digits, load_shapes, load_spoken
from .faults import FaultConfig, FaultInjector
from .mlp import MLP, QuantizedMLP, evaluate_mlp, train_mlp
from .snn import (
    BackPropSNN,
    SNNTrainer,
    SNNWithoutTime,
    SpikingNetwork,
    evaluate_snn,
    train_snn,
    train_snn_bp,
)

__version__ = "1.0.0"

__all__ = [
    "MLPConfig",
    "SNNConfig",
    "ReproError",
    "mnist_mlp_config",
    "mnist_snn_config",
    "mpeg7_mlp_config",
    "mpeg7_snn_config",
    "sad_mlp_config",
    "sad_snn_config",
    "Dataset",
    "load_digits",
    "load_shapes",
    "load_spoken",
    "FaultConfig",
    "FaultInjector",
    "MLP",
    "QuantizedMLP",
    "train_mlp",
    "evaluate_mlp",
    "SpikingNetwork",
    "SNNTrainer",
    "SNNWithoutTime",
    "BackPropSNN",
    "train_snn",
    "evaluate_snn",
    "train_snn_bp",
    "__version__",
]
