"""Benchmark for Figure 14 — rate vs temporal spike coding."""


def accuracy_at(result, coding, neurons):
    return result.find_row(coding=coding, neurons=neurons)["accuracy"]


def test_fig14_coding_schemes(run_experiment):
    result = run_experiment("fig14")
    sizes = sorted({row["neurons"] for row in result.rows})
    largest = sizes[-1]

    # The paper's central Figure 14 claim: rate coding beats both
    # temporal codings (91.82% vs 82.14% at 300 neurons).
    rate = accuracy_at(result, "rate (Gaussian)", largest)
    rank = accuracy_at(result, "rank order", largest)
    ttfs = accuracy_at(result, "time-to-first-spike", largest)
    assert rate > rank
    assert rate > ttfs
    assert rate - max(rank, ttfs) > 3.0

    # All schemes improve with network size from the smallest network.
    for coding in ("rate (Gaussian)", "rank order", "time-to-first-spike"):
        small = accuracy_at(result, coding, sizes[0])
        large = accuracy_at(result, coding, largest)
        assert large > small - 5.0

    # Section 4.2.2's companion check: Gaussian rate coding performs
    # like the Poisson rate coding used in Table 3 (no free fall).
    assert rate > 40.0
