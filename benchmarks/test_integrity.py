"""Audit-lane overhead benchmark: SDC defense must be nearly free.

Not part of the tier-1 suite (pytest ``testpaths`` excludes
``benchmarks/``).  Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_integrity.py -q -s

The experiment: serve the MLP through the :mod:`repro.serve` stack and
drive it with the closed-loop load harness at fixed client
concurrency, once with the audit lane off (``audit_rate=0``) and once
at the production setting (``audit_rate=0.01`` — one batch in a
hundred re-executed on the serial-interpreter oracle and
bit-compared).  The ratio of the two request rates is the price of
the defense.

Assertions:

* served labels are **bit-identical** to direct predictions at both
  points (the audit lane never changes an answer, only checks it);
* ``audit_rate=0`` performs zero audit checks and allocates no audit
  RNG — the defense costs literally nothing when off;
* every audit check at ``audit_rate=0.01`` matches (zero mismatches on
  an uncorrupted run);
* the audited run keeps at least ``1 - max_overhead_pct/100`` of the
  unaudited request rate (5% ceiling at full scale, lenient at the CI
  smoke scale where run-to-run noise dominates).

A final record times :meth:`~repro.serve.workers.ShardedPool.scrub_now`
over the published segment — the background scrubber's per-pass cost —
and asserts the pass is clean.

Results are appended to ``BENCH_PR10.json`` at the repository root,
keyed by scale.  Environment knobs mirror the other benchmark modules:
``REPRO_BENCH_SCALE`` selects ``full`` (default) or ``ci``;
``REPRO_BENCH_PR10_OUTPUT`` overrides the output path.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.config import MLPConfig
from repro.datasets.digits import load_digits
from repro.mlp.network import MLP
from repro.mlp.trainer import BackPropTrainer
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import InferenceServer
from repro.serve.loadgen import closed_loop

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = pathlib.Path(
    os.environ.get("REPRO_BENCH_PR10_OUTPUT", REPO_ROOT / "BENCH_PR10.json")
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")

#: Workload sizes and acceptance floors per scale.
PARAMS: Dict[str, dict] = {
    "full": {
        "n_train": 300,
        "n_test": 500,
        "mlp_hidden": 48,
        "mlp_epochs": 60,
        "concurrency": 16,
        "duration_seconds": 4.0,
        "max_batch": 16,
        "max_wait_us": 2000.0,
        "audit_rate": 0.01,
        "max_overhead_pct": 5.0,
        "repeats": 3,
        "n_verify": 48,
        "scrub_repeats": 20,
    },
    "ci": {
        "n_train": 120,
        "n_test": 150,
        "mlp_hidden": 24,
        "mlp_epochs": 30,
        "concurrency": 8,
        "duration_seconds": 1.5,
        "max_batch": 16,
        "max_wait_us": 2000.0,
        "audit_rate": 0.01,
        "max_overhead_pct": 30.0,
        "repeats": 2,
        "n_verify": 32,
        "scrub_repeats": 5,
    },
}

if SCALE not in PARAMS:  # pragma: no cover - config error guard
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE {SCALE!r}")

P = PARAMS[SCALE]

#: Results accumulated across the module, dumped to JSON at teardown.
RECORDS: Dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    if not RECORDS:
        return
    existing: Dict[str, dict] = {}
    if OUTPUT_PATH.exists():
        try:
            existing = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    from repro.core.hostinfo import host_metadata

    existing.setdefault("scales", {})[SCALE] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(REPO_ROOT),
        "params": P,
        "benchmarks": RECORDS,
    }
    existing["note"] = (
        "Audit-lane overhead from benchmarks/test_integrity.py.  One MLP "
        "on digits under closed-loop load; audit_overhead_pct is the "
        "requests/second lost to re-executing a seeded fraction of "
        "batches on the serial-interpreter oracle and bit-comparing.  "
        "scrub_pass_ms is the synchronous cost of one full SHA-256 "
        "re-verification of the shared segment."
    )
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def digits_pair():
    return load_digits(n_train=P["n_train"], n_test=P["n_test"], seed=7)


@pytest.fixture(scope="module")
def mlp_model(digits_pair):
    train_set, _ = digits_pair
    config = MLPConfig(
        n_inputs=train_set.n_inputs, n_hidden=P["mlp_hidden"], seed=11
    ).validate()
    network = MLP(config)
    BackPropTrainer(network, batch_size=16).train(
        train_set, epochs=P["mlp_epochs"]
    )
    return network


@pytest.fixture(scope="module")
def reference(mlp_model, digits_pair):
    """Whole-test-set direct predictions — the bit-identity oracle."""
    _, test_set = digits_pair
    return mlp_model.predict_images(test_set.images)


def _verify(server, reference, n_images: int) -> None:
    rng = np.random.default_rng(17)
    indices = sorted(
        int(i)
        for i in rng.choice(
            n_images, size=min(P["n_verify"], n_images), replace=False
        )
    )
    served = server.predict_many("mlp", indices=indices)
    np.testing.assert_array_equal(
        served,
        reference[indices],
        err_msg="served predictions diverged from direct predict_images",
    )


def _measure_once(mlp_model, test_set, reference, audit_rate: float, seed: int) -> dict:
    """One closed-loop run at one audit setting."""
    server = InferenceServer.from_models(
        {"mlp": mlp_model},
        policy=BatchPolicy(
            max_batch=P["max_batch"],
            max_wait_us=P["max_wait_us"],
            max_queue=4096,
        ),
        images=test_set.images,
        audit_rate=audit_rate,
        audit_seed=7,
    )
    try:
        _verify(server, reference, len(test_set.images))
        server.metrics["mlp"].reset()
        client = closed_loop(
            server,
            "mlp",
            len(test_set.images),
            concurrency=P["concurrency"],
            duration_seconds=P["duration_seconds"],
            seed=seed,
        )
        snapshot = server.metrics["mlp"].snapshot()
        integrity = server.integrity()
    finally:
        server.close()
    assert client["client_errors"] == 0
    assert snapshot["failed"] == 0
    assert integrity["audit_mismatches"] == 0
    if audit_rate == 0.0:
        assert integrity["audit_checks"] == 0
    return {
        "audit_rate": audit_rate,
        "requests_per_second": snapshot["requests_per_second"],
        "completed": snapshot["completed"],
        "latency_ms": snapshot["latency_ms"],
        "audit_checks": integrity["audit_checks"],
        "audit_matches": integrity["audit_matches"],
        "audit_skipped": integrity["audit_skipped"],
        "bit_identical": True,  # _verify would have raised
    }


class TestAuditLaneOverhead:
    def test_audit_rate_overhead_stays_under_ceiling(
        self, mlp_model, digits_pair, reference
    ):
        """Interleaved A/B rounds (audit off, audit on, repeat): the
        host's throughput drifts between rounds on shared runners, so
        the off/on points are paired in time and the best round per
        setting is compared — noise cancels, the audit cost remains."""
        _, test_set = digits_pair
        plain = audited = None
        for repeat in range(P["repeats"]):
            off = _measure_once(
                mlp_model, test_set, reference, audit_rate=0.0, seed=repeat
            )
            on = _measure_once(
                mlp_model,
                test_set,
                reference,
                audit_rate=P["audit_rate"],
                seed=repeat,
            )
            if (
                plain is None
                or off["requests_per_second"] > plain["requests_per_second"]
            ):
                plain = off
            if (
                audited is None
                or on["requests_per_second"] > audited["requests_per_second"]
            ):
                audited = on
        overhead_pct = 100.0 * (
            1.0
            - audited["requests_per_second"]
            / max(plain["requests_per_second"], 1e-9)
        )
        RECORDS["audit_off"] = plain
        RECORDS["audit_on"] = audited
        RECORDS["audit_overhead"] = {
            "audit_rate": P["audit_rate"],
            "rps_audit_off": plain["requests_per_second"],
            "rps_audit_on": audited["requests_per_second"],
            "overhead_pct": round(overhead_pct, 2),
            "ceiling_pct": P["max_overhead_pct"],
        }
        assert overhead_pct <= P["max_overhead_pct"], (
            f"audit_rate={P['audit_rate']} cost {overhead_pct:.1f}% of "
            f"requests/second ({audited['requests_per_second']:.0f} vs "
            f"{plain['requests_per_second']:.0f}) — above the "
            f"{P['max_overhead_pct']}% ceiling for scale {SCALE!r}"
        )


class TestScrubCost:
    def test_scrub_pass_is_clean_and_timed(self, mlp_model, digits_pair):
        """Per-pass cost of re-hashing the whole published segment."""
        from repro.serve.workers import ShardedPool

        _, test_set = digits_pair
        with ShardedPool(
            {"mlp": mlp_model}, jobs=1, images=test_set.images, warm=False
        ) as pool:
            durations = []
            for _ in range(P["scrub_repeats"]):
                begin = time.perf_counter()
                corrupt = pool.scrub_now()
                durations.append((time.perf_counter() - begin) * 1e3)
                assert corrupt == []
            RECORDS["scrub_pass"] = {
                "shared_nbytes": pool.nbytes_shared(),
                "repeats": P["scrub_repeats"],
                "scrub_pass_ms_mean": round(float(np.mean(durations)), 3),
                "scrub_pass_ms_max": round(float(np.max(durations)), 3),
            }
            assert pool.integrity_stats()["scrub_passes"] == P["scrub_repeats"]
