"""Benchmarks for Figures 5 and 6 — sigmoid-to-step bridging."""


def test_fig5_activation_profiles(run_experiment):
    result = run_experiment("fig5")
    # Deviation from the step decreases monotonically with slope a.
    deviations = [
        row["max_dev_from_step"]
        for row in result.rows
        if row["activation"].startswith("sigmoid")
    ]
    assert all(b < a for a, b in zip(deviations, deviations[1:]))
    assert result.find_row(activation="step [0/1]")["max_dev_from_step"] == 0.0


def test_fig6_bridging(run_experiment):
    result = run_experiment("fig6")
    errors = {row["activation"]: row["error_percent"] for row in result.rows}

    # The paper's claim: the step-function error is approached from
    # below as a grows — i.e. the threshold nonlinearity costs little
    # and the ordering error(a=1) <= error(step) holds (up to noise).
    assert errors["step [0/1]"] >= errors["sigmoid(a=1)"] - 1.0

    # The whole bridge spans only a few points of error (paper: the
    # range 2.35% -> 2.90%), not a collapse: even the hard step trains.
    assert errors["step [0/1]"] - errors["sigmoid(a=1)"] < 10.0
    for activation, error in errors.items():
        assert error < 50.0, f"{activation} failed to train"

    # The large-slope sigmoid behaves like the step.
    assert abs(errors["sigmoid(a=16)"] - errors["step [0/1]"]) < 6.0
