"""PR 9 acceptance benchmarks: execution backends vs the PR 8 executor.

Not part of the tier-1 suite (pytest ``testpaths`` excludes
``benchmarks/``).  Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_backends.py -q -s

Two throughput comparisons are measured and appended to
``BENCH_PR9.json`` keyed by scale, each with a CI floor:

* **snnwt plan eval** — the ``numpy-tiled`` backend (chunked LIF
  first-spike scan) versus the PR 8 vectorized executor (``numpy``
  backend) over the full warm-context test set; bit-identical labels,
  floor ``min_tiled_speedup``.
* **mlp-q plan eval** — the fused QUANT+GEMV dgemm path versus the
  PR 8 executor's unfused int64 matmul walk; bit-identical labels,
  same floor.  The ``int8-tiled`` backend is timed on the same plan
  and recorded (no floor: on BLAS-heavy hosts int8 accumulation is
  about parity, it exists for integer-only targets).

Timings interleave the two contenders rep by rep (median of
``reps``) so slow drift in the host penalizes both equally.

Environment knobs: ``REPRO_BENCH_SCALE`` (``full``/``ci``) and
``REPRO_BENCH_OUTPUT`` (JSON path override), as in the other
benchmark modules.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.config import MLPConfig, SNNConfig
from repro.datasets.digits import load_digits
from repro.ir import compile_model, run_plan
from repro.ir.plan_cache import context_for
from repro.mlp.network import MLP
from repro.mlp.quantized import QuantizedMLP
from repro.mlp.trainer import BackPropTrainer
from repro.snn.network import SNNTrainer, SpikingNetwork

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUTPUT", REPO_ROOT / "BENCH_PR9.json")
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")

PARAMS: Dict[str, dict] = {
    "full": {
        "n_train": 300,
        "n_test": 400,
        "snn_neurons": 50,
        "mlp_hidden": 20,
        "mlp_epochs": 5,
        "reps": 7,
        "min_tiled_speedup": 2.0,
    },
    "ci": {
        "n_train": 120,
        "n_test": 150,
        "snn_neurons": 20,
        "mlp_hidden": 10,
        "mlp_epochs": 2,
        "reps": 5,
        "min_tiled_speedup": 1.2,
    },
}

if SCALE not in PARAMS:  # pragma: no cover - config error guard
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE {SCALE!r}")

P = PARAMS[SCALE]

RECORDS: Dict[str, dict] = {}


def _record(name: str, **fields) -> None:
    RECORDS[name] = fields


def _interleaved_medians(contenders: Dict[str, callable], reps: int):
    """Median seconds per contender, alternating rep by rep."""
    samples = {name: [] for name in contenders}
    for _ in range(reps):
        for name, fn in contenders.items():
            t0 = time.perf_counter()
            fn()
            samples[name].append(time.perf_counter() - t0)
    return {name: statistics.median(times) for name, times in samples.items()}


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    if not RECORDS:
        return
    existing: Dict[str, dict] = {}
    if OUTPUT_PATH.exists():
        try:
            existing = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    from repro.core.hostinfo import host_metadata

    existing.setdefault("scales", {})[SCALE] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(REPO_ROOT),
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in P.items()
        },
        "benchmarks": RECORDS,
    }
    existing["note"] = (
        "Wall-clock numbers from benchmarks/test_backends.py: warm "
        "plan-eval throughput of the numpy-tiled backend (fused "
        "kernels, LIF first-spike scan, threaded row blocks) versus "
        "the PR 8 vectorized executor (numpy backend), bit-identical "
        "labels, interleaved medians; int8-tiled recorded on the "
        "quantized plan for reference."
    )
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def digits_pair():
    return load_digits(n_train=P["n_train"], n_test=P["n_test"], seed=7)


@pytest.fixture(scope="module")
def trained_snn(digits_pair):
    train_set, _ = digits_pair
    config = (
        SNNConfig(epochs=1, seed=11).with_neurons(P["snn_neurons"]).validate()
    )
    trainer = SNNTrainer(SpikingNetwork(config))
    trainer.train(train_set)
    trainer.label(train_set)
    return trainer.network


@pytest.fixture(scope="module")
def quantized_mlp(digits_pair):
    train_set, _ = digits_pair
    config = MLPConfig(
        n_inputs=train_set.n_inputs,
        n_hidden=P["mlp_hidden"],
        n_output=train_set.n_classes,
    ).validate()
    network = MLP(config)
    BackPropTrainer(network, batch_size=16).train(
        train_set, epochs=P["mlp_epochs"]
    )
    return QuantizedMLP(network)


class TestBackendThroughput:
    def test_snnwt_tiled_vs_pr8_executor(self, trained_snn, digits_pair):
        _, test_set = digits_pair
        images = np.asarray(test_set.images)
        indices = list(range(len(images)))
        plan = compile_model(trained_snn)
        ctx = context_for(plan, images)  # warm consts + encoded trains

        baseline = run_plan(
            plan, images, indices=indices, ctx=ctx, backend="numpy"
        )
        tiled = run_plan(
            plan, images, indices=indices, ctx=ctx, backend="numpy-tiled"
        )
        np.testing.assert_array_equal(tiled, baseline)

        medians = _interleaved_medians(
            {
                "numpy": lambda: run_plan(
                    plan, images, indices=indices, ctx=ctx, backend="numpy"
                ),
                "numpy-tiled": lambda: run_plan(
                    plan, images, indices=indices, ctx=ctx,
                    backend="numpy-tiled",
                ),
            },
            P["reps"],
        )
        speedup = medians["numpy"] / medians["numpy-tiled"]
        n = len(images)
        _record(
            "snnwt_plan_eval",
            images=n,
            numpy_seconds=round(medians["numpy"], 4),
            tiled_seconds=round(medians["numpy-tiled"], 4),
            numpy_rate=round(n / medians["numpy"], 1),
            tiled_rate=round(n / medians["numpy-tiled"], 1),
            speedup=round(speedup, 2),
        )
        assert speedup >= P["min_tiled_speedup"], (
            f"numpy-tiled snnwt eval ({medians['numpy-tiled']:.4f}s) must "
            f"beat the PR 8 executor ({medians['numpy']:.4f}s) by at "
            f"least {P['min_tiled_speedup']}x; got {speedup:.2f}x"
        )

    def test_mlp_q_tiled_vs_pr8_executor(self, quantized_mlp, digits_pair):
        _, test_set = digits_pair
        images = np.asarray(test_set.images)
        plan = compile_model(quantized_mlp)
        ctx = context_for(plan, images)

        baseline = run_plan(plan, images, ctx=ctx, backend="numpy")
        for backend in ("numpy-tiled", "int8-tiled"):
            got = run_plan(plan, images, ctx=ctx, backend=backend)
            np.testing.assert_array_equal(got, baseline)

        medians = _interleaved_medians(
            {
                backend: (
                    lambda b=backend: run_plan(
                        plan, images, ctx=ctx, backend=b
                    )
                )
                for backend in ("numpy", "numpy-tiled", "int8-tiled")
            },
            P["reps"],
        )
        speedup = medians["numpy"] / medians["numpy-tiled"]
        n = len(images)
        _record(
            "mlp_q_plan_eval",
            images=n,
            numpy_seconds=round(medians["numpy"], 5),
            tiled_seconds=round(medians["numpy-tiled"], 5),
            int8_seconds=round(medians["int8-tiled"], 5),
            numpy_rate=round(n / medians["numpy"], 1),
            tiled_rate=round(n / medians["numpy-tiled"], 1),
            int8_rate=round(n / medians["int8-tiled"], 1),
            speedup=round(speedup, 2),
            int8_speedup=round(medians["numpy"] / medians["int8-tiled"], 2),
        )
        assert speedup >= P["min_tiled_speedup"], (
            f"numpy-tiled mlp-q eval ({medians['numpy-tiled']:.5f}s) must "
            f"beat the PR 8 executor ({medians['numpy']:.5f}s) by at "
            f"least {P['min_tiled_speedup']}x; got {speedup:.2f}x"
        )
