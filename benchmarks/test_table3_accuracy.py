"""Benchmark for Table 3 — the central accuracy comparison.

Trains SNNwt (STDP), SNNwot, SNN+BP, MLP+BP and the 8-bit MLP on the
digits workload and checks the paper's orderings:

* MLP+BP is the most accurate;
* SNN+BP lands between SNN+STDP and MLP+BP (the learning rule, not
  spike coding, causes most of the gap — Section 3.2);
* SNNwot is within a few points of SNNwt (timing removal is cheap —
  Section 4.2.2);
* the 8-bit MLP is within ~2 points of the float MLP (Section 4.2.1).
"""


def accuracy_of(result, model):
    return result.find_row(model=model)["accuracy"]


def test_table3_accuracy(run_experiment):
    result = run_experiment("table3")

    mlp = accuracy_of(result, "MLP+BP")
    mlp_q8 = accuracy_of(result, "MLP+BP (8-bit fixed point)")
    snn_bp = accuracy_of(result, "SNN+BP")
    snn_wt = accuracy_of(result, "SNN+STDP - LIF (SNNwt)")
    snn_wot = accuracy_of(result, "SNN+STDP - Simplified (SNNwot)")

    # Paper ordering: 97.65 > 95.40 > 91.82 ~ 90.85.
    assert mlp > snn_bp > min(snn_wt, snn_wot)
    assert mlp > snn_wt and mlp > snn_wot

    # The MLP-over-STDP gap is significant (paper: 5.83 points).
    assert mlp - max(snn_wt, snn_wot) > 2.0

    # SNN+BP recovers most of that gap (paper: to within 2.25 points).
    assert mlp - snn_bp < mlp - max(snn_wt, snn_wot)

    # Timing removal costs little (paper: 0.97 points; allow noise).
    assert abs(snn_wt - snn_wot) < 8.0

    # 8-bit quantization costs little (paper: 1.0 point).
    assert mlp - mlp_q8 < 2.5

    # All models are far above chance (10%).
    for row in result.rows:
        assert row["accuracy"] > 40.0
