"""Benchmark for the large-scale crossover extension (Conclusions)."""


def test_scale_study(run_experiment):
    result = run_experiment("scale-study")
    rows = sorted(result.rows, key=lambda r: r["n_inputs"])
    assert len(rows) >= 3

    # Expanded designs: the SNN wins at *every* scale (MLP/SNN > 1 in
    # both area and time), and the advantage is scale-stable.
    expanded_area = [r["expanded_mlp_over_snn_area"] for r in rows]
    expanded_time = [r["expanded_mlp_over_snn_time"] for r in rows]
    assert all(v > 1.3 for v in expanded_area)
    assert all(v > 1.3 for v in expanded_time)
    assert max(expanded_area) - min(expanded_area) < 0.5  # stable in scale

    # Folded designs: the MLP wins at every scale, and its advantage
    # *grows* as the SNN's 3x synaptic storage dominates.
    folded = [r["folded_snn_over_mlp_area"] for r in rows]
    assert all(v > 1.0 for v in folded)
    assert folded[-1] > folded[0]

    # The paper's MNIST point sits on the sweep with its Table 7 ratio.
    mnist = result.find_row(input="28x28")
    assert 2.0 < mnist["folded_snn_over_mlp_area"] < 3.0
