"""Benchmark for Section 4.5 — MPEG-7 and SAD validation workloads."""


def test_sec45_workloads(run_experiment):
    result = run_experiment("sec45")

    for workload, mlp_topology, snn_topology in (
        ("MPEG-7", "MLP (28x28-15-10)", "SNN (28x28-90)"),
        ("SAD", "MLP (13x13-60-10)", "SNN (13x13-90)"),
    ):
        mlp = result.find_row(workload=workload, model=mlp_topology)["accuracy"]
        snn = result.find_row(workload=workload, model=snn_topology)["accuracy"]
        # Consistent with MNIST: the SNN is less accurate on both
        # (paper: 99.7 vs 92 on MPEG-7, 91.35 vs 74.7 on SAD).
        assert mlp > snn, f"{workload}: MLP {mlp} vs SNN {snn}"
        assert mlp > 50.0 and snn > 25.0

        # ... and the folded SNNwot costs more hardware than the MLP.
        # (SAD's energy ratio brushes parity at ni=1 in our model —
        # the paper's own figure is only 1.24 there — so the energy
        # floor is asserted with a small residual band.)
        area = result.find_row(
            workload=workload, model="SNNwot/MLP area ratio ni=1..16"
        )
        energy = result.find_row(
            workload=workload, model="SNNwot/MLP energy ratio ni=1..16"
        )
        assert area["low"] > 1.0
        assert energy["low"] > 0.85 and energy["high"] > 1.0

    # SAD's ratios are much smaller than MPEG-7's (the SAD MLP is
    # relatively big at 60 hidden neurons): paper 1.27-1.31 vs
    # 3.81-5.57 for area.
    mpeg7_area = result.find_row(
        workload="MPEG-7", model="SNNwot/MLP area ratio ni=1..16"
    )
    sad_area = result.find_row(
        workload="SAD", model="SNNwot/MLP area ratio ni=1..16"
    )
    assert mpeg7_area["high"] > sad_area["high"]

    # The paper's SAD gap (MLP - SNN = 16.65 points) is the largest of
    # the three workloads; ours should also be substantial.
    sad_gap = (
        result.find_row(workload="SAD", model="MLP (13x13-60-10)")["accuracy"]
        - result.find_row(workload="SAD", model="SNN (13x13-90)")["accuracy"]
    )
    assert sad_gap > 3.0
