"""Benchmark for Table 6 — SRAM bank plans for synaptic storage."""

import pytest


def test_table6_sram(run_experiment):
    result = run_experiment("table6")
    paper = {(r["network"], r["ni"]): r for r in result.paper_rows}
    for row in result.rows:
        reference = paper[(row["network"], row["ni"])]
        # Bank counts reproduce the paper exactly.
        assert row["n_banks"] == reference["n_banks"]
        # Areas and read energies within 6% at every point.
        assert row["area_mm2"] == pytest.approx(reference["area_mm2"], rel=0.06)
        assert row["energy_nj"] == pytest.approx(reference["energy_nj"], rel=0.10)

    # The structural reason the folded SNN loses (Section 4.3.3): it
    # stores ~3x the synapses, so at every ni its SRAM is ~2.7x the
    # MLP's.
    for ni in (1, 4, 8, 16):
        snn = result.find_row(network="SNN", ni=ni)["area_mm2"]
        mlp = result.find_row(network="MLP", ni=ni)["area_mm2"]
        assert snn / mlp == pytest.approx(235_200 / 79_400, rel=0.15)
