"""PR-7 benchmark: vectorized sweep engine vs the scalar oracle walk.

Not part of the tier-1 suite (pytest ``testpaths`` excludes
``benchmarks/``).  Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_sweep.py -q -s

Measured with a plain ``time.perf_counter`` clock:

* **Vectorized throughput** — :func:`repro.hardware.sweep.run_sweep`
  over the full (family x fold x hidden x bits x node) grid; at the
  ``full`` scale the grid covers the paper's entire Table 1 parameter
  ranges at four technology nodes (>= 1e6 design points).
* **Scalar throughput** — the same cost model through
  :func:`scalar_walk` (one :class:`DesignReport` per point), timed on
  a sampled combo subset and extrapolated; walking the full grid
  serially would take minutes for no extra information.
* **Speedup** — vectorized / scalar points-per-second; must clear
  ``min_speedup`` (50x at full scale — the acceptance bar).
* **Equivalence** — random rows of the vectorized result must equal
  the scalar oracle *bit for bit* (no tolerances), and the fast
  Pareto mask must match the O(n^2) pairwise oracle on a subsample.

Results are appended to ``BENCH_PR7.json`` at the repository root,
keyed by scale (``REPRO_BENCH_SCALE``: ``full`` default, ``ci`` for
the explore-smoke job; ``REPRO_BENCH_OUTPUT`` overrides the path).

Regression guard: measured rates must reach at least ``1/3`` of the
committed baseline for the scale — slack for runner variance; a real
regression (losing the vectorized path) is orders of magnitude.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.config import mnist_mlp_config, mnist_snn_config
from repro.hardware.sweep import (
    DEFAULT_FOLD_FACTORS,
    DEFAULT_WEIGHT_BITS,
    SweepGrid,
    pareto_mask,
    run_sweep,
    scalar_design_report,
    scalar_walk,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUTPUT", REPO_ROOT / "BENCH_PR7.json")
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")

PARAMS: Dict[str, dict] = {
    "full": {
        "hidden_step": 1,          # every width in Table 1's ranges
        "nodes": ("90nm", "65nm", "45nm", "28nm"),
        "jobs": 1,
        "min_points": 1_000_000,   # the acceptance floor
        "min_speedup": 50.0,
        "scalar_sample_combos": 6,
        "equivalence_samples": 60,
        "pareto_sample": 400,
    },
    "ci": {
        "hidden_step": 5,
        "nodes": ("65nm", "28nm"),
        "jobs": 2,
        "min_points": 100_000,
        "min_speedup": 10.0,
        "scalar_sample_combos": 4,
        "equivalence_samples": 30,
        "pareto_sample": 250,
    },
}

#: Committed baseline rates (design points / second) per scale; the
#: guard requires measured >= baseline / 3.
BASELINE_RATES: Dict[str, Dict[str, float]] = {
    "full": {"sweep_vectorized": 1_500_000.0, "sweep_scalar": 22_000.0},
    "ci": {"sweep_vectorized": 1_300_000.0, "sweep_scalar": 24_000.0},
}

if SCALE not in PARAMS:  # pragma: no cover - config error guard
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE {SCALE!r}")

P = PARAMS[SCALE]

RECORDS: Dict[str, dict] = {}


def _guard(name: str, rate: float) -> None:
    baseline = BASELINE_RATES[SCALE][name]
    floor = baseline / 3.0
    assert rate >= floor, (
        f"{name}: {rate:.0f} points/s is below the regression floor "
        f"{floor:.0f} points/s (baseline {baseline:.0f} / 3)"
    )


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    if not RECORDS:
        return
    existing: Dict[str, dict] = {}
    if OUTPUT_PATH.exists():
        try:
            existing = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    from repro.core.hostinfo import host_metadata

    existing.setdefault("scales", {})[SCALE] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(REPO_ROOT),
        "params": {k: list(v) if isinstance(v, tuple) else v for k, v in P.items()},
        "baseline_rates": BASELINE_RATES[SCALE],
        "benchmarks": RECORDS,
    }
    existing["note"] = (
        "Wall-clock numbers from benchmarks/test_sweep.py. Rates are "
        "design points/second through the full analytical cost model; "
        "the speedup is vectorized/scalar on bit-identical outputs "
        "(the scalar rate is measured on a sampled combo subset)."
    )
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def grid() -> SweepGrid:
    return SweepGrid(
        hidden_sizes=tuple(range(1, 1601, P["hidden_step"])),
        fold_factors=DEFAULT_FOLD_FACTORS,
        weight_bits=DEFAULT_WEIGHT_BITS,
        nodes=P["nodes"],
        mlp_config=mnist_mlp_config(),
        snn_config=mnist_snn_config(),
    ).validate()


@pytest.fixture(scope="module")
def swept(grid):
    # Warm-up on a thin slice so first-touch costs (imports, numpy
    # buffer pools, thread-pool spin-up) don't land in the timed run.
    warmup = SweepGrid(
        hidden_sizes=(10, 100),
        mlp_config=grid.mlp_config,
        snn_config=grid.snn_config,
    ).validate()
    run_sweep(warmup, jobs=P["jobs"], use_cache=False)
    # Best of three with GC paused: shared runners are noisy and a
    # single outlier run shouldn't fail the 50x bar.
    elapsed = float("inf")
    gc.disable()
    try:
        for _ in range(3):
            gc.collect()
            t0 = time.perf_counter()
            result = run_sweep(grid, jobs=P["jobs"], use_cache=False)
            elapsed = min(elapsed, time.perf_counter() - t0)
    finally:
        gc.enable()
    return result, elapsed


class TestSweepThroughput:
    def test_vectorized_vs_scalar_speedup(self, grid, swept):
        result, vec_seconds = swept
        assert result.n_points >= P["min_points"], (
            f"grid has {result.n_points:,} points; the acceptance bar "
            f"is {P['min_points']:,}"
        )
        vec_rate = result.n_points / max(vec_seconds, 1e-9)

        combos = grid.combos()
        stride = max(len(combos) // P["scalar_sample_combos"], 1)
        sample = combos[::stride][: P["scalar_sample_combos"]]
        n_scalar = sum(c.n_points for c in sample)
        scalar_seconds = float("inf")
        gc.disable()
        try:
            for _ in range(2):
                gc.collect()
                t0 = time.perf_counter()
                for _ in scalar_walk(grid, sample):
                    pass
                scalar_seconds = min(
                    scalar_seconds, time.perf_counter() - t0
                )
        finally:
            gc.enable()
        scalar_rate = n_scalar / max(scalar_seconds, 1e-9)

        speedup = vec_rate / scalar_rate
        RECORDS["sweep"] = {
            "n_points": result.n_points,
            "vectorized_seconds": round(vec_seconds, 4),
            "vectorized_points_per_s": round(vec_rate, 1),
            "scalar_sample_points": n_scalar,
            "scalar_points_per_s": round(scalar_rate, 1),
            "speedup": round(speedup, 1),
            "jobs": P["jobs"],
        }
        print(
            f"\n[{SCALE}] {result.n_points:,} points: vectorized "
            f"{vec_rate:,.0f} pts/s vs scalar {scalar_rate:,.0f} pts/s "
            f"-> {speedup:.1f}x"
        )
        _guard("sweep_vectorized", vec_rate)
        _guard("sweep_scalar", scalar_rate)
        assert speedup >= P["min_speedup"], (
            f"speedup {speedup:.1f}x is below the {P['min_speedup']}x bar"
        )


class TestSweepCorrectness:
    def test_sampled_rows_bit_identical(self, grid, swept):
        result, _ = swept
        rng = np.random.default_rng(2015)
        mismatches = 0
        for i in rng.choice(
            result.n_points, size=P["equivalence_samples"], replace=False
        ):
            i = int(i)
            report = scalar_design_report(
                result.family_of(i),
                int(result.ni[i]),
                int(result.hidden[i]),
                int(result.weight_bits[i]),
                result.nodes[int(result.node_code[i])],
                grid.mlp_config,
                grid.snn_config,
            )
            same = (
                float(result.logic_area_mm2[i]) == report.logic_area_mm2
                and float(result.sram_area_mm2[i]) == report.sram_area_mm2
                and float(result.delay_ns[i]) == report.delay_ns
                and int(result.cycles_per_image[i]) == report.cycles_per_image
                and float(result.energy_per_image_uj[i])
                == report.energy_per_image_uj
            )
            mismatches += 0 if same else 1
        RECORDS["equivalence"] = {
            "sampled_rows": P["equivalence_samples"],
            "mismatches": mismatches,
        }
        assert mismatches == 0

    def test_pareto_matches_pairwise_oracle(self, swept):
        result, _ = swept
        rng = np.random.default_rng(7)
        idx = rng.choice(result.n_points, size=P["pareto_sample"], replace=False)
        values = np.column_stack(
            [result.metric("area")[idx], result.metric("latency")[idx]]
        )
        oracle = np.ones(len(idx), dtype=bool)
        for i in range(len(idx)):
            for j in range(len(idx)):
                if i != j and (values[j] <= values[i]).all() and (
                    values[j] < values[i]
                ).any():
                    oracle[i] = False
                    break
        fast = pareto_mask(values)
        RECORDS["pareto"] = {
            "sampled_rows": int(len(idx)),
            "frontier_size": int(fast.sum()),
            "identical_to_oracle": bool(np.array_equal(fast, oracle)),
        }
        assert np.array_equal(fast, oracle)
