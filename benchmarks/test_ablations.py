"""Ablation benches for the scaled-down training adaptations.

DESIGN.md documents four adaptations that make the paper's SNN+STDP
pipeline converge at laptop scale (the paper trains on 60k images for
tens of epochs; we train on a few thousand):

1. expected-value STDP (vs the literal sampled rule),
2. prototype weight initialization (vs uniform random),
3. per-win "conscience" homeostasis (vs the long-epoch schedule),
4. threshold calibration (vs the fixed w_max*70 start).

Each ablation turns one adaptation off and measures the accuracy drop,
demonstrating that the adaptation compensates for scale rather than
changing the model's conclusions (the MLP > SNN ordering holds in
every arm).
"""

from dataclasses import replace

import pytest

from repro.core.config import mnist_snn_config
from repro.core.rng import child_rng
from repro.datasets.digits import load_digits
from repro.snn.network import SNNTrainer, SpikingNetwork

N_NEURONS = 100
EPOCHS = 3


@pytest.fixture(scope="module")
def data():
    return load_digits(n_train=800, n_test=250)


def train_variant(
    data,
    stdp_mode="expected",
    prototype_init=True,
    conscience=True,
    calibrate=True,
    soft=False,
):
    train_set, test_set = data
    config = replace(
        mnist_snn_config(epochs=EPOCHS).with_neurons(N_NEURONS),
        stdp_mode=stdp_mode,
        stdp_soft=soft,
    )
    network = SpikingNetwork(config)
    trainer = SNNTrainer(network, conscience=conscience)
    if not prototype_init:
        # Keep the uniform random initialization.
        trainer.train(train_set, initialize=False, calibrate=calibrate)
    else:
        trainer.train(train_set, calibrate=calibrate)
    network.equalize_thresholds()
    trainer.label(train_set)
    return trainer.evaluate(test_set).accuracy_percent


def test_ablation_baseline_vs_all(benchmark, data):
    """Full pipeline baseline, benchmarked; individual arms below."""
    accuracy = benchmark.pedantic(lambda: train_variant(data), rounds=1, iterations=1)
    assert accuracy > 55.0


def test_ablation_sampled_stdp(benchmark, data):
    """Literal spike-sampled STDP: works, but noisier at this scale."""
    sampled = benchmark.pedantic(
        lambda: train_variant(data, stdp_mode="sampled"), rounds=1, iterations=1
    )
    baseline = train_variant(data)
    # The sampled rule must still learn (well above 10% chance) ...
    assert sampled > 25.0
    # ... but the expected rule is at least as good at this scale.
    assert baseline >= sampled - 5.0


def test_ablation_uniform_init(benchmark, data):
    """Uniform random init: the winner signal drowns; accuracy drops."""
    uniform = benchmark.pedantic(
        lambda: train_variant(data, prototype_init=False), rounds=1, iterations=1
    )
    baseline = train_variant(data)
    assert baseline > uniform + 5.0


def test_ablation_no_conscience(benchmark, data):
    """Paper-schedule homeostasis: converges too slowly at this scale."""
    plain = benchmark.pedantic(
        lambda: train_variant(data, conscience=False), rounds=1, iterations=1
    )
    baseline = train_variant(data)
    assert baseline >= plain - 3.0


def test_ablation_soft_stdp(benchmark, data):
    """Soft-bound STDP: graded weights, lower receptive-field contrast."""
    soft = benchmark.pedantic(
        lambda: train_variant(data, soft=True), rounds=1, iterations=1
    )
    # The soft rule is a legitimate model variant; it must train.
    assert soft > 30.0
