"""Benchmark for Figure 8 — accuracy vs neuron count for both models."""


def series(result, model):
    rows = [r for r in result.rows if r["model"] == model]
    return sorted(rows, key=lambda r: r["neurons"])


def test_fig8_neuron_sweep(run_experiment):
    result = run_experiment("fig8")
    mlp = series(result, "MLP")
    snn = series(result, "SNN")

    # MLP dominates the SNN at comparable sizes (paper: everywhere).
    mlp_at = {r["neurons"]: r["accuracy"] for r in mlp}
    snn_at = {r["neurons"]: r["accuracy"] for r in snn}
    for n in set(mlp_at) & set(snn_at):
        assert mlp_at[n] > snn_at[n] - 3.0
    assert max(mlp_at.values()) > max(snn_at.values())

    # MLP plateaus: going 100 -> 300 buys little (paper: 97.65 -> ~97.9).
    assert mlp_at[300] - mlp_at[100] < 4.0
    # ... while adding capacity below the knee buys a lot.  On the
    # synthetic digits the knee sits at ~8-10 hidden units (the task is
    # easier than MNIST), so the rise is measured from the smallest
    # sweep point.
    smallest = min(mlp_at)
    assert mlp_at[100] - mlp_at[smallest] > 3.0

    # SNN accuracy grows with neurons and needs ~300 to plateau
    # (paper: the SNN curve still climbs to 300).
    assert snn_at[300] > snn_at[10]
    assert snn_at[100] > snn_at[10]

    # The Section 4.2.3 iso-accuracy point exists: a small MLP
    # (10-15 hidden) already reaches the large SNN's accuracy regime.
    assert mlp_at[15] > snn_at[300] - 10.0
