"""Wall-clock regression harness for the vectorized cold paths.

Not part of the tier-1 suite (pytest ``testpaths`` excludes
``benchmarks/``).  Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_regression.py -q -s

Five things are measured with a plain ``time.perf_counter`` clock
(pytest-benchmark's statistics are overkill for end-to-end runs that
take seconds):

* SNN evaluation through the per-image reference path
  (:meth:`SNNTrainer.predict_serial`) versus the batched grid engine
  (:meth:`SNNTrainer.predict`).  The predictions must be bit-identical
  and the batched path must clear ``min_speedup`` for the scale.
* STDP **training** through the serial oracle
  (:meth:`SNNTrainer.train_serial`) versus the fused engine
  (:meth:`SNNTrainer.train`); trained weights must be bit-identical
  and the fused path must clear ``min_train_speedup``.
* The folded SNNwt **cycle simulator**: the pre-vectorization walk
  (scalar LFSR RNG + per-pixel schedule + cycle-by-cycle scan,
  reconstructed via ``run_image_serial``) versus the fast kernel
  (bulk LFSR leaps + closed-form trace), with identical winners; the
  fast path must clear ``min_cyclesim_speedup``.
* MLP and quantized-MLP whole-dataset inference throughput.
* An end-to-end ``full_report`` cold/warm pair exercising the
  content-addressed model cache: the warm run must record zero cache
  misses (no retraining) and finish faster than the cold run.

Results are appended to ``BENCH_PR3.json`` at the repository root,
keyed by scale, so the committed file carries both the full-scale
numbers and the CI smoke-scale numbers.

Environment knobs:

``REPRO_BENCH_SCALE``
    ``full`` (default) or ``ci``.  The CI scale shrinks datasets and
    networks so the whole module runs in well under a minute on a
    shared runner, and relaxes the speedup floor (small batches
    amortize the per-step overhead less).
``REPRO_BENCH_OUTPUT``
    Override the JSON output path (CI uploads it as an artifact).

Regression guard: each throughput benchmark must achieve at least
``1/3`` of the committed baseline rate for its scale.  The 3x slack
absorbs hardware differences between the machine that recorded the
baselines and whatever runner executes the guard; a real regression
(e.g. losing the batched fast path) is an order of magnitude.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from typing import Dict

import numpy as np
import pytest

from repro.core import artifacts
from repro.core.config import MLPConfig, SNNConfig
from repro.datasets.digits import load_digits
from repro.mlp.network import MLP
from repro.mlp.quantized import QuantizedMLP
from repro.mlp.trainer import BackPropTrainer
from repro.snn.network import SNNTrainer, SpikingNetwork

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUTPUT", REPO_ROOT / "BENCH_PR3.json")
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")

#: Workload sizes and acceptance floors per scale.
PARAMS: Dict[str, dict] = {
    "full": {
        "n_train": 300,
        "n_test": 500,
        "snn_neurons": 50,
        "mlp_hidden": 20,
        "mlp_epochs": 5,
        "min_speedup": 5.0,
        "train_epochs": 2,
        "min_train_speedup": 3.0,
        "cyclesim_images": 6,
        "cyclesim_ni": 16,
        "min_cyclesim_speedup": 2.0,
        "report_ids": ["table3"],
    },
    "ci": {
        "n_train": 120,
        "n_test": 150,
        "snn_neurons": 20,
        "mlp_hidden": 10,
        "mlp_epochs": 2,
        "min_speedup": 2.0,
        "train_epochs": 1,
        "min_train_speedup": 1.5,
        "cyclesim_images": 3,
        "cyclesim_ni": 16,
        "min_cyclesim_speedup": 1.5,
        "report_ids": ["table3"],
    },
}

#: Committed baseline throughput (images/second) per scale, recorded
#: on the machine that produced BENCH_PR2.json.  The guard requires
#: measured >= baseline / 3.
BASELINE_RATES: Dict[str, Dict[str, float]] = {
    "full": {
        "snn_eval_serial": 126.0,
        "snn_eval_batched": 736.0,
        "mlp_eval": 300_000.0,
        "quantized_mlp_eval": 78_000.0,
        "stdp_train_serial": 185.0,
        "stdp_train_fused": 616.0,
        "cyclesim_snnwt_serial": 9.9,
        "cyclesim_snnwt_fast": 387.0,
    },
    "ci": {
        "snn_eval_serial": 130.0,
        "snn_eval_batched": 700.0,
        "mlp_eval": 400_000.0,
        "quantized_mlp_eval": 110_000.0,
        "stdp_train_serial": 160.0,
        "stdp_train_fused": 505.0,
        "cyclesim_snnwt_serial": 8.0,
        "cyclesim_snnwt_fast": 334.0,
    },
}

if SCALE not in PARAMS:  # pragma: no cover - config error guard
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE {SCALE!r}")

P = PARAMS[SCALE]

#: Results accumulated across the module, dumped to JSON at teardown.
RECORDS: Dict[str, dict] = {}


def _record(name: str, **fields) -> None:
    RECORDS[name] = fields


def _rate(n_images: int, seconds: float) -> float:
    return n_images / max(seconds, 1e-9)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _guard(name: str, rate: float) -> None:
    baseline = BASELINE_RATES[SCALE][name]
    floor = baseline / 3.0
    assert rate >= floor, (
        f"{name}: {rate:.1f} img/s is below the regression floor "
        f"{floor:.1f} img/s (baseline {baseline:.1f} / 3)"
    )


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    if not RECORDS:
        return
    existing: Dict[str, dict] = {}
    if OUTPUT_PATH.exists():
        try:
            existing = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    from repro.core.hostinfo import host_metadata

    existing.setdefault("scales", {})[SCALE] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(REPO_ROOT),
        # Kept alongside host metadata for readers of older payloads.
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "params": P,
        "baseline_rates": BASELINE_RATES[SCALE],
        "benchmarks": RECORDS,
    }
    existing["note"] = (
        "Wall-clock numbers from benchmarks/test_perf_regression.py. "
        "Rates are images/second; speedups are serial/batched wall-clock "
        "ratios on bit-identical predictions."
    )
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def digits_pair():
    return load_digits(n_train=P["n_train"], n_test=P["n_test"], seed=7)


@pytest.fixture(scope="module")
def trained_snn(digits_pair):
    train_set, _ = digits_pair
    config = (
        SNNConfig(epochs=1, seed=11).with_neurons(P["snn_neurons"]).validate()
    )
    trainer = SNNTrainer(SpikingNetwork(config))
    trainer.train(train_set)
    trainer.label(train_set)
    return trainer


@pytest.fixture(scope="module")
def trained_mlp(digits_pair):
    train_set, _ = digits_pair
    config = MLPConfig(
        n_inputs=train_set.n_inputs,
        n_hidden=P["mlp_hidden"],
        n_output=train_set.n_classes,
    ).validate()
    network = MLP(config)
    BackPropTrainer(network, batch_size=16).train(
        train_set, epochs=P["mlp_epochs"]
    )
    return network


class TestSNNEvaluation:
    def test_batched_speedup_with_identical_predictions(
        self, trained_snn, digits_pair
    ):
        _, test_set = digits_pair
        n = len(test_set.images)

        # Warm both paths once (first call pays lazy imports and
        # allocator warmup), then keep the best of two timed runs —
        # standard practice for wall-clock benchmarks.
        serial = trained_snn.predict_serial(test_set)
        batched = trained_snn.predict(test_set)

        serial_s = min(
            _timed(lambda: trained_snn.predict_serial(test_set))
            for _ in range(2)
        )
        batched_s = min(
            _timed(lambda: trained_snn.predict(test_set)) for _ in range(2)
        )

        assert np.array_equal(serial, batched), (
            "batched SNN evaluation diverged from the per-image oracle"
        )
        speedup = serial_s / batched_s
        _record(
            "snn_eval_serial",
            images=n,
            seconds=round(serial_s, 4),
            images_per_second=round(_rate(n, serial_s), 1),
        )
        _record(
            "snn_eval_batched",
            images=n,
            seconds=round(batched_s, 4),
            images_per_second=round(_rate(n, batched_s), 1),
            speedup_vs_serial=round(speedup, 2),
            identical_predictions=True,
        )
        _guard("snn_eval_serial", _rate(n, serial_s))
        _guard("snn_eval_batched", _rate(n, batched_s))
        assert speedup >= P["min_speedup"], (
            f"batched SNN eval speedup {speedup:.2f}x is below the "
            f"{P['min_speedup']}x floor for scale {SCALE!r}"
        )


class TestSTDPTraining:
    def test_fused_speedup_with_identical_weights(self, digits_pair):
        """Serial-oracle vs fused STDP training at the reference
        multi-epoch schedule; trained weights must be bit-identical."""
        import repro.snn.training  # noqa: F401  pre-pay the lazy SciPy import

        train_set, _ = digits_pair
        epochs = P["train_epochs"]
        n = len(train_set.images) * epochs
        config = (
            SNNConfig(epochs=epochs, seed=11)
            .with_neurons(P["snn_neurons"])
            .validate()
        )

        def _train(engine: str):
            trainer = SNNTrainer(SpikingNetwork(config))
            t0 = time.perf_counter()
            trainer.train(train_set, engine=engine)
            return time.perf_counter() - t0, trainer.network

        # Warm allocators / import paths on a throwaway single-epoch run.
        SNNTrainer(SpikingNetwork(config)).train(train_set, epochs=1)

        serial_s, serial_net = _train("serial")
        fused_s, fused_net = _train("fused")

        assert np.array_equal(fused_net.weights, serial_net.weights), (
            "fused STDP training diverged from the serial oracle"
        )
        assert np.array_equal(
            fused_net.population.thresholds, serial_net.population.thresholds
        )
        speedup = serial_s / fused_s
        _record(
            "stdp_train_serial",
            images=n,
            epochs=epochs,
            seconds=round(serial_s, 4),
            images_per_second=round(_rate(n, serial_s), 1),
        )
        _record(
            "stdp_train_fused",
            images=n,
            epochs=epochs,
            seconds=round(fused_s, 4),
            images_per_second=round(_rate(n, fused_s), 1),
            speedup_vs_serial=round(speedup, 2),
            identical_weights=True,
        )
        _guard("stdp_train_serial", _rate(n, serial_s))
        _guard("stdp_train_fused", _rate(n, fused_s))
        assert speedup >= P["min_train_speedup"], (
            f"fused STDP training speedup {speedup:.2f}x is below the "
            f"{P['min_train_speedup']}x floor for scale {SCALE!r}"
        )


class TestCycleSimThroughput:
    def test_fast_snnwt_speedup_with_identical_winners(
        self, trained_snn, digits_pair
    ):
        """The fast folded-SNNwt kernel vs the pre-vectorization walk.

        The baseline reconstructs the historical simulator: scalar
        4-LFSR RNG, per-pixel interval schedule, cycle-by-cycle scan
        (``run_image_serial`` with the serial schedule and a serial
        ``HardwareGaussian``).  Both consume bit-identical RNG streams,
        so winners must agree exactly.
        """
        from repro.hardware.cyclesim import FoldedSNNwtSimulator
        from repro.hardware.rng_hw import HardwareGaussian

        _, test_set = digits_pair
        network = trained_snn.network
        ni = P["cyclesim_ni"]
        images = test_set.images[: P["cyclesim_images"]]
        n = len(images)

        fast = FoldedSNNwtSimulator(network, ni, seed=1)
        fast.run_image(images[0])  # warm
        fast = FoldedSNNwtSimulator(network, ni, seed=1)
        t0 = time.perf_counter()
        fast_winners = [fast.run_image(image)[0] for image in images]
        fast_s = time.perf_counter() - t0

        serial = FoldedSNNwtSimulator(network, ni, seed=1)
        serial.rng = HardwareGaussian(
            seeds=[1, 1 * 7 + 3, 1 * 131 + 17, 1 * 8191 + 5]
        )
        serial._spike_schedule = serial._spike_schedule_serial
        t0 = time.perf_counter()
        serial_winners = [
            serial.run_image_serial(image)[0] for image in images
        ]
        serial_s = time.perf_counter() - t0

        assert fast_winners == serial_winners, (
            "fast SNNwt kernel diverged from the cycle-by-cycle walk"
        )
        speedup = serial_s / fast_s
        _record(
            "cyclesim_snnwt_serial",
            images=n,
            ni=ni,
            seconds=round(serial_s, 4),
            images_per_second=round(_rate(n, serial_s), 2),
        )
        _record(
            "cyclesim_snnwt_fast",
            images=n,
            ni=ni,
            seconds=round(fast_s, 4),
            images_per_second=round(_rate(n, fast_s), 2),
            speedup_vs_serial=round(speedup, 2),
            identical_winners=True,
        )
        _guard("cyclesim_snnwt_serial", _rate(n, serial_s))
        _guard("cyclesim_snnwt_fast", _rate(n, fast_s))
        assert speedup >= P["min_cyclesim_speedup"], (
            f"fast SNNwt cycle-sim speedup {speedup:.2f}x is below the "
            f"{P['min_cyclesim_speedup']}x floor for scale {SCALE!r}"
        )


class TestMLPEvaluation:
    def test_float_mlp_throughput(self, trained_mlp, digits_pair):
        _, test_set = digits_pair
        n = len(test_set.images)
        trained_mlp.predict_dataset(test_set)  # warm the BLAS path
        t0 = time.perf_counter()
        for _ in range(10):
            trained_mlp.predict_dataset(test_set)
        seconds = (time.perf_counter() - t0) / 10
        rate = _rate(n, seconds)
        _record(
            "mlp_eval",
            images=n,
            seconds=round(seconds, 6),
            images_per_second=round(rate, 1),
        )
        _guard("mlp_eval", rate)

    def test_quantized_mlp_throughput(self, trained_mlp, digits_pair):
        _, test_set = digits_pair
        n = len(test_set.images)
        quantized = QuantizedMLP(trained_mlp)
        quantized.predict_dataset(test_set)
        t0 = time.perf_counter()
        for _ in range(10):
            quantized.predict_dataset(test_set)
        seconds = (time.perf_counter() - t0) / 10
        rate = _rate(n, seconds)
        _record(
            "quantized_mlp_eval",
            images=n,
            seconds=round(seconds, 6),
            images_per_second=round(rate, 1),
        )
        _guard("quantized_mlp_eval", rate)


class TestReportCache:
    def test_cold_then_warm_report(self):
        """A warm report retrains nothing and runs faster.

        The session-scoped conftest fixture points REPRO_CACHE_DIR at a
        fresh temporary directory, so the first run here is genuinely
        cold for this process.
        """
        from repro.analysis.report import full_report

        ids = P["report_ids"]
        artifacts.cache_stats()  # touch the default cache
        artifacts.default_cache().stats.reset()

        t0 = time.perf_counter()
        cold = full_report(ids)
        cold_s = time.perf_counter() - t0
        cold_stats = dict(artifacts.cache_stats())

        artifacts.default_cache().stats.reset()
        t0 = time.perf_counter()
        warm = full_report(ids)
        warm_s = time.perf_counter() - t0
        warm_stats = dict(artifacts.cache_stats())

        def _strip_timing(text: str) -> str:
            return "\n".join(
                line
                for line in text.splitlines()
                if not line.startswith("elapsed:")
            )

        assert _strip_timing(cold) == _strip_timing(warm)
        assert warm_stats["misses"] == 0, "warm report retrained a model"
        assert warm_stats["hits"] >= 1
        assert warm_s < cold_s
        _record(
            "report_cold",
            experiment_ids=ids,
            seconds=round(cold_s, 3),
            cache_stats=cold_stats,
        )
        _record(
            "report_warm",
            experiment_ids=ids,
            seconds=round(warm_s, 3),
            cache_stats=warm_stats,
            speedup_vs_cold=round(cold_s / max(warm_s, 1e-9), 2),
        )
