"""Benchmark for Table 7 — the central folded/expanded design table."""

import pytest


def test_table7_folded(run_experiment):
    result = run_experiment("table7")
    paper = {(r["design"], r["ni"]): r for r in result.paper_rows}
    for row in result.rows:
        reference = paper[(row["design"], row["ni"])]
        assert row["total_mm2"] == pytest.approx(reference["total_mm2"], rel=0.10)
        assert row["cycles"] == pytest.approx(reference["cycles"], rel=0.02)

    # Conclusion (Section 4.3.3): the expanded ranking flips when
    # designs are folded to realistic footprints.
    for ni in ("1", "4", "8", "16"):
        mlp = result.find_row(design="MLP", ni=ni)
        wot = result.find_row(design="SNNwot", ni=ni)
        assert mlp["total_mm2"] < wot["total_mm2"]
        assert mlp["energy_uj"] < wot["energy_uj"]
    assert (
        result.find_row(design="MLP", ni="expanded")["total_mm2"]
        > result.find_row(design="SNNwot", ni="expanded")["total_mm2"]
    )

    # The ni=16 ratios the paper quotes: 2.57x area, 2.41x energy.
    mlp16 = result.find_row(design="MLP", ni="16")
    wot16 = result.find_row(design="SNNwot", ni="16")
    assert wot16["total_mm2"] / mlp16["total_mm2"] == pytest.approx(2.57, rel=0.15)
    assert wot16["energy_uj"] / mlp16["energy_uj"] == pytest.approx(2.41, rel=0.25)

    # SNNwt is cost-competitive but 500x slower (one cycle per ms).
    wt16 = result.find_row(design="SNNwt", ni="16")
    assert wt16["total_mm2"] < wot16["total_mm2"]
    assert wt16["cycles"] == 500 * wot16["cycles"]

    # Folding shrinks the MLP by the paper's ~39x (ni=16) to ~76x (ni=1)
    # relative to expanded (total-area basis).
    mlp_expanded = result.find_row(design="MLP", ni="expanded")["total_mm2"]
    assert mlp_expanded / mlp16["total_mm2"] > 10
    assert mlp_expanded / result.find_row(design="MLP", ni="1")["total_mm2"] > 50
