"""PR 8 acceptance benchmarks: compiled inference plans end to end.

Not part of the tier-1 suite (pytest ``testpaths`` excludes
``benchmarks/``).  Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_ir.py -q -s

Four things are measured with a plain ``time.perf_counter`` clock and
appended to ``BENCH_PR8.json`` keyed by scale:

* **Compile cost** — lowering each of the five model kinds onto the
  IR, plus the plan-memo hit rate over a double ``get_plan`` pass
  (the serving pattern: every runner asks once, every stats call asks
  again).
* **Executor throughput** — warm plan evaluation of the timed SNN
  versus the PR 2 batched engine (bit-identical labels, floor
  ``min_plan_speedup``), and the quantized MLP plan versus the legacy
  ``predict_images`` hot path.
* **Shard cold-start** — ``ShardedPool`` spawn->ready with plan
  shipping (skeleton + consts + encoded trains through shared memory)
  versus the legacy publish (each shard re-encodes the dataset); plan
  spawns must be faster.
* **Cyclesim sweep pricing** — ``sample_with_cyclesim`` (one
  fold-invariant label pass per family + closed-form cycles) versus
  the scalar per-point ``predict_with_cycles`` walk over the same
  sampled design points; floor ``min_cyclesim_speedup``.

Environment knobs: ``REPRO_BENCH_SCALE`` (``full``/``ci``) and
``REPRO_BENCH_OUTPUT`` (JSON path override), as in the other
benchmark modules.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.config import MLPConfig, SNNConfig
from repro.datasets.digits import load_digits
from repro.hardware.cyclesim import (
    FoldedMLPSimulator,
    FoldedSNNwotSimulator,
    FoldedSNNwtSimulator,
)
from repro.hardware.sweep import SweepGrid, run_sweep, sample_with_cyclesim
from repro.ir import compile_model, get_plan, run_plan
from repro.ir.plan_cache import (
    context_for,
    plan_cache_stats,
    reset_plan_cache,
)
from repro.mlp.network import MLP
from repro.mlp.quantized import QuantizedMLP
from repro.mlp.trainer import BackPropTrainer
from repro.serve.workers import ShardedPool
from repro.snn.network import SNNTrainer, SpikingNetwork
from repro.snn.snn_bp import train_snn_bp
from repro.snn.snn_wot import SNNWithoutTime

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUTPUT", REPO_ROOT / "BENCH_PR8.json")
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")

PARAMS: Dict[str, dict] = {
    "full": {
        "n_train": 300,
        "n_test": 400,
        "snn_neurons": 50,
        "mlp_hidden": 20,
        "mlp_epochs": 5,
        "min_plan_speedup": 1.0,
        "sweep_fold_factors": (1, 2, 4, 8, 12, 16),
        "sweep_weight_bits": (2, 4, 8),
        "cyclesim_images": 6,
        "min_cyclesim_speedup": 10.0,
        "pool_jobs": 2,
    },
    "ci": {
        "n_train": 120,
        "n_test": 150,
        "snn_neurons": 20,
        "mlp_hidden": 10,
        "mlp_epochs": 2,
        "min_plan_speedup": 1.0,
        "sweep_fold_factors": (1, 4, 16),
        "sweep_weight_bits": (4, 8),
        "cyclesim_images": 3,
        "min_cyclesim_speedup": 3.0,
        "pool_jobs": 2,
    },
}

if SCALE not in PARAMS:  # pragma: no cover - config error guard
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE {SCALE!r}")

P = PARAMS[SCALE]

RECORDS: Dict[str, dict] = {}


def _record(name: str, **fields) -> None:
    RECORDS[name] = fields


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    if not RECORDS:
        return
    existing: Dict[str, dict] = {}
    if OUTPUT_PATH.exists():
        try:
            existing = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    from repro.core.hostinfo import host_metadata

    existing.setdefault("scales", {})[SCALE] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(REPO_ROOT),
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in P.items()
        },
        "benchmarks": RECORDS,
    }
    existing["note"] = (
        "Wall-clock numbers from benchmarks/test_ir.py: IR compile cost "
        "and plan-cache hit rate, warm plan-executor throughput vs the "
        "legacy engines (bit-identical labels), plan-shipping shard "
        "spawn->ready vs legacy model rebuild, and IR-driven cyclesim "
        "sweep pricing vs the scalar per-point walk."
    )
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def digits_pair():
    return load_digits(n_train=P["n_train"], n_test=P["n_test"], seed=7)


@pytest.fixture(scope="module")
def trained_snn(digits_pair):
    train_set, _ = digits_pair
    config = (
        SNNConfig(epochs=1, seed=11).with_neurons(P["snn_neurons"]).validate()
    )
    trainer = SNNTrainer(SpikingNetwork(config))
    trainer.train(train_set)
    trainer.label(train_set)
    return trainer


@pytest.fixture(scope="module")
def trained_mlp(digits_pair):
    train_set, _ = digits_pair
    config = MLPConfig(
        n_inputs=train_set.n_inputs,
        n_hidden=P["mlp_hidden"],
        n_output=train_set.n_classes,
    ).validate()
    network = MLP(config)
    BackPropTrainer(network, batch_size=16).train(
        train_set, epochs=P["mlp_epochs"]
    )
    return network


@pytest.fixture(scope="module")
def all_models(trained_mlp, trained_snn, digits_pair):
    train_set, _ = digits_pair
    return {
        "mlp": trained_mlp,
        "mlp-q": QuantizedMLP(trained_mlp),
        "snnwt": trained_snn.network,
        "snnwot": SNNWithoutTime(trained_snn.network),
        "snnbp": train_snn_bp(
            SNNConfig(seed=11)
            .with_neurons(P["snn_neurons"])
            .validate(),
            train_set,
            epochs=1,
        ),
    }


class TestCompileAndCache:
    def test_compile_cost_and_memo_hit_rate(self, all_models):
        reset_plan_cache()
        compile_seconds = {}
        for kind, model in all_models.items():
            compile_seconds[kind] = min(
                _timed(lambda m=model: compile_model(m)) for _ in range(3)
            )
        # The serving pattern: every runner asks once (miss+compile),
        # every later caller asks again (hit).
        reset_plan_cache()
        for model in all_models.values():
            get_plan(model)
        for model in all_models.values():
            get_plan(model)
        stats = plan_cache_stats()
        lookups = stats["plan_hits"] + stats["plan_misses"]
        hit_rate = stats["plan_hits"] / lookups
        assert stats["plan_compiles"] == len(all_models)
        assert hit_rate == 0.5
        _record(
            "ir_compile",
            compile_ms={
                kind: round(seconds * 1e3, 3)
                for kind, seconds in compile_seconds.items()
            },
            memo_lookups=lookups,
            memo_hit_rate=hit_rate,
        )


class TestExecutorThroughput:
    def test_snnwt_plan_vs_pr2_engine(self, trained_snn, digits_pair):
        _, test_set = digits_pair
        trainer = trained_snn
        n = len(test_set.images)

        legacy = trainer.predict(test_set, engine="legacy")
        planned = trainer.predict(test_set)  # warms the trains cache
        assert np.array_equal(planned, legacy), (
            "plan engine diverged from the PR 2 batched engine"
        )

        legacy_s = min(
            _timed(lambda: trainer.predict(test_set, engine="legacy"))
            for _ in range(2)
        )
        plan_s = min(
            _timed(lambda: trainer.predict(test_set)) for _ in range(2)
        )
        speedup = legacy_s / plan_s
        _record(
            "snnwt_eval",
            images=n,
            legacy_seconds=round(legacy_s, 4),
            plan_seconds=round(plan_s, 4),
            legacy_rate=round(n / legacy_s, 1),
            plan_rate=round(n / plan_s, 1),
            speedup=round(speedup, 2),
        )
        assert speedup >= P["min_plan_speedup"], (
            f"warm plan evaluation ({plan_s:.3f}s) slower than the PR 2 "
            f"engine ({legacy_s:.3f}s); floor {P['min_plan_speedup']}x"
        )

    def test_mlp_q_plan_vs_legacy_hot_path(self, all_models, digits_pair):
        _, test_set = digits_pair
        model = all_models["mlp-q"]
        images = np.asarray(test_set.images)
        n = len(images)

        plan = compile_model(model)
        ctx = context_for(plan, images)
        legacy = model.predict_images(images)
        planned = run_plan(plan, images, ctx=ctx)
        assert np.array_equal(planned, legacy)

        legacy_s = min(
            _timed(lambda: model.predict_images(images)) for _ in range(3)
        )
        plan_s = min(
            _timed(lambda: run_plan(plan, images, ctx=ctx))
            for _ in range(3)
        )
        _record(
            "mlp_q_eval",
            images=n,
            legacy_seconds=round(legacy_s, 5),
            plan_seconds=round(plan_s, 5),
            legacy_rate=round(n / legacy_s, 1),
            plan_rate=round(n / plan_s, 1),
            plan_overhead_ratio=round(plan_s / legacy_s, 3),
        )
        # The plan walks the same kernels; anything past a 2x ratio
        # means the instruction walk itself regressed.
        assert plan_s <= 2.0 * legacy_s


class TestShardColdStart:
    def test_plan_shipping_spawns_faster(self, trained_snn, digits_pair):
        _, test_set = digits_pair
        images = np.asarray(test_set.images)
        network = trained_snn.network
        indices = [0, 1, 2]
        reference = None
        spawn_means = {}
        for engine in ("legacy", "plan"):
            with ShardedPool(
                {"snnwt": network},
                jobs=P["pool_jobs"],
                images=images,
                engine=engine,
            ) as pool:
                got = pool.run_batch("snnwt", indices, None)
                stats = pool.stats()
            if reference is None:
                reference = got
            else:
                np.testing.assert_array_equal(got, reference)
            spawn_means[engine] = stats["spawn_ready_seconds"]["mean"]
        _record(
            "shard_cold_start",
            jobs=P["pool_jobs"],
            images=len(images),
            legacy_spawn_ready_s=round(spawn_means["legacy"], 4),
            plan_spawn_ready_s=round(spawn_means["plan"], 4),
            speedup=round(spawn_means["legacy"] / spawn_means["plan"], 2),
        )
        assert spawn_means["plan"] < spawn_means["legacy"], (
            "plan-shipping spawn->ready "
            f"({spawn_means['plan']:.3f}s) is not faster than the legacy "
            f"model rebuild ({spawn_means['legacy']:.3f}s)"
        )


class TestCyclesimSweep:
    def test_sampled_pricing_vs_scalar_walk(self, all_models, digits_pair):
        _, test_set = digits_pair
        images = np.asarray(test_set.images[: P["cyclesim_images"]])
        labels = np.asarray(test_set.labels[: P["cyclesim_images"]])
        network = all_models["snnwt"]
        models = {
            "MLP": all_models["mlp-q"],
            "SNNwot": all_models["snnwot"],
            "SNNwt": network,
        }
        grid = SweepGrid(
            hidden_sizes=(P["mlp_hidden"], P["snn_neurons"]),
            families=("MLP", "SNNwot", "SNNwt"),
            fold_factors=P["sweep_fold_factors"],
            weight_bits=P["sweep_weight_bits"],
            mlp_config=all_models["mlp"].config,
            snn_config=network.config,
        ).validate()
        result = run_sweep(grid)
        # Invalid corners (ni * weight_bits > 128) are dropped by the
        # grid, so ask for every surviving folded row of each family.
        n_samples = 3 * len(P["sweep_fold_factors"]) * len(
            P["sweep_weight_bits"]
        )

        kwargs = dict(labels=labels, n_samples=n_samples, seed=3)
        doc = sample_with_cyclesim(result, models, images, **kwargs)
        fast_s = _timed(
            lambda: sample_with_cyclesim(result, models, images, **kwargs)
        )

        def scalar_point(point):
            family, ni = point["family"], point["ni"]
            if family == "MLP":
                sim = FoldedMLPSimulator(models["MLP"], ni=ni)
                return sim.predict_with_cycles(
                    images.astype(np.float64) / 255.0
                )
            if family == "SNNwot":
                sim = FoldedSNNwotSimulator(models["SNNwot"], ni=ni)
                return sim.predict_with_cycles(images)
            sim = FoldedSNNwtSimulator(network, ni=ni, seed=1)
            return sim.predict_with_cycles(images)

        def scalar_walk():
            for point in doc["points"]:
                scalar_point(point)

        scalar_s = _timed(scalar_walk)
        speedup = scalar_s / fast_s
        _record(
            "cyclesim_sweep",
            points=doc["n_sampled"],
            images=len(images),
            fast_seconds=round(fast_s, 4),
            scalar_seconds=round(scalar_s, 4),
            fast_points_per_s=round(doc["n_sampled"] / fast_s, 1),
            scalar_points_per_s=round(doc["n_sampled"] / scalar_s, 1),
            speedup=round(speedup, 1),
        )
        assert doc["n_sampled"] >= 3 * len(P["sweep_fold_factors"])
        assert speedup >= P["min_cyclesim_speedup"], (
            f"IR-driven cyclesim sweep ({fast_s:.3f}s) must beat the "
            f"scalar per-point walk ({scalar_s:.3f}s) by at least "
            f"{P['min_cyclesim_speedup']}x; got {speedup:.1f}x"
        )
