"""Benchmark for Table 9 — the SNN with online STDP learning."""

import pytest

from repro.core.config import mnist_snn_config
from repro.hardware.online import stdp_overhead


def test_table9_online(run_experiment):
    result = run_experiment("table9")
    paper = {r["ni"]: r for r in result.paper_rows}
    for row in result.rows:
        reference = paper[row["ni"]]
        assert row["total_mm2"] == pytest.approx(reference["total_mm2"], rel=0.20)
        assert row["energy_mj"] == pytest.approx(reference["energy_mj"], rel=0.25)

    # Section 4.4.1's quoted overheads over the plain folded SNNwt:
    # area 1.93x (ni=1) down to 1.34x (ni=16); delay +7% at most;
    # energy 1.50x down to ~1.02x.
    config = mnist_snn_config()
    high = stdp_overhead(config, 1)
    low = stdp_overhead(config, 16)
    assert high["area_ratio"] == pytest.approx(1.93, rel=0.10)
    assert low["area_ratio"] == pytest.approx(1.34, rel=0.15)
    assert max(high["delay_ratio"], low["delay_ratio"]) <= 1.07 + 1e-9
    assert high["energy_ratio"] == pytest.approx(1.50, rel=0.15)
    assert low["energy_ratio"] < 1.15

    # The takeaway: attaching permanent online learning costs well
    # under one doubling of the accelerator at useful fold factors.
    assert low["area_ratio"] < 2.0
