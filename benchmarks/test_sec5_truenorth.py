"""Benchmark for Section 5 — SNNwot vs the reimplemented TrueNorth core."""

import pytest


def test_sec5_truenorth(run_experiment):
    result = run_experiment("sec5")
    snn = result.find_row(design="SNNwot folded ni=1")
    truenorth = result.find_row(design="TrueNorth core")

    # The paper's comparison: SNNwot wins on all four axes.
    # Area: 3.17 vs 3.30 mm^2 (close).
    assert snn["area_mm2"] < truenorth["area_mm2"] * 1.05
    assert snn["area_mm2"] == pytest.approx(3.17, rel=0.10)
    assert truenorth["area_mm2"] == pytest.approx(3.30, rel=0.02)

    # Time: 0.98 us vs 1024 us (three orders of magnitude — TrueNorth
    # runs at 1 MHz by design).
    assert truenorth["time_us"] / snn["time_us"] > 500
    assert truenorth["time_us"] == pytest.approx(1024.0, rel=0.01)

    # Energy: 1.03 vs 2.48 uJ.
    assert snn["energy_uj"] < truenorth["energy_uj"]
    assert truenorth["energy_uj"] == pytest.approx(2.48, rel=0.01)

    # Accuracy: the crossbar quantization costs TrueNorth accuracy
    # (paper: 89% vs 90.85%); both stay far above chance.
    assert truenorth["accuracy"] <= snn["accuracy"] + 1.0
    assert truenorth["accuracy"] > 30.0
    assert snn["accuracy"] > 40.0
