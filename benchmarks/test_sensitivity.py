"""Benchmark for the hyper-parameter sensitivity study (Section 3.1)."""


def best_of(result, parameter):
    rows = [r for r in result.rows if r["parameter"] == parameter]
    return max(rows, key=lambda r: r["accuracy"])


def chosen_of(result, parameter):
    (row,) = [r for r in result.rows if r["parameter"] == parameter and r["chosen"]]
    return row


def test_sensitivity_study(run_experiment):
    result = run_experiment("sensitivity")

    # The paper's headline observation: the best leak constant is far
    # above the bio-plausible ~50 ms (their best was 500 ms).
    leak_rows = {r["value"]: r["accuracy"] for r in result.rows if r["parameter"] == "t_leak_ms"}
    assert max(leak_rows[500.0], leak_rows[1000.0]) > leak_rows[50.0] - 2.0
    assert best_of(result, "t_leak_ms")["value"] >= 150.0

    # The Table 1 chosen value of every parameter is competitive:
    # within a few points of the best value in its sweep.
    for parameter in ("t_leak_ms", "t_ltp_ms", "t_period_ms"):
        best = best_of(result, parameter)["accuracy"]
        chosen = chosen_of(result, parameter)["accuracy"]
        assert chosen > best - 6.0, f"{parameter}: chosen {chosen} vs best {best}"

    # Everything in the sweeps trains well above chance.
    for row in result.rows:
        assert row["accuracy"] > 25.0
