"""Benchmarks for Tables 1 and 2 (configuration and literature context)."""


def test_table1_config(run_experiment):
    result = run_experiment("table1")
    # Every regenerated parameter must equal the paper's chosen value.
    paper = {(r["model"], r["parameter"]): r["value"] for r in result.paper_rows}
    for row in result.rows:
        assert paper[(row["model"], row["parameter"])] == row["value"]


def test_table2_reference(run_experiment):
    result = run_experiment("table2")
    accuracies = {row["model"]: row["accuracy"] for row in result.rows}
    # The literature landscape the paper frames its study in:
    # MLP+BP above the SNN+STDP results, deep nets above everything.
    assert accuracies["MLP+BP (Simard et al.)"] > accuracies["SNN+STDP (Querlioz et al.)"]
    assert accuracies["MCDNN (Ciresan et al.)"] > accuracies["MLP+BP (Simard et al.)"]
