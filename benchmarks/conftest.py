"""Benchmark harness: one benchmark per paper table/figure.

Each benchmark runs the corresponding registered experiment exactly
once (rounds=1 — these are end-to-end regenerations, not microbenches),
prints the paper-vs-measured tables, appends them to
``benchmarks/results/`` for EXPERIMENTS.md, and asserts the paper's
qualitative claims (orderings, ratios, crossovers) on the measured
rows.
"""

from __future__ import annotations

import json
import pathlib

import pytest

import repro.analysis  # noqa: F401  (registers all experiments)
from repro.analysis.report import render_result
from repro.core import registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Host-metadata keys every BENCH_*.json record carries as of PR 4
#: (see :func:`repro.core.hostinfo.host_metadata`).
HOST_KEYS = ("cpu_count", "platform", "machine", "python", "numpy", "git_sha")


def _backfill_host(record: dict) -> None:
    """Ensure ``record["host"]`` exists with every HOST_KEYS entry.

    Pre-PR4 payloads carried no ``host`` block (at best loose
    ``python`` / ``numpy`` / ``machine`` fields); readers written
    against the new shape can rely on the keys existing, with ``None``
    marking genuinely unrecorded values.
    """
    host = record.get("host")
    if not isinstance(host, dict):
        host = {}
    for key in HOST_KEYS:
        host.setdefault(key, record.get(key))
    record["host"] = host


def load_bench(path) -> dict:
    """Backfill-safe reader for any committed ``BENCH_*.json``.

    Returns ``{}`` for a missing/corrupt file.  Otherwise guarantees a
    ``host`` block (see :func:`_backfill_host`) on the top level *and*
    on every per-scale record under ``"scales"``, so comparisons
    between old and new payloads never KeyError on host metadata.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    _backfill_host(payload)
    scales = payload.get("scales")
    if isinstance(scales, dict):
        for record in scales.values():
            if isinstance(record, dict):
                _backfill_host(record)
    return payload


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Per-run model-cache dir (no .repro-cache in the repository)."""
    import os

    from repro.core.artifacts import reset_default_cache

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("model-cache"))
    reset_default_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_default_cache()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_experiment(benchmark, results_dir):
    """Run one registered experiment under the benchmark clock."""

    def runner(experiment_id: str, **kwargs):
        spec = registry.get(experiment_id)
        result = benchmark.pedantic(
            lambda: spec.run(**kwargs), rounds=1, iterations=1
        )
        rendered = render_result(result)
        print()
        print(rendered)
        (results_dir / f"{experiment_id}.txt").write_text(rendered)
        return result

    return runner


def rows_by(result, **criteria):
    """All measured rows matching the criteria."""
    return [
        row
        for row in result.rows
        if all(row.get(key) == value for key, value in criteria.items())
    ]


def value_of(result, column, **criteria):
    """The single matching row's column value."""
    matches = rows_by(result, **criteria)
    assert len(matches) == 1, f"expected 1 row for {criteria}, got {len(matches)}"
    return matches[0][column]
