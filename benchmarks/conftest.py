"""Benchmark harness: one benchmark per paper table/figure.

Each benchmark runs the corresponding registered experiment exactly
once (rounds=1 — these are end-to-end regenerations, not microbenches),
prints the paper-vs-measured tables, appends them to
``benchmarks/results/`` for EXPERIMENTS.md, and asserts the paper's
qualitative claims (orderings, ratios, crossovers) on the measured
rows.
"""

from __future__ import annotations

import pathlib

import pytest

import repro.analysis  # noqa: F401  (registers all experiments)
from repro.analysis.report import render_result
from repro.core import registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Per-run model-cache dir (no .repro-cache in the repository)."""
    import os

    from repro.core.artifacts import reset_default_cache

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("model-cache"))
    reset_default_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_default_cache()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_experiment(benchmark, results_dir):
    """Run one registered experiment under the benchmark clock."""

    def runner(experiment_id: str, **kwargs):
        spec = registry.get(experiment_id)
        result = benchmark.pedantic(
            lambda: spec.run(**kwargs), rounds=1, iterations=1
        )
        rendered = render_result(result)
        print()
        print(rendered)
        (results_dir / f"{experiment_id}.txt").write_text(rendered)
        return result

    return runner


def rows_by(result, **criteria):
    """All measured rows matching the criteria."""
    return [
        row
        for row in result.rows
        if all(row.get(key) == value for key, value in criteria.items())
    ]


def value_of(result, column, **criteria):
    """The single matching row's column value."""
    matches = rows_by(result, **criteria)
    assert len(matches) == 1, f"expected 1 row for {criteria}, got {len(matches)}"
    return matches[0][column]
