"""Benchmarks for Tables 4 and 5 — spatially expanded designs."""

import pytest


def test_table4_expanded_areas(run_experiment):
    result = run_experiment("table4")
    paper = {r["design"]: r for r in result.paper_rows}
    for row in result.rows:
        reference = paper[row["design"]]
        # Calibrated model: every expanded area within 7% of Table 4.
        assert row["total_mm2"] == pytest.approx(reference["total_mm2"], rel=0.07)

    # Headline: expanded MLP far larger than expanded SNN, despite the
    # SNN having 3x the neurons (multipliers vs adders).
    mlp = result.find_row(design="MLP expanded (28x28-100-10)")["total_mm2"]
    wot = result.find_row(design="SNNwot expanded")["total_mm2"]
    wt = result.find_row(design="SNNwt expanded")["total_mm2"]
    assert mlp > wot > wt

    # Iso-accuracy point (Section 4.2.3): the 15-hidden MLP that
    # matches SNN accuracy is several times smaller than either SNN.
    small_mlp = result.find_row(design="MLP expanded (28x28-15-10)")["total_mm2"]
    assert small_mlp < wt * 0.45 and small_mlp < wot * 0.45


def test_table5_small_layouts(run_experiment):
    result = run_experiment("table5")
    snn = result.find_row(design="SNN 4x4-20")
    mlp = result.find_row(design="MLP 4x4-10-10")
    # Paper: at 4x4 scale the expanded MLP is ~2.6x the SNN area,
    # ~1.7x its delay and ~2x its energy.
    assert 1.5 < mlp["area_mm2"] / snn["area_mm2"] < 5.0
    assert mlp["delay_ns"] > snn["delay_ns"]
    assert mlp["energy_nj"] > snn["energy_nj"]
    # Absolute anchors within the model's tolerance.
    assert snn["area_mm2"] == pytest.approx(0.08, rel=0.40)
    assert mlp["area_mm2"] == pytest.approx(0.21, rel=0.40)
