"""Closed-loop serving benchmark: dynamic batching pays for itself.

Not part of the tier-1 suite (pytest ``testpaths`` excludes
``benchmarks/``).  Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_serving.py -q -s

The experiment: serve the timed SNN (the model whose forward pass is a
millisecond-grid simulation, i.e. the one worth batching) through the
:mod:`repro.serve` stack and drive it with the closed-loop load
harness at a fixed client concurrency, sweeping the micro-batcher's
``max_batch`` over the scale's sweep (``{1, 4, 16, 64}`` at full
scale).  ``max_batch=1`` *is* batch-size-1 serving — every request
runs alone through the engine — so the sweep directly measures what
dynamic micro-batching buys at identical offered load.

Assertions:

* served labels are **bit-identical** to direct ``predict_batch``
  calls at every sweep point (batch composition never changes answers);
* ``max_batch=16`` achieves at least ``min_serving_speedup`` times the
  requests/second of ``max_batch=1`` (4x at full scale, 2x at the CI
  smoke scale);
* p99 request latency at the ``max_batch=16`` point stays under the
  scale's ceiling (batching must buy throughput without wrecking the
  tail).

A final record serves the same model through a 2-shard
:class:`~repro.serve.workers.ShardedPool` (zero-copy weights + dataset
in shared memory) to capture the process-backend numbers; on a
single-core runner this documents overhead, not speedup, so it only
asserts bit-identity.

Results are appended to ``BENCH_PR4.json`` at the repository root,
keyed by scale.  Environment knobs mirror
``benchmarks/test_perf_regression.py``: ``REPRO_BENCH_SCALE`` selects
``full`` (default) or ``ci``; ``REPRO_BENCH_PR4_OUTPUT`` overrides the
output path (the CI smoke job uploads it as an artifact).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.config import SNNConfig
from repro.datasets.digits import load_digits
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import InferenceServer
from repro.serve.loadgen import closed_loop
from repro.snn.batched import predict_batch
from repro.snn.network import SNNTrainer, SpikingNetwork

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = pathlib.Path(
    os.environ.get("REPRO_BENCH_PR4_OUTPUT", REPO_ROOT / "BENCH_PR4.json")
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")

#: Workload sizes and acceptance floors per scale.
PARAMS: Dict[str, dict] = {
    "full": {
        "n_train": 300,
        "n_test": 500,
        "snn_neurons": 50,
        "sweep": [1, 4, 16, 64],
        "concurrency": 32,
        "duration_seconds": 4.0,
        "max_wait_us": 2000.0,
        "min_serving_speedup": 4.0,
        "p99_ceiling_ms": 400.0,
        "pool_jobs": 2,
        "pool_duration_seconds": 3.0,
        "n_verify": 48,
    },
    "ci": {
        "n_train": 120,
        "n_test": 150,
        "snn_neurons": 20,
        "sweep": [1, 16],
        "concurrency": 16,
        "duration_seconds": 1.5,
        "max_wait_us": 2000.0,
        "min_serving_speedup": 2.0,
        "p99_ceiling_ms": 750.0,
        "pool_jobs": 2,
        "pool_duration_seconds": 1.0,
        "n_verify": 32,
    },
}

if SCALE not in PARAMS:  # pragma: no cover - config error guard
    raise RuntimeError(f"unknown REPRO_BENCH_SCALE {SCALE!r}")

P = PARAMS[SCALE]

#: Results accumulated across the module, dumped to JSON at teardown.
RECORDS: Dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    if not RECORDS:
        return
    existing: Dict[str, dict] = {}
    if OUTPUT_PATH.exists():
        try:
            existing = json.loads(OUTPUT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    from repro.core.hostinfo import host_metadata

    existing.setdefault("scales", {})[SCALE] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(REPO_ROOT),
        "params": P,
        "benchmarks": RECORDS,
    }
    existing["note"] = (
        "Closed-loop serving throughput from benchmarks/test_serving.py. "
        "One snnwt model on digits; requests_per_second is the server-side "
        "completion rate over the observation window; the max_batch sweep "
        "holds client concurrency fixed, so the ratio is the win from "
        "dynamic micro-batching alone.  Served labels are asserted "
        "bit-identical to direct predict_batch calls at every point."
    )
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def digits_pair():
    return load_digits(n_train=P["n_train"], n_test=P["n_test"], seed=7)


@pytest.fixture(scope="module")
def snn_model(digits_pair):
    train_set, _ = digits_pair
    config = (
        SNNConfig(epochs=1, seed=11).with_neurons(P["snn_neurons"]).validate()
    )
    network = SpikingNetwork(config)
    SNNTrainer(network).fit(train_set)
    return network


@pytest.fixture(scope="module")
def reference(snn_model, digits_pair):
    """Whole-test-set direct predictions — the bit-identity oracle."""
    _, test_set = digits_pair
    return predict_batch(snn_model, test_set.images)


def _verify(server, reference, n_images: int) -> None:
    rng = np.random.default_rng(17)
    indices = sorted(
        int(i)
        for i in rng.choice(n_images, size=min(P["n_verify"], n_images), replace=False)
    )
    served = server.predict_many("snnwt", indices=indices)
    np.testing.assert_array_equal(
        served,
        reference[indices],
        err_msg="served predictions diverged from direct predict_batch",
    )


def _drive(server, n_images: int) -> dict:
    """Warm, verify, load; returns the server-side metric snapshot."""
    client = closed_loop(
        server,
        "snnwt",
        n_images,
        concurrency=P["concurrency"],
        duration_seconds=P["duration_seconds"],
        seed=0,
    )
    snapshot = server.metrics["snnwt"].snapshot()
    snapshot["client"] = client
    return snapshot


class TestServingSweep:
    def test_micro_batching_throughput_and_bit_identity(
        self, snn_model, digits_pair, reference
    ):
        _, test_set = digits_pair
        n = len(test_set.images)
        rates: Dict[int, float] = {}
        for max_batch in P["sweep"]:
            server = InferenceServer.from_models(
                {"snnwt": snn_model},
                policy=BatchPolicy(
                    max_batch=max_batch,
                    max_wait_us=P["max_wait_us"],
                    max_queue=4096,
                ),
                images=test_set.images,
            )
            try:
                server.warm()  # pre-encode: measure serving, not encoding
                _verify(server, reference, n)
                server.metrics["snnwt"].reset()
                snapshot = _drive(server, n)
            finally:
                server.close()
            rates[max_batch] = snapshot["requests_per_second"]
            RECORDS[f"serve_closed_b{max_batch}"] = {
                "max_batch": max_batch,
                "concurrency": P["concurrency"],
                "completed": snapshot["completed"],
                "requests_per_second": snapshot["requests_per_second"],
                "mean_batch_size": snapshot["mean_batch_size"],
                "batch_occupancy": snapshot["batch_occupancy"],
                "queue_depth_peak": snapshot["queue_depth_peak"],
                "latency_ms": snapshot["latency_ms"],
                "client_rps": snapshot["client"]["client_rps"],
                "client_errors": snapshot["client"]["client_errors"],
                "bit_identical": True,  # _verify would have raised
            }
            assert snapshot["client"]["client_errors"] == 0
            assert snapshot["failed"] == 0

        speedup = rates[16] / max(rates[1], 1e-9)
        RECORDS["serve_speedup_16_vs_1"] = {
            "rps_b1": rates[1],
            "rps_b16": rates[16],
            "speedup": round(speedup, 2),
            "floor": P["min_serving_speedup"],
        }
        assert speedup >= P["min_serving_speedup"], (
            f"max_batch=16 serving achieved {rates[16]:.1f} req/s vs "
            f"{rates[1]:.1f} req/s at max_batch=1 — {speedup:.2f}x is below "
            f"the {P['min_serving_speedup']}x floor for scale {SCALE!r}"
        )

        p99 = RECORDS["serve_closed_b16"]["latency_ms"].get("p99")
        RECORDS["serve_p99_ceiling"] = {
            "p99_ms": p99,
            "ceiling_ms": P["p99_ceiling_ms"],
        }
        assert p99 is not None and p99 <= P["p99_ceiling_ms"], (
            f"p99 latency {p99}ms at max_batch=16 exceeds the "
            f"{P['p99_ceiling_ms']}ms ceiling for scale {SCALE!r}"
        )


class TestShardedPoolServing:
    def test_pool_backend_records_and_stays_bit_identical(
        self, snn_model, digits_pair, reference
    ):
        """2 worker shards over zero-copy shared weights + dataset.

        On a single-core runner this point documents the process
        backend's overhead rather than a speedup, so it asserts only
        correctness; the numbers land in BENCH_PR4.json for machines
        with cores to spare.
        """
        from repro.serve.workers import ShardedPool

        _, test_set = digits_pair
        n = len(test_set.images)
        pool = ShardedPool(
            {"snnwt": snn_model},
            jobs=P["pool_jobs"],
            images=test_set.images,
            warm=True,
        )
        server = InferenceServer(
            pool=pool,
            policy=BatchPolicy(max_batch=16, max_wait_us=P["max_wait_us"]),
            images=test_set.images,
        )
        try:
            _verify(server, reference, n)
            server.metrics["snnwt"].reset()
            client = closed_loop(
                server,
                "snnwt",
                n,
                concurrency=P["concurrency"],
                duration_seconds=P["pool_duration_seconds"],
                seed=0,
            )
            snapshot = server.metrics["snnwt"].snapshot()
            RECORDS["serve_pool_b16"] = {
                "jobs": P["pool_jobs"],
                "max_batch": 16,
                "concurrency": P["concurrency"],
                "completed": snapshot["completed"],
                "requests_per_second": snapshot["requests_per_second"],
                "mean_batch_size": snapshot["mean_batch_size"],
                "latency_ms": snapshot["latency_ms"],
                "client_rps": client["client_rps"],
                "client_errors": client["client_errors"],
                "shared_nbytes": pool.nbytes_shared(),
                "bit_identical": True,
            }
            assert client["client_errors"] == 0
        finally:
            server.close()
