"""Microbenchmarks of the library's hot paths.

Unlike the table/figure benches (single-shot regenerations), these use
pytest-benchmark's normal multi-round timing to track the throughput
of the simulation kernels: spike encoding, SNN presentations, MLP
forward/backward passes, quantized inference and the cycle-accurate
simulators.  They guard against performance regressions in the code
the reproduction spends all its time in.
"""

import numpy as np
import pytest

from repro.core.config import MLPConfig, SNNConfig, mnist_snn_config
from repro.datasets.digits import load_digits
from repro.hardware.cyclesim import FoldedMLPSimulator
from repro.hardware.folded import folded_mlp, folded_snn_wot
from repro.mlp.network import MLP
from repro.mlp.quantized import QuantizedMLP
from repro.mlp.trainer import BackPropTrainer
from repro.snn.coding import PoissonCoder
from repro.snn.network import SpikingNetwork


@pytest.fixture(scope="module")
def image():
    train, _ = load_digits(n_train=20, n_test=10)
    return train.images[0]


@pytest.fixture(scope="module")
def batch():
    train, _ = load_digits(n_train=64, n_test=10)
    return train.normalized()


@pytest.fixture(scope="module")
def mlp():
    return MLP(MLPConfig(n_hidden=100).validate())


@pytest.fixture(scope="module")
def snn():
    network = SpikingNetwork(mnist_snn_config())
    network.population.thresholds[:] = 2e5  # realistic operating point
    return network


def test_perf_poisson_encode(benchmark, image):
    coder = PoissonCoder()
    rng = np.random.default_rng(0)
    train = benchmark(lambda: coder.encode(image, rng=rng))
    assert train.n_spikes > 100


def test_perf_snn_presentation(benchmark, snn, image):
    rng = np.random.default_rng(0)
    train = snn.coder.encode(image, rng=rng)
    result = benchmark(lambda: snn.present(train))
    assert result.final_potentials is not None


def test_perf_mlp_forward_batch(benchmark, mlp, batch):
    trace = benchmark(lambda: mlp.forward(batch))
    assert trace.output_out.shape == (64, 10)


def test_perf_mlp_training_step(benchmark, mlp, batch):
    trainer = BackPropTrainer(mlp, batch_size=64)
    labels = np.arange(64) % 10
    loss = benchmark(lambda: trainer.train_batch(batch, labels))
    assert loss >= 0.0


def test_perf_quantized_inference(benchmark, mlp, batch):
    quantized = QuantizedMLP(mlp)
    predictions = benchmark(lambda: quantized.predict(batch))
    assert predictions.shape == (64,)


def test_perf_cyclesim_image(benchmark, mlp, batch):
    simulator = FoldedMLPSimulator(QuantizedMLP(mlp), ni=16)
    _codes, trace = benchmark(lambda: simulator.run_image(batch[0]))
    assert trace.cycles == simulator.cycles_per_image()


def test_perf_hardware_model(benchmark):
    from repro.core.config import mnist_mlp_config

    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()

    def evaluate_design_points():
        return [folded_mlp(mlp_cfg, 16), folded_snn_wot(snn_cfg, 16)]

    reports = benchmark(evaluate_design_points)
    assert reports[0].total_area_mm2 > 0
