"""Benchmarks for the extension studies (conversion, retention, explorer).

These go beyond the paper's own tables: the MLP-to-SNN conversion the
paper's Section 3.2 points toward, the memory-retention behaviour its
online-learning discussion raises, and the designer-guidance explorer
built from its conclusions.
"""

import pytest

from repro.core.config import SNNConfig, mnist_mlp_config, mnist_snn_config
from repro.datasets.digits import load_digits
from repro.hardware.explorer import Requirements, recommend
from repro.snn.conversion import conversion_sweep
from repro.snn.network import SpikingNetwork
from repro.snn.retention import retention_curve


@pytest.fixture(scope="module")
def data():
    return load_digits(n_train=800, n_test=250)


def test_mlp_to_snn_conversion(benchmark, data):
    """Section 3.2's bridging direction: BP-trained weights run as spikes."""
    train_set, test_set = data
    from repro.analysis import common

    mlp = common.train_mlp_model(mnist_mlp_config(), train_set, epochs=40)

    def sweep():
        return conversion_sweep(
            mlp, test_set, timesteps_list=[10, 50, 200], calibration=train_set
        )

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Long presentations recover (almost) the MLP's accuracy: the
    # conversion closes the accuracy gap the paper attributes to the
    # learning rule while keeping spike-domain execution.
    final = results[-1]
    assert final.snn_accuracy > 0.6
    assert final.gap < 0.15
    # And accuracy must not degrade as presentations lengthen.
    assert results[-1].snn_accuracy >= results[0].snn_accuracy - 0.05


def test_memory_retention(benchmark, data):
    """The online-learning promise: adapt to new classes, retain old ones."""
    train_set, test_set = data
    network = SpikingNetwork(SNNConfig(epochs=1).with_neurons(60))

    def study():
        return retention_curve(
            network, train_set, test_set, probe_every=100, task_b_images=300
        )

    result = benchmark.pedantic(study, rounds=1, iterations=1)
    # Task B is learned online ...
    assert result.points[-1].task_b_accuracy > result.points[0].task_b_accuracy
    # ... receptive fields drift monotonically (the paper's stability
    # measure) ...
    drifts = [p.field_drift for p in result.points]
    assert all(b >= a for a, b in zip(drifts, drifts[1:]))
    # ... and task A is not catastrophically erased (WTA inhibition
    # stabilizes fields, per the paper's Billings & van Rossum note).
    assert result.final_accuracy > 0.15


def test_designer_recommendations(benchmark):
    """Paper question 3 as code: the four canonical scenarios."""
    mlp_cfg = mnist_mlp_config()
    snn_cfg = mnist_snn_config()

    def run_scenarios():
        return {
            "embedded": recommend(Requirements(max_area_mm2=2.0), mlp_cfg, snn_cfg),
            "latency": recommend(
                Requirements(max_latency_us=0.05), mlp_cfg, snn_cfg, prefer="area"
            ),
            "online": recommend(
                Requirements(needs_online_learning=True), mlp_cfg, snn_cfg
            ),
            "critical": recommend(
                Requirements(accuracy_critical=True, max_area_mm2=10.0),
                mlp_cfg,
                snn_cfg,
            ),
        }

    results = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    # The paper's conclusions, scenario by scenario:
    assert results["embedded"].chosen.family == "MLP"          # conclusion (2)
    assert results["latency"].chosen.variant == "expanded"     # expansion = speed
    assert results["latency"].chosen.family.startswith("SNN")  # ... and SNN wins it
    assert results["online"].chosen.family == "SNN-online"     # conclusion (3)
    assert results["critical"].chosen.family == "MLP"          # conclusion (1)
