"""Benchmark for Table 8 — speedups and energy benefits over the GPU."""

import pytest


def test_table8_gpu(run_experiment):
    result = run_experiment("table8")
    paper = {(r["design"], r["ni"]): r for r in result.paper_rows}
    for row in result.rows:
        reference = paper[(row["design"], row["ni"])]
        assert row["speedup"] == pytest.approx(reference["speedup"], rel=0.30)
        if (row["design"], row["ni"]) == ("SNNwot", "expanded"):
            # The paper's own Tables 7 and 8 disagree on this cell by
            # ~3x: Table 7 reports 0.03 uJ for the expanded SNNwot but
            # Table 8's 31,542x benefit implies ~0.09 uJ.  We calibrate
            # to Table 7, so our benefit lands near 95,000x; assert the
            # direction and magnitude class only (see EXPERIMENTS.md).
            assert row["energy_benefit"] > 10_000
            continue
        assert row["energy_benefit"] == pytest.approx(
            reference["energy_benefit"], rel=0.30
        )

    # The paper's standout observations:
    # 1. folded SNNwt at ni=1 is *slower* than the GPU;
    assert result.find_row(design="SNNwt", ni="1")["speedup"] < 1.0
    # 2. everything else beats the GPU handily;
    for design, ni in (("MLP", "1"), ("MLP", "16"), ("SNNwot", "1"), ("SNNwot", "16")):
        assert result.find_row(design=design, ni=ni)["speedup"] > 10.0
    # 3. energy benefits are orders of magnitude for MLP and SNNwot,
    #    but only ~1 order for SNNwt;
    assert result.find_row(design="MLP", ni="16")["energy_benefit"] > 1_000
    assert result.find_row(design="SNNwot", ni="16")["energy_benefit"] > 1_000
    assert result.find_row(design="SNNwt", ni="16")["energy_benefit"] < 100
    # 4. speedups grow with parallelism (ni=16 > ni=1 > ... reversed for
    #    the fully expanded points, which are fastest).
    for design in ("MLP", "SNNwot"):
        s1 = result.find_row(design=design, ni="1")["speedup"]
        s16 = result.find_row(design=design, ni="16")["speedup"]
        s_exp = result.find_row(design=design, ni="expanded")["speedup"]
        assert s_exp > s16 > s1
